"""The paper's worked examples (Figures 2, 3 and 4) as reusable fixtures.

These drive experiments E2 (working set number of Fig. 2), E3 (the Fig. 3
lower-bound construction) and E4 (the S8 -> S9 transformation of Fig. 4).

Key mapping for Fig. 4: the paper identifies nodes by letters and states
that "the nodes' numerical identifiers are determined by their positions in
the English alphabet"; the same mapping is used here (B=2, D=4, E=5, F=6,
G=7, H=8, I=9, J=10, U=21, V=22).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.state import DSGNodeState
from repro.skipgraph.build import build_skip_graph_from_membership

__all__ = [
    "FIG4_KEYS",
    "fig2_access_pattern",
    "fig3_communication_graph",
    "fig4_membership_s8",
    "fig4_setup",
]

#: Letter -> numeric identifier for the Fig. 4 example.
FIG4_KEYS: Dict[str, int] = {
    "B": 2, "D": 4, "E": 5, "F": 6, "G": 7,
    "H": 8, "I": 9, "J": 10, "U": 21, "V": 22,
}


def fig2_access_pattern() -> List[Tuple[str, str]]:
    """The access pattern of Fig. 2(a).

    Between the two (u, v) communications the requests (e,a), (k,u), (a,u)
    and (e,k) occur; the nodes of the communication graph reachable from u
    or v are then e, a, k, u and v, so the working set number of the final
    (u, v) request is 5 (Fig. 2(b)).
    """
    return [("u", "v"), ("e", "a"), ("k", "u"), ("a", "u"), ("e", "k"), ("u", "v")]


def fig3_communication_graph(k: int) -> List[Tuple[int, int]]:
    """A request sequence realising the Fig. 3 / Theorem 1 scenario.

    Nodes ``U=1`` and ``V=2`` communicate, ``U`` then talks to node ``A=3``,
    each of the ``k - 2`` filler nodes communicates with ``A``, and finally
    ``U`` and ``V`` communicate again.  The communication graph between the
    two (U, V) requests then connects exactly ``k + 1`` nodes to U or V
    (U, V, A and the k - 2 fillers), so the working set number of the final
    request is ``k + 1``; experiment E3 uses the sequence to exercise the
    routing-distance lower bound ``log(k + 1)`` of Theorem 1.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    u, v, a = 1, 2, 3
    fillers = [10 + i for i in range(k - 2)]
    sequence: List[Tuple[int, int]] = [(u, v), (u, a)]
    sequence.extend((a, filler) for filler in fillers)
    sequence.append((u, v))
    return sequence


def fig4_membership_s8() -> Dict[int, str]:
    """Membership vectors realising the skip graph S8 of Fig. 4(b).

    Level-1 split: {E, F, H, I, J, V} in the 0-subgraph, {B, D, G, U} in the
    1-subgraph.  Level 2: {E, H, J, V} / {F, I} and {B, G} / {D, U}.
    Level 3: {H, J} / {E, V}.  One extra level separates the remaining
    sibling pairs so that every node is eventually a singleton (the figure
    stops at the levels it needs for the example).
    """
    K = FIG4_KEYS
    return {
        K["H"]: "0000",
        K["J"]: "0001",
        K["V"]: "0010",
        K["E"]: "0011",
        K["F"]: "010",
        K["I"]: "011",
        K["B"]: "100",
        K["G"]: "101",
        K["D"]: "110",
        K["U"]: "111",
    }


def fig4_setup(use_exact_median: bool = True, seed: int = 8) -> DynamicSkipGraph:
    """A :class:`DynamicSkipGraph` initialised to the paper's S8 state.

    Timestamps, group-ids and group-bases follow Fig. 4(b) and the
    surrounding text:

    * {B, G, D, U} form a group at level 1 (timestamps 4, 4, 4, 2); B and G
      additionally share a level-2 group (timestamps 6), D and U a level-2
      group (timestamps 4 and 2);
    * {V, E} form a group with timestamp 5 (they communicated at time 5);
    * {H, J} form a group with timestamp 7;
    * {F, I} form a group with timestamp 1;
    * group-ids at level 0: H and J hold J's identifier, F and I hold F's
      identifier (as stated in Section IV-C), the {B, G, D, U} group holds
      U's identifier and the {V, E} group holds V's identifier.

    The instance's clock is set so that the next request is served at time
    t = 8, matching the (U, V) communication of the example.  By default the
    exact-median ablation is enabled so the transformation is deterministic
    (the paper's walk-through assumes M = 2 at the first split, which is the
    exact median of the priorities it lists).
    """
    K = FIG4_KEYS
    graph = build_skip_graph_from_membership(fig4_membership_s8())
    config = DSGConfig(a=4, seed=seed, use_exact_median=use_exact_median)
    dsg = DynamicSkipGraph(graph=graph, config=config)

    def state(letter: str) -> DSGNodeState:
        return dsg.states[K[letter]]

    uid_u = state("U").uid
    uid_v = state("V").uid
    uid_j = state("J").uid
    uid_f = state("F").uid

    # --- the {B, G, D, U} group (merged through communications at times 2-6)
    for letter in ("B", "G", "D", "U"):
        state(letter).set_group_id(0, uid_u)
        state(letter).set_group_id(1, uid_u)
        state(letter).group_base = 1
    for letter, timestamp in (("B", 4), ("G", 4), ("D", 4), ("U", 2)):
        state(letter).set_timestamp(1, timestamp)
    for letter in ("B", "G"):
        state(letter).set_group_id(2, state("B").uid)
        state(letter).set_timestamp(2, 6)
    for letter, timestamp in (("D", 4), ("U", 2)):
        state(letter).set_group_id(2, uid_u)
        state(letter).set_timestamp(2, timestamp)

    # --- the {V, E} group (communicated at time 5)
    for letter in ("V", "E"):
        for level in range(0, 4):
            state(letter).set_group_id(level, uid_v)
        state(letter).set_timestamp(3, 5)
        state(letter).group_base = 3

    # --- the {H, J} group (communicated at time 7)
    for letter in ("H", "J"):
        for level in range(0, 4):
            state(letter).set_group_id(level, uid_j)
        state(letter).set_timestamp(3, 7)
        state(letter).group_base = 3

    # --- the {F, I} group (communicated at time 1)
    for letter in ("F", "I"):
        for level in range(0, 3):
            state(letter).set_group_id(level, uid_f)
        state(letter).set_timestamp(2, 1)
        state(letter).group_base = 2

    # The next request is the (U, V) communication at time 8.
    dsg._time = 7
    dsg.history.total_nodes = len(FIG4_KEYS)
    return dsg
