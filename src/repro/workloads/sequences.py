"""Request-sequence generators (see the package docstring for the catalogue)."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulation.rng import make_rng
from repro.skipgraph.node import Key

__all__ = [
    "WORKLOADS",
    "adversarial_for_static",
    "community_traffic",
    "generate_workload",
    "hot_pairs",
    "repeated_pair",
    "temporal_locality",
    "uniform_pairs",
    "zipf_pairs",
]

Request = Tuple[Key, Key]


def _distinct_pair(rng: random.Random, population: Sequence[Key]) -> Request:
    u = rng.choice(population)
    v = rng.choice(population)
    while v == u:
        v = rng.choice(population)
    return (u, v)


def uniform_pairs(keys: Sequence[Key], length: int, seed: Optional[int] = None) -> List[Request]:
    """Independent uniformly random source/destination pairs."""
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("need at least two keys")
    return [_distinct_pair(rng, keys) for _ in range(length)]


def repeated_pair(keys: Sequence[Key], length: int, seed: Optional[int] = None) -> List[Request]:
    """The same (randomly chosen) pair repeated ``length`` times."""
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("need at least two keys")
    pair = _distinct_pair(rng, keys)
    return [pair] * length


def hot_pairs(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    pairs: int = 4,
    hot_fraction: float = 0.9,
) -> List[Request]:
    """A few fixed "hot" pairs receive ``hot_fraction`` of the traffic."""
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2 * pairs:
        raise ValueError("need at least 2*pairs keys")
    sampled = rng.sample(keys, 2 * pairs)
    hot = [(sampled[2 * i], sampled[2 * i + 1]) for i in range(pairs)]
    requests: List[Request] = []
    for _ in range(length):
        if rng.random() < hot_fraction:
            requests.append(hot[rng.randrange(pairs)])
        else:
            requests.append(_distinct_pair(rng, keys))
    return requests


def zipf_pairs(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    exponent: float = 1.2,
) -> List[Request]:
    """Endpoints drawn Zipf-distributed over a random permutation of the keys.

    The permutation decouples popularity rank from key order, so the skew is
    purely a *communication* skew and not a key-space locality artefact.
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("need at least two keys")
    permuted = list(keys)
    rng.shuffle(permuted)
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(permuted))]
    requests: List[Request] = []
    for _ in range(length):
        u, v = rng.choices(permuted, weights=weights, k=2)
        while v == u:
            v = rng.choices(permuted, weights=weights, k=1)[0]
        requests.append((u, v))
    return requests


def temporal_locality(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    working_set_size: int = 8,
    drift_probability: float = 0.05,
) -> List[Request]:
    """A small active set generates the traffic; it drifts slowly over time.

    With probability ``drift_probability`` per request one member of the
    active set is replaced by a random outsider, producing the sliding
    working sets the paper's yardstick is designed to capture.
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < working_set_size:
        raise ValueError("working_set_size larger than the key population")
    active = rng.sample(keys, working_set_size)
    requests: List[Request] = []
    for _ in range(length):
        if rng.random() < drift_probability:
            leaving = rng.randrange(working_set_size)
            candidates = [key for key in keys if key not in active]
            if candidates:
                active[leaving] = rng.choice(candidates)
        requests.append(_distinct_pair(rng, active))
    return requests


def community_traffic(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    communities: int = 4,
    intra_probability: float = 0.9,
) -> List[Request]:
    """Partition the nodes into communities; traffic is mostly intra-community."""
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2 * communities:
        raise ValueError("need at least two keys per community")
    shuffled = list(keys)
    rng.shuffle(shuffled)
    groups: List[List[Key]] = [shuffled[i::communities] for i in range(communities)]
    requests: List[Request] = []
    for _ in range(length):
        if rng.random() < intra_probability:
            group = groups[rng.randrange(communities)]
            requests.append(_distinct_pair(rng, group))
        else:
            requests.append(_distinct_pair(rng, keys))
    return requests


def adversarial_for_static(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    graph=None,
) -> List[Request]:
    """Pairs that are far apart in a *static* balanced skip graph.

    When ``graph`` is omitted, the pairs alternate between keys from the two
    halves of the key space whose membership vectors differ at level 1 of the
    balanced construction — the pairs with the longest static routes.
    """
    rng = make_rng(seed)
    keys = sorted(set(keys))
    if len(keys) < 4:
        raise ValueError("need at least four keys")
    if graph is None:
        from repro.skipgraph.build import build_balanced_skip_graph

        graph = build_balanced_skip_graph(keys)
    from repro.skipgraph.routing import route as sg_route

    sample = rng.sample(keys, min(len(keys), 24))
    scored = []
    for i, u in enumerate(sample):
        for v in sample[i + 1 :]:
            scored.append((sg_route(graph, u, v).distance, (u, v)))
    scored.sort(reverse=True)
    worst = [pair for _, pair in scored[: max(4, len(scored) // 8)]]
    return [worst[rng.randrange(len(worst))] for _ in range(length)]


#: Registry used by the experiments and the CLI.
WORKLOADS: Dict[str, Callable[..., List[Request]]] = {
    "uniform": uniform_pairs,
    "repeated-pair": repeated_pair,
    "hot-pairs": hot_pairs,
    "zipf": zipf_pairs,
    "temporal": temporal_locality,
    "community": community_traffic,
    "adversarial-static": adversarial_for_static,
}


def generate_workload(
    name: str,
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    **params,
) -> List[Request]:
    """Generate the workload ``name`` (see :data:`WORKLOADS`) deterministically."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")
    return WORKLOADS[name](keys, length, seed=seed, **params)
