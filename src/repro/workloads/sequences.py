"""Request-sequence generators (see the package docstring for the catalogue).

Every generator shares the same contract:

* it takes the key population, the sequence ``length`` and a ``seed`` plus
  generator-specific keyword parameters;
* it is fully deterministic given its seed (same seed, same sequence);
* it returns a list of ``(source, destination)`` tuples with
  ``source != destination`` whose endpoints are all drawn from ``keys``.

:data:`WORKLOADS` registers each generator under the name the experiments
and the ``dsg-experiments`` CLI use; :func:`generate_workload` is the single
dispatch point.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulation.rng import make_rng
from repro.skipgraph.node import Key

__all__ = [
    "WORKLOADS",
    "adversarial_for_static",
    "community_traffic",
    "flash_crowd",
    "generate_workload",
    "hot_pairs",
    "repeated_pair",
    "temporal_locality",
    "uniform_pairs",
    "zipf_pairs",
    "zipf_with_drift",
]

Request = Tuple[Key, Key]


def _distinct_pair(rng: random.Random, population: Sequence[Key]) -> Request:
    u = rng.choice(population)
    v = rng.choice(population)
    while v == u:
        v = rng.choice(population)
    return (u, v)


def uniform_pairs(keys: Sequence[Key], length: int, seed: Optional[int] = None) -> List[Request]:
    """Independent uniformly random source/destination pairs.

    Every request draws source and destination independently and uniformly
    from ``keys`` (rejecting self-pairs), so there is no skew of any kind —
    the distribution static skip graphs are optimised for and the worst case
    for any self-adjusting scheme (working set numbers stay near ``n``).

    Parameters
    ----------
    keys:
        Key population (at least two keys).
    length:
        Number of requests to generate.
    seed:
        RNG seed; the sequence is a deterministic function of it.
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("need at least two keys")
    return [_distinct_pair(rng, keys) for _ in range(length)]


def repeated_pair(keys: Sequence[Key], length: int, seed: Optional[int] = None) -> List[Request]:
    """The same (randomly chosen) pair repeated ``length`` times.

    Maximal temporal locality: after the first request the pair's working
    set number is 2 forever, so any algorithm with the working set property
    must serve the tail at O(1) per request — the best case for DSG and the
    worst *relative* case for a static structure whose pair happens to be
    far apart.

    Parameters
    ----------
    keys:
        Key population (at least two keys); the pair is drawn uniformly.
    length:
        Number of repetitions.
    seed:
        RNG seed deciding which pair is drawn.
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("need at least two keys")
    pair = _distinct_pair(rng, keys)
    return [pair] * length


def hot_pairs(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    pairs: int = 4,
    hot_fraction: float = 0.9,
) -> List[Request]:
    """A few fixed "hot" pairs receive ``hot_fraction`` of the traffic.

    ``2 * pairs`` distinct endpoints are sampled once and paired up; each
    request is one of those hot pairs with probability ``hot_fraction``
    (chosen uniformly among them) and an independent uniform pair otherwise.
    Models the heavy-hitter flows of datacenter traffic: most of the load
    concentrates on a fixed, small set of communicating pairs.

    Parameters
    ----------
    keys:
        Key population (at least ``2 * pairs`` keys).
    length:
        Number of requests to generate.
    seed:
        RNG seed.
    pairs:
        Number of hot pairs (endpoints are disjoint across pairs).
    hot_fraction:
        Probability that a request is hot traffic rather than background.
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2 * pairs:
        raise ValueError("need at least 2*pairs keys")
    sampled = rng.sample(keys, 2 * pairs)
    hot = [(sampled[2 * i], sampled[2 * i + 1]) for i in range(pairs)]
    requests: List[Request] = []
    for _ in range(length):
        if rng.random() < hot_fraction:
            requests.append(hot[rng.randrange(pairs)])
        else:
            requests.append(_distinct_pair(rng, keys))
    return requests


def zipf_pairs(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    exponent: float = 1.2,
) -> List[Request]:
    """Endpoints drawn Zipf-distributed over a random permutation of the keys.

    The node of popularity rank ``r`` (1-based) is drawn with probability
    proportional to ``1 / r**exponent``; source and destination are drawn
    independently (self-pairs redrawn).  The permutation decouples
    popularity rank from key order, so the skew is purely a *communication*
    skew and not a key-space locality artefact.

    Parameters
    ----------
    keys:
        Key population (at least two keys).
    length:
        Number of requests to generate.
    seed:
        RNG seed (drives both the rank permutation and the draws).
    exponent:
        Zipf exponent; larger means heavier concentration on the top ranks
        (1.2 is in the range reported for real communication graphs).
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("need at least two keys")
    permuted = list(keys)
    rng.shuffle(permuted)
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(permuted))]
    requests: List[Request] = []
    for _ in range(length):
        u, v = rng.choices(permuted, weights=weights, k=2)
        while v == u:
            v = rng.choices(permuted, weights=weights, k=1)[0]
        requests.append((u, v))
    return requests


def temporal_locality(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    working_set_size: int = 8,
    drift_probability: float = 0.05,
) -> List[Request]:
    """A small active set generates the traffic; it drifts slowly over time.

    Requests are uniform pairs *within* an active set of
    ``working_set_size`` nodes.  With probability ``drift_probability`` per
    request one member of the active set is replaced by a uniformly chosen
    outsider before the request is drawn, producing the sliding working sets
    the paper's yardstick (the working set number) is designed to capture.

    Parameters
    ----------
    keys:
        Key population (at least ``working_set_size`` keys).
    length:
        Number of requests to generate.
    seed:
        RNG seed.
    working_set_size:
        Size of the active set (the expected working set number of the
        steady state).
    drift_probability:
        Per-request probability of rotating one member out of the active
        set; ``1 / drift_probability`` is the expected lifetime of a member.
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < working_set_size:
        raise ValueError("working_set_size larger than the key population")
    active = rng.sample(keys, working_set_size)
    requests: List[Request] = []
    for _ in range(length):
        if rng.random() < drift_probability:
            leaving = rng.randrange(working_set_size)
            candidates = [key for key in keys if key not in active]
            if candidates:
                active[leaving] = rng.choice(candidates)
        requests.append(_distinct_pair(rng, active))
    return requests


def community_traffic(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    communities: int = 4,
    intra_probability: float = 0.9,
) -> List[Request]:
    """Partition the nodes into communities; traffic is mostly intra-community.

    The keys are shuffled and dealt round-robin into ``communities`` equal
    groups.  Each request is a uniform pair inside one uniformly chosen
    community with probability ``intra_probability``, and a global uniform
    pair otherwise — the spatial locality of the paper's VM-migration
    motivation (tenants talk within their own cluster).

    Parameters
    ----------
    keys:
        Key population (at least two keys per community).
    length:
        Number of requests to generate.
    seed:
        RNG seed (drives the partition and the draws).
    communities:
        Number of equal-size communities.
    intra_probability:
        Probability that a request stays inside one community.
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2 * communities:
        raise ValueError("need at least two keys per community")
    shuffled = list(keys)
    rng.shuffle(shuffled)
    groups: List[List[Key]] = [shuffled[i::communities] for i in range(communities)]
    requests: List[Request] = []
    for _ in range(length):
        if rng.random() < intra_probability:
            group = groups[rng.randrange(communities)]
            requests.append(_distinct_pair(rng, group))
        else:
            requests.append(_distinct_pair(rng, keys))
    return requests


def adversarial_for_static(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    graph=None,
) -> List[Request]:
    """Pairs that are far apart in a *static* balanced skip graph.

    A sample of up to 24 keys is scored by their pairwise routing distance
    in ``graph`` (a balanced skip graph over ``keys`` is built when omitted)
    and requests are drawn uniformly from the worst decile of pairs — the
    traffic that maximises static routing cost while a self-adjusting
    structure quickly makes the repeating pairs adjacent.

    Parameters
    ----------
    keys:
        Key population (at least four distinct keys).
    length:
        Number of requests to generate.
    seed:
        RNG seed (drives the sampling and the draws).
    graph:
        Optional pre-built skip graph to score the pairs against.
    """
    rng = make_rng(seed)
    keys = sorted(set(keys))
    if len(keys) < 4:
        raise ValueError("need at least four keys")
    if graph is None:
        from repro.skipgraph.build import build_balanced_skip_graph

        graph = build_balanced_skip_graph(keys)
    from repro.skipgraph.routing import route as sg_route

    sample = rng.sample(keys, min(len(keys), 24))
    scored = []
    for i, u in enumerate(sample):
        for v in sample[i + 1 :]:
            scored.append((sg_route(graph, u, v).distance, (u, v)))
    scored.sort(reverse=True)
    worst = [pair for _, pair in scored[: max(4, len(scored) // 8)]]
    return [worst[rng.randrange(len(worst))] for _ in range(length)]


def zipf_with_drift(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    exponent: float = 1.2,
    drift_every: Optional[int] = None,
    rotate_fraction: float = 0.1,
) -> List[Request]:
    """Zipf-skewed endpoints whose popularity ranking drifts over time.

    Like :func:`zipf_pairs`, endpoints are drawn with probability
    proportional to ``1 / rank**exponent`` over a random permutation of the
    keys — but every ``drift_every`` requests a ``rotate_fraction`` of the
    population, sampled uniformly, is promoted to the top ranks (pushing
    everyone else down).  Models trending content / migrating hotspots: the
    skew is stable in shape but the identity of the popular nodes changes,
    which forces a self-adjusting structure to keep re-clustering.

    Parameters
    ----------
    keys:
        Key population (at least two keys).
    length:
        Number of requests to generate.
    seed:
        RNG seed (permutation, drift times and draws).
    exponent:
        Zipf exponent of the popularity distribution.
    drift_every:
        Requests between two drift events; defaults to ``max(length // 10,
        1)`` (ten drifts over the sequence).
    rotate_fraction:
        Fraction of the population promoted to the top at each drift
        (at least one node).
    """
    rng = make_rng(seed)
    keys = list(keys)
    if len(keys) < 2:
        raise ValueError("need at least two keys")
    if drift_every is None:
        drift_every = max(length // 10, 1)
    if drift_every < 1:
        raise ValueError("drift_every must be positive")
    ranked = list(keys)
    rng.shuffle(ranked)
    weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(ranked))]
    promoted = max(1, int(rotate_fraction * len(ranked)))
    requests: List[Request] = []
    for index in range(length):
        if index and index % drift_every == 0:
            risers = rng.sample(ranked, promoted)
            risers_set = set(risers)
            ranked = risers + [key for key in ranked if key not in risers_set]
        u, v = rng.choices(ranked, weights=weights, k=2)
        while v == u:
            v = rng.choices(ranked, weights=weights, k=1)[0]
        requests.append((u, v))
    return requests


def flash_crowd(
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    flashes: int = 3,
    flash_fraction: float = 0.5,
    crowd_size: int = 12,
    crowd_span: Optional[int] = None,
    flash_intensity: float = 0.9,
) -> List[Request]:
    """Background traffic punctuated by flash crowds around single hotspots.

    The sequence is split into ``2 * flashes + 1`` alternating phases of
    background and flash traffic (flash phases together cover
    ``flash_fraction`` of the requests).  Background requests are uniform
    pairs.  During a flash, a hotspot node is chosen and a crowd of
    ``crowd_size`` nodes from a window of ``crowd_span`` keys around it
    (key-space locality: the crowd shares the hotspot's neighbourhood)
    sends it requests with probability ``flash_intensity``, with uniform
    background traffic in between.  Models a suddenly popular item in a
    P2P overlay: load concentrates on one node and its surroundings, then
    disperses again.

    Parameters
    ----------
    keys:
        Key population (at least ``crowd_size + 1`` keys).
    length:
        Number of requests to generate.
    seed:
        RNG seed (hotspots, crowds and draws).
    flashes:
        Number of flash phases.
    flash_fraction:
        Fraction of all requests belonging to flash phases.
    crowd_size:
        Number of distinct nodes sending to the hotspot during one flash.
    crowd_span:
        Size of the key-window (in sort positions) around the hotspot the
        crowd is sampled from; defaults to ``4 * crowd_size``.
    flash_intensity:
        Within a flash phase, the probability that a request is crowd ->
        hotspot rather than background.
    """
    rng = make_rng(seed)
    keys = sorted(set(keys))
    if len(keys) < crowd_size + 1:
        raise ValueError("need at least crowd_size + 1 keys")
    if flashes < 1:
        raise ValueError("need at least one flash")
    if crowd_span is None:
        crowd_span = 4 * crowd_size
    flash_total = int(length * flash_fraction)
    flash_lengths = [flash_total // flashes] * flashes
    background_total = length - sum(flash_lengths)
    background_lengths = [background_total // (flashes + 1)] * (flashes + 1)
    background_lengths[0] += background_total - sum(background_lengths)

    requests: List[Request] = []
    for phase in range(flashes):
        requests.extend(_distinct_pair(rng, keys) for _ in range(background_lengths[phase]))
        hotspot_index = rng.randrange(len(keys))
        hotspot = keys[hotspot_index]
        window_low = max(0, hotspot_index - crowd_span // 2)
        window = [key for key in keys[window_low : window_low + crowd_span + 1] if key != hotspot]
        crowd = rng.sample(window, min(crowd_size, len(window)))
        for _ in range(flash_lengths[phase]):
            if crowd and rng.random() < flash_intensity:
                requests.append((rng.choice(crowd), hotspot))
            else:
                requests.append(_distinct_pair(rng, keys))
    requests.extend(_distinct_pair(rng, keys) for _ in range(background_lengths[flashes]))
    return requests


#: Registry used by the experiments and the CLI.
WORKLOADS: Dict[str, Callable[..., List[Request]]] = {
    "uniform": uniform_pairs,
    "repeated-pair": repeated_pair,
    "hot-pairs": hot_pairs,
    "zipf": zipf_pairs,
    "zipf-drift": zipf_with_drift,
    "temporal": temporal_locality,
    "community": community_traffic,
    "adversarial-static": adversarial_for_static,
    "flash-crowd": flash_crowd,
}


def generate_workload(
    name: str,
    keys: Sequence[Key],
    length: int,
    seed: Optional[int] = None,
    **params,
) -> List[Request]:
    """Generate the workload ``name`` (see :data:`WORKLOADS`) deterministically."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")
    return WORKLOADS[name](keys, length, seed=seed, **params)
