"""Communication-request workloads.

The paper's motivation is that "most real-world communication patterns are
skewed"; the generators here cover the spectrum the evaluation (experiments
E3, E8, E9) sweeps:

* ``uniform`` — independent uniform pairs (no skew; the case static skip
  graphs are optimised for),
* ``hot-pairs`` — a few fixed pairs dominate the traffic,
* ``zipf`` — endpoints drawn from a Zipf distribution over a *random
  permutation* of the keys (popularity skew uncorrelated with key order),
* ``temporal`` — a sliding working set: requests are drawn from a small
  active group that drifts over time (temporal locality),
* ``community`` — nodes are partitioned into communities and traffic is
  intra-community with high probability (spatial locality in the
  communication graph, the paper's VM-migration motivation),
* ``repeated-pair`` — a single pair repeated (the best case for any
  self-adjusting design, worst case relative advantage for static),
* ``adversarial-static`` — pairs chosen to be far apart in the *static*
  topology (max-distance pairs), showing the gap between worst-case static
  routing and self-adjusted routing,
* ``zipf-drift`` — Zipf skew whose popularity ranking drifts over time
  (trending content / migrating hotspots),
* ``flash-crowd`` — background traffic punctuated by phases in which a
  crowd of nodes hammers a single hotspot.

Every generator is deterministic given its seed and returns a list of
``(source, destination)`` tuples.  :func:`generate_workload` is the single
entry point used by the experiments and the CLI.

:mod:`repro.workloads.scenarios` lifts workloads to churn-capable *event
schedules* (requests interleaved with node joins/leaves) executed against a
live DSG instance through the batched request pipeline; see
:func:`churn_scenario`, :func:`scale_scenario` and :func:`run_scenario`.
"""

from repro.workloads.sequences import (
    WORKLOADS,
    adversarial_for_static,
    community_traffic,
    flash_crowd,
    generate_workload,
    hot_pairs,
    repeated_pair,
    temporal_locality,
    uniform_pairs,
    zipf_pairs,
    zipf_with_drift,
)
from repro.workloads.scenarios import (
    CrashEvent,
    JoinEvent,
    LeaveEvent,
    RecoveryEvent,
    RequestEvent,
    Scenario,
    ScenarioReplay,
    ScenarioReport,
    apply_crash,
    apply_join,
    apply_leave,
    apply_recovery,
    churn_scenario,
    failure_scenario,
    repair_crashes,
    replay_scenario,
    run_scenario,
    scale_scenario,
    scenario_requests,
    workload_scenario,
)
from repro.workloads.paper_examples import (
    fig2_access_pattern,
    fig3_communication_graph,
    fig4_membership_s8,
    fig4_setup,
)
from repro.workloads.traces import load_trace, save_trace

__all__ = [
    "CrashEvent",
    "JoinEvent",
    "LeaveEvent",
    "RecoveryEvent",
    "RequestEvent",
    "Scenario",
    "ScenarioReplay",
    "ScenarioReport",
    "WORKLOADS",
    "adversarial_for_static",
    "apply_crash",
    "apply_join",
    "apply_leave",
    "apply_recovery",
    "churn_scenario",
    "failure_scenario",
    "repair_crashes",
    "replay_scenario",
    "community_traffic",
    "fig2_access_pattern",
    "fig3_communication_graph",
    "fig4_membership_s8",
    "fig4_setup",
    "flash_crowd",
    "generate_workload",
    "hot_pairs",
    "load_trace",
    "repeated_pair",
    "run_scenario",
    "save_trace",
    "scale_scenario",
    "scenario_requests",
    "temporal_locality",
    "workload_scenario",
    "uniform_pairs",
    "zipf_pairs",
    "zipf_with_drift",
]
