"""Churn-capable scenario layer: event schedules over a live DSG instance.

A plain workload (:mod:`repro.workloads.sequences`) is a fixed request list
over a fixed node population.  A :class:`Scenario` generalises it to an
*event schedule*: an initial key population plus an ordered stream of

* :class:`RequestEvent` — a communication request ``(source, destination)``,
* :class:`JoinEvent` — a new peer enters (Section IV-G node addition),
* :class:`LeaveEvent` — a peer departs (Section IV-G node removal),
* :class:`CrashEvent` — a peer fails crash-stop: no goodbye, links dark,
  repaired only by the survivors (:func:`failure_scenario` generates
  these; the semantic difference from a leave exists only at the
  message-passing layer, where the dark window is observable).  A crash
  may be flagged ``mid_wave``: it lands while the current wave's requests
  are still in flight instead of at a quiescent wave boundary,
* :class:`RecoveryEvent` — a previously crashed peer comes back.  Recovery
  is *rejoin as a fresh identity*: the engine's re-entry ban is lifted and
  the key re-enters through the kernel's join path with newly drawn
  membership bits — never a resurrection of its old tables (which the
  survivors' repair wave already excised),

which is what production overlays actually look like: traffic interleaved
with membership churn.  Because joins and leaves change the population the
later traffic may draw from, scenarios are generated *online* — the
samplers track the alive set as the schedule is produced — and replayed
deterministically.

:func:`run_scenario` executes a scenario against any
:class:`~repro.baselines.adapter.ServingAlgorithm` — by default a
:class:`~repro.baselines.adapter.DSGAdapter` over a fresh
:class:`~repro.core.dsg.DynamicSkipGraph` — feeding maximal request runs
through the algorithm's batch pipeline (for DSG the amortized
:meth:`~repro.core.dsg.DynamicSkipGraph.run_requests`, so a churn-free
stretch pays batch prices) and returning a :class:`ScenarioReport` with the
cost/throughput accounting.  Passing ``algorithm=`` drives a baseline
(static skip graph, offline-static, SplayNet, oracle) through the *same*
schedule, which is how E9 and ``benchmarks/bench_e09_comparison.py`` make
churn-capable comparisons at scale.

:func:`churn_scenario` builds general traffic-plus-churn schedules;
:func:`scale_scenario` builds the 10k-node/100k-request shape used by the
E13 experiment and ``benchmarks/bench_e13_scale.py``: heavy-hitter pairs
placed with key-space locality, a trickle of far "cross" pairs that force
deep transformations, periodic flash crowds around hotspots, and steady
background churn.

Scenarios also replay against the *message-passing* side of the repository:
:func:`replay_scenario` translates a scenario's join/leave events into
:meth:`~repro.simulation.Simulator.schedule` callbacks that rewire the
skip-graph links of a live CONGEST simulator (and start/retire the affected
processes), so the same 4096-node churn schedules that drive
``bench_e09_comparison`` also drive the distributed protocols in
:mod:`repro.distributed` — that bridge is what ``bench_e11_congest`` runs.
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.adapter import DSGAdapter, ServingAlgorithm
from repro.core.dsg import DSGConfig
from repro.core.local_ops import (
    DummyRemoveOp,
    LocalOp,
    NodeJoinOp,
    NodeLeaveOp,
)
from repro.simulation import NodeProcess, Simulator
from repro.simulation.rng import make_rng
from repro.skipgraph.build import draw_membership_bits
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

__all__ = [
    "CrashEvent",
    "JoinEvent",
    "LeaveEvent",
    "RecoveryEvent",
    "RequestEvent",
    "Scenario",
    "ScenarioReplay",
    "ScenarioReport",
    "apply_crash",
    "apply_join",
    "apply_leave",
    "apply_local_op",
    "apply_recovery",
    "churn_scenario",
    "failure_scenario",
    "repair_crashes",
    "replay_scenario",
    "run_scenario",
    "scale_scenario",
    "scenario_requests",
    "workload_scenario",
]

Request = Tuple[Key, Key]


@dataclass(frozen=True)
class RequestEvent:
    """A communication request between two alive peers."""

    source: Key
    destination: Key


@dataclass(frozen=True)
class JoinEvent:
    """A new peer with ``key`` enters the overlay."""

    key: Key


@dataclass(frozen=True)
class LeaveEvent:
    """The peer with ``key`` departs the overlay."""

    key: Key


@dataclass(frozen=True)
class CrashEvent:
    """The peer with ``key`` fails crash-stop (no goodbye, links go dark).

    ``mid_wave`` marks a crash generated to land while the current wave's
    requests are still in flight (the failure arena fires it between
    request injections instead of at the quiescent wave boundary); the
    default ``False`` keeps every pre-existing schedule's semantics.
    """

    key: Key
    mid_wave: bool = False


@dataclass(frozen=True)
class RecoveryEvent:
    """The previously crashed peer with ``key`` rejoins as a fresh identity."""

    key: Key


Event = Union[RequestEvent, JoinEvent, LeaveEvent, CrashEvent, RecoveryEvent]


@dataclass
class Scenario:
    """An initial population plus a deterministic event schedule."""

    name: str
    initial_keys: List[Key]
    events: List[Event]
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def request_count(self) -> int:
        return sum(1 for event in self.events if isinstance(event, RequestEvent))

    @property
    def join_count(self) -> int:
        return sum(1 for event in self.events if isinstance(event, JoinEvent))

    @property
    def leave_count(self) -> int:
        return sum(1 for event in self.events if isinstance(event, LeaveEvent))

    @property
    def crash_count(self) -> int:
        return sum(1 for event in self.events if isinstance(event, CrashEvent))

    @property
    def recovery_count(self) -> int:
        return sum(1 for event in self.events if isinstance(event, RecoveryEvent))


@dataclass
class ScenarioReport:
    """Outcome of one :func:`run_scenario` execution.

    ``algorithm`` names the :class:`~repro.baselines.adapter.ServingAlgorithm`
    that served the schedule (``"dsg"`` for the default adapter).
    ``working_set_bound`` is the bound accumulated over *this scenario's*
    requests (a delta of the algorithm's running sum, so reports stay
    scoped when an adapter serves several scenarios) and ``dummy_count``
    the structure's current auxiliary nodes; both are 0 for algorithms
    that do not track them (only DSG does).
    """

    scenario: str
    initial_nodes: int
    final_nodes: int
    requests: int
    joins: int
    leaves: int
    total_cost: int
    total_routing_cost: int
    average_cost: float
    working_set_bound: float
    final_height: int
    max_height: int
    dummy_count: int
    elapsed_seconds: float
    batches: int
    costs: Optional[List[int]] = None
    algorithm: str = "dsg"
    crashes: int = 0
    recoveries: int = 0

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.requests / self.elapsed_seconds


# --------------------------------------------------------------------- runner
def run_scenario(
    scenario: Scenario,
    config: Optional[DSGConfig] = None,
    keep_costs: bool = False,
    algorithm: Optional[ServingAlgorithm] = None,
) -> ScenarioReport:
    """Execute ``scenario`` on any :class:`ServingAlgorithm`.

    With no ``algorithm`` a fresh :class:`~repro.core.dsg.DynamicSkipGraph`
    is built over ``scenario.initial_keys`` (``config`` applies to it) and
    driven through a :class:`~repro.baselines.adapter.DSGAdapter`.  Pass a
    pre-built adapter — a baseline, or a ``DSGAdapter`` around a customised
    instance — to replay the identical schedule on a different algorithm.

    Consecutive requests are flushed through the algorithm's
    :meth:`~repro.baselines.adapter.ServingAlgorithm.request_batch`
    pipeline (for DSG, the amortized ``run_requests`` with
    ``keep_results=False`` — aggregates stay exact via the running
    counters); joins and leaves call the membership operations
    (Section IV-G for the skip-graph structures).  For DSG, per-request
    costs are identical to a sequential ``request()`` replay of the same
    schedule.
    """
    if algorithm is None:
        algorithm = DSGAdapter(keys=scenario.initial_keys, config=config)
    elif config is not None:
        raise ValueError("config applies to the default DSG algorithm only")
    base_served = algorithm.requests_served
    base_cost = algorithm.total_cost
    base_routing = algorithm.total_routing
    # working_set_bound() is a running sum over the request stream, so its
    # delta is exactly this scenario's contribution — keeping every report
    # field scoped to the scenario even when the adapter is reused.
    base_ws = algorithm.working_set_bound()
    joins = leaves = crashes = recoveries = batches = 0
    max_height = algorithm.height()
    costs: Optional[List[int]] = [] if keep_costs else None
    pending: List[Request] = []
    started = time.perf_counter()

    def flush() -> None:
        nonlocal batches, max_height
        if not pending:
            return
        outcome = algorithm.request_batch(pending, keep_costs=keep_costs)
        batches += 1
        if outcome.max_height > max_height:
            max_height = outcome.max_height
        if costs is not None and outcome.costs is not None:
            costs.extend(outcome.costs)
        pending.clear()

    for event in scenario.events:
        if isinstance(event, RequestEvent):
            pending.append((event.source, event.destination))
        elif isinstance(event, JoinEvent):
            flush()
            algorithm.join(event.key)
            joins += 1
        elif isinstance(event, CrashEvent):
            # A centralized structure has no dark window: the crash
            # degenerates to an immediate repair, i.e. a leave minus the
            # goodbye (which only the message-passing layer can observe).
            flush()
            algorithm.leave(event.key)
            crashes += 1
        elif isinstance(event, RecoveryEvent):
            # Rejoin as a fresh identity: the crash already removed the key
            # (above), so recovery is exactly a join with new bits.
            flush()
            algorithm.join(event.key)
            recoveries += 1
        else:
            flush()
            algorithm.leave(event.key)
            leaves += 1
        if not isinstance(event, RequestEvent):
            height = algorithm.height()
            if height > max_height:
                max_height = height
    flush()
    elapsed = time.perf_counter() - started

    served = algorithm.requests_served - base_served
    total_cost = algorithm.total_cost - base_cost
    return ScenarioReport(
        scenario=scenario.name,
        initial_nodes=len(scenario.initial_keys),
        final_nodes=algorithm.population(),
        requests=served,
        joins=joins,
        leaves=leaves,
        total_cost=total_cost,
        total_routing_cost=algorithm.total_routing - base_routing,
        average_cost=total_cost / served if served else 0.0,
        working_set_bound=algorithm.working_set_bound() - base_ws,
        final_height=algorithm.height(),
        max_height=max_height,
        dummy_count=algorithm.dummy_count(),
        elapsed_seconds=elapsed,
        batches=batches,
        costs=costs,
        algorithm=algorithm.name,
        crashes=crashes,
        recoveries=recoveries,
    )


def scenario_requests(scenario: Scenario) -> List[Request]:
    """The scenario's request events as plain ``(source, destination)`` pairs.

    This is what the offline-static baseline optimises over and what the
    working-set bound of Theorem 1 is computed from (the bound depends only
    on the request sequence, never on the serving algorithm).
    """
    return [
        (event.source, event.destination)
        for event in scenario.events
        if isinstance(event, RequestEvent)
    ]


def workload_scenario(
    name: str,
    keys: List[Key],
    length: int,
    seed: Optional[int] = None,
    **kwargs,
) -> Scenario:
    """Lift a churn-free workload into a :class:`Scenario`.

    Wraps :func:`repro.workloads.sequences.generate_workload` so that plain
    request sequences and churn schedules flow through the same
    scenario-driven comparison machinery (E9 runs both kinds).
    """
    from repro.workloads.sequences import generate_workload

    requests = generate_workload(name, keys, length, seed=seed, **kwargs)
    return Scenario(
        name=name,
        initial_keys=list(keys),
        events=[RequestEvent(u, v) for u, v in requests],
        params={"workload": name, "n": len(keys), "length": length, "seed": seed, **kwargs},
    )


# ------------------------------------------------------- simulation bridge
def apply_local_op(sim: Simulator, graph: SkipGraph, op: LocalOp) -> set:
    """Execute one local op against a live simulator: graph + per-level links.

    ``graph`` is the topology mirror the simulator's network was built from
    (:func:`~repro.distributed.routing_protocol.skip_graph_network`).  The
    link rewiring itself lives in the op-driven delta builder next to the
    network convention it maintains —
    :func:`~repro.distributed.routing_protocol.patch_network` — which keeps
    ``network == skip_graph_network(graph)`` (links and labels) true after
    every op; this bridge adds the *process* side of a departure
    (:class:`~repro.core.local_ops.NodeLeaveOp` /
    :class:`~repro.core.local_ops.DummyRemoveOp`): the departed node's
    process, if one is live, is retired from the simulator.

    Returns the set of keys whose links changed (the op's bounded
    neighbourhood) — what a driver must refresh routing tables for.
    """
    # Imported lazily: repro.distributed.dsg_protocol imports this module at
    # load time, so a module-level import back into repro.distributed would
    # be circular.
    from repro.distributed.routing_protocol import patch_network

    affected = patch_network(sim.network, graph, op)
    if isinstance(op, (NodeLeaveOp, DummyRemoveOp)) and op.key in sim.processes:
        sim.retire(op.key)
    return affected


def apply_join(sim: Simulator, graph: SkipGraph, key: Key, rng) -> None:
    """Join ``key`` into ``graph`` and rewire ``sim``'s network accordingly.

    Membership bits are drawn with the classical join rule
    (:func:`~repro.skipgraph.build.draw_membership_bits`, the same stream
    discipline the DSG/baseline adapters use) and the join is executed as a
    :class:`~repro.core.local_ops.NodeJoinOp` through
    :func:`apply_local_op` — the same kernel path every other structural
    change takes.
    """
    bits = draw_membership_bits(graph, key, rng)
    apply_local_op(sim, graph, NodeJoinOp(key, tuple(bits)))


def apply_leave(sim: Simulator, graph: SkipGraph, key: Key) -> None:
    """Remove ``key`` from ``graph``, rewire ``sim``'s network, retire its process.

    Executed as a :class:`~repro.core.local_ops.NodeLeaveOp` through
    :func:`apply_local_op`: the departed node's left/right list neighbours
    become adjacent at every level it occupied (links close up over it,
    Section IV-G); messages still in flight towards the node are dropped
    and recorded by the engine, never raised.
    """
    apply_local_op(sim, graph, NodeLeaveOp(key))


def apply_crash(sim: Simulator, graph: SkipGraph, key: Key) -> None:
    """Crash ``key`` on the simulator; the ``graph`` mirror keeps the node.

    This is the *failure* half of the crash/leave distinction: the engine's
    :meth:`~repro.simulation.Simulator.crash` kills the process without its
    ``on_retire`` goodbye, darkens its links and bans re-entry — but the
    skip-graph mirror is deliberately left untouched.  Until a repair wave
    runs (:func:`repair_crashes`), the graph still *believes* the node
    exists, which is exactly the dark window the surviving routers must
    route around; the graph/network views legitimately diverge during it,
    so run the integrity sweep only after repair.
    """
    sim.crash(key)


def apply_recovery(sim: Simulator, graph: SkipGraph, key: Key, rng, k: int = 1) -> Tuple[set, int]:
    """Recover crashed ``key`` as a *fresh identity* and splice it back in.

    Lifts the engine's re-entry ban (:meth:`~repro.simulation.Simulator.recover`),
    draws *new* membership bits with the classical join rule
    (:func:`~repro.skipgraph.build.draw_membership_bits` — the same stream
    discipline :func:`apply_join` uses; the old identity's bits are gone
    with its tables) and rewires graph + network through
    :func:`~repro.distributed.routing_protocol.rejoin_crash_links`.

    The crash's hole must already be closed — run :func:`repair_crashes`
    for the key before recovering it; a recovery is a join, and joining a
    graph that still contains the key is a kernel error.  Returns
    ``(affected survivor keys, links added)`` — survivors whose routing
    tables must be refreshed, and the rejoin cost.
    """
    # Lazy for the same circularity reason as apply_local_op.
    from repro.distributed.routing_protocol import rejoin_crash_links

    sim.recover(key)
    bits = draw_membership_bits(graph, key, rng)
    return rejoin_crash_links(sim.network, graph, key, tuple(bits), k=k)


def repair_crashes(
    sim: Simulator,
    graph: SkipGraph,
    keys: Sequence[Key],
    k: int = 1,
) -> Tuple[set, int]:
    """Excise crashed ``keys`` from the graph and close the network over them.

    Runs :func:`~repro.distributed.routing_protocol.repair_crash_links` for
    each crashed key in order: the key leaves the graph through the local-op
    kernel and the survivors within list distance ``k`` of the hole are
    relinked, restoring ``network == skip_graph_network(graph, k)`` exactly.
    Returns the union of surviving keys whose link neighbourhood changed
    (the set a driver must refresh routing tables for) and the total number
    of links added.
    """
    # Lazy for the same circularity reason as apply_local_op.
    from repro.distributed.routing_protocol import repair_crash_links

    affected: set = set()
    links_added = 0
    for key in keys:
        touched, added = repair_crash_links(sim.network, graph, key, k=k)
        affected.update(touched)
        links_added += added
    # A later repair in the same wave may have excised a key an earlier
    # repair reported as affected; only survivors need table refreshes.
    affected.difference_update(keys)
    return affected, links_added


@dataclass
class ScenarioReplay:
    """What :func:`replay_scenario` scheduled onto the simulator."""

    scenario: str
    joins: int
    leaves: int
    requests: int
    first_round: int
    last_round: int
    crashes: int = 0
    recoveries: int = 0


def replay_scenario(
    sim: Simulator,
    scenario: Scenario,
    process_factory: Optional[Callable[[Key], Optional[NodeProcess]]] = None,
    graph: Optional[SkipGraph] = None,
    start_round: Optional[int] = None,
    spacing: int = 1,
    on_request: Optional[Callable[[Simulator, RequestEvent], None]] = None,
    seed: Optional[int] = None,
) -> ScenarioReplay:
    """Schedule ``scenario``'s events as churn callbacks on a live simulator.

    This is the bridge between the workload layer and the message-passing
    arena: the same :func:`churn_scenario` / :func:`scale_scenario`
    schedules that drive the DSG front end replay against the
    :mod:`repro.distributed` protocols unchanged.  Events are assigned
    consecutive rounds (``spacing`` apart, starting at ``start_round``,
    default: the simulator's next round) and injected through
    :meth:`~repro.simulation.Simulator.schedule`:

    * :class:`JoinEvent` — :func:`apply_join` rewires ``graph`` and the
      network; ``process_factory(key)`` (if given) builds the joiner's
      process, registered so it receives ``on_start`` in its join round.
    * :class:`LeaveEvent` — :func:`apply_leave` rewires and retires.
    * :class:`CrashEvent` — :func:`apply_crash` kills the process crash-stop
      (no rewiring: the dark window lasts until the caller runs
      :func:`repair_crashes`).
    * :class:`RecoveryEvent` — :func:`apply_recovery` rejoins the key as a
      fresh identity (new bits from the replay's rng stream) and registers
      its process via ``process_factory`` like a join.  The caller must
      have repaired the key's crash before its recovery round fires.
    * :class:`RequestEvent` — handed to ``on_request(sim, event)`` when
      provided (e.g. to enqueue a routing request on the source process);
      skipped otherwise (no round consumed).

    ``graph`` must be the skip-graph topology mirror the simulator's
    network was built from (:func:`~repro.distributed.routing_protocol.skip_graph_network`);
    it is required when the scenario contains churn.  The run does not
    quiesce before the last scheduled event, so a protocol running on the
    simulator experiences the whole churn schedule.
    """
    has_churn = any(not isinstance(event, RequestEvent) for event in scenario.events)
    if has_churn and graph is None:
        raise ValueError("replaying a scenario with churn requires the skip graph mirror")
    rng = make_rng(seed if seed is not None else scenario.params.get("seed"))
    cursor = sim.round if start_round is None else max(start_round, sim.round)
    first = cursor
    joins = leaves = crashes = recoveries = requests = 0
    scheduled_any = False
    for event in scenario.events:
        if isinstance(event, RequestEvent):
            if on_request is None:
                continue
            requests += 1

            def request_callback(s: Simulator, event=event) -> None:
                on_request(s, event)

            sim.schedule(cursor, request_callback)
        elif isinstance(event, JoinEvent):
            joins += 1

            def join_callback(s: Simulator, key=event.key) -> None:
                apply_join(s, graph, key, rng)
                if process_factory is not None:
                    process = process_factory(key)
                    if process is not None:
                        s.add_process(process)

            sim.schedule(cursor, join_callback)
        elif isinstance(event, CrashEvent):
            crashes += 1

            def crash_callback(s: Simulator, key=event.key) -> None:
                apply_crash(s, graph, key)

            sim.schedule(cursor, crash_callback)
        elif isinstance(event, RecoveryEvent):
            recoveries += 1

            def recovery_callback(s: Simulator, key=event.key) -> None:
                apply_recovery(s, graph, key, rng)
                if process_factory is not None:
                    process = process_factory(key)
                    if process is not None:
                        s.add_process(process)

            sim.schedule(cursor, recovery_callback)
        else:
            leaves += 1

            def leave_callback(s: Simulator, key=event.key) -> None:
                apply_leave(s, graph, key)

            sim.schedule(cursor, leave_callback)
        scheduled_any = True
        cursor += spacing
    return ScenarioReplay(
        scenario=scenario.name,
        joins=joins,
        leaves=leaves,
        requests=requests,
        first_round=first,
        last_round=cursor - spacing if scheduled_any else first,
        crashes=crashes,
        recoveries=recoveries,
    )


# ----------------------------------------------------------------- generators
def churn_scenario(
    n: int = 256,
    length: int = 2000,
    seed: Optional[int] = None,
    base: str = "temporal",
    churn_rate: float = 0.005,
    working_set_size: int = 8,
    drift_probability: float = 0.02,
    pairs: int = 8,
    hot_fraction: float = 0.9,
    name: Optional[str] = None,
    initial_keys: Optional[Sequence[Key]] = None,
    next_key: Optional[Key] = None,
) -> Scenario:
    """Traffic interleaved with node join/leave churn.

    The schedule has ``length`` slots.  Each slot is, with probability
    ``churn_rate``, a churn event — alternating between a :class:`JoinEvent`
    of a fresh key and a :class:`LeaveEvent` of a uniformly chosen inactive
    peer, keeping the population near ``n`` — and a request from the base
    sampler otherwise.  Samplers draw only from peers alive at that point of
    the schedule, and the actively communicating nodes are shielded from
    departure (a request to a departed peer would be invalid).

    Parameters
    ----------
    n:
        Initial population: keys ``1..n``; joined peers get fresh keys above.
    length:
        Number of schedule slots.
    seed:
        RNG seed; the whole schedule is deterministic given it.
    base:
        Traffic model between churn events: ``"temporal"`` (sliding working
        set of ``working_set_size`` nodes with ``drift_probability`` drift),
        ``"hot-pairs"`` (``pairs`` fixed pairs taking ``hot_fraction`` of
        traffic) or ``"uniform"``.
    churn_rate:
        Per-slot probability of a churn event.
    initial_keys:
        Explicit starting population (default: keys ``1..n``; ``n`` is
        ignored when given).  Lets a second churn wave start from the
        population a first wave left behind.
    next_key:
        First key issued to joining peers (default: one above the current
        population's maximum).  When chaining waves, pass the previous
        wave's high-water mark — ``max(alive)`` alone cannot know about an
        earlier joiner that has already departed, so relying on the
        default across waves may re-issue such a key.
    """
    rng = make_rng(seed)
    alive = list(initial_keys) if initial_keys is not None else list(range(1, n + 1))
    n = len(alive)
    if n < max(2 * pairs, working_set_size, 2) + 1:
        raise ValueError("population too small for the requested sampler")
    if next_key is None:
        next_key = max(alive) + 1
    start_keys = list(alive)

    if base == "temporal":
        active = rng.sample(alive, working_set_size)
    elif base == "hot-pairs":
        sampled = rng.sample(alive, 2 * pairs)
        hot = [(sampled[2 * i], sampled[2 * i + 1]) for i in range(pairs)]
        active = [key for pair in hot for key in pair]
    elif base == "uniform":
        active = []
    else:
        raise KeyError(f"unknown base sampler {base!r}")

    def draw_request() -> Request:
        if base == "temporal":
            if rng.random() < drift_probability:
                outsiders = [key for key in alive if key not in active]
                if outsiders:
                    active[rng.randrange(len(active))] = rng.choice(outsiders)
            u, v = rng.sample(active, 2)
            return (u, v)
        if base == "hot-pairs" and rng.random() < hot_fraction:
            return hot[rng.randrange(len(hot))]
        u = rng.choice(alive)
        v = rng.choice(alive)
        while v == u:
            v = rng.choice(alive)
        return (u, v)

    events: List[Event] = []
    join_next = True
    for _ in range(length):
        if rng.random() < churn_rate:
            if join_next:
                events.append(JoinEvent(next_key))
                alive.append(next_key)
                next_key += 1
            else:
                protected = set(active)
                candidates = [key for key in alive if key not in protected]
                if candidates:
                    victim = rng.choice(candidates)
                    alive.remove(victim)
                    events.append(LeaveEvent(victim))
            join_next = not join_next
        else:
            u, v = draw_request()
            events.append(RequestEvent(u, v))

    return Scenario(
        name=name or f"churn-{base}",
        initial_keys=start_keys,
        events=events,
        params={
            "n": n,
            "length": length,
            "seed": seed,
            "base": base,
            "churn_rate": churn_rate,
        },
    )


def scale_scenario(
    n: int = 10_000,
    length: int = 100_000,
    seed: Optional[int] = None,
    hot_pair_count: int = 64,
    cross_pair_count: int = 8,
    cross_fraction: float = 0.01,
    flash_count: int = 2,
    flash_fraction: float = 0.1,
    crowd_size: int = 12,
    churn_rate: float = 0.0005,
    name: Optional[str] = None,
) -> Scenario:
    """The 10k-node scale shape: skewed local traffic, far pairs, flashes, churn.

    Traffic composition (motivated by datacenter measurement studies: a few
    heavy-hitter flows carry most bytes, most flows stay within their
    neighbourhood, hotspots flare up and churn is constant):

    * ``hot_pair_count`` heavy-hitter pairs placed with *overlay locality* —
      each pair shares a deep linked list of the balanced start topology
      (in that construction, bit ``i`` of a node is bit ``i`` of its rank in
      LSB-first binary, so topological neighbours are ranks equal modulo a
      power of two).  Think services deployed next to each other in the
      overlay; DSG serves their steady state at O(1) per request.
    * ``cross_pair_count`` topologically far pairs get a ``cross_fraction``
      trickle; their first contacts trigger deep multi-level
      transformations, exercising the expensive end of the cost model at
      full scale (and re-clustering part of the structure each time).
    * ``flash_count`` flash phases concentrate ``flash_fraction`` of the
      traffic on crowd -> hotspot requests, the crowd drawn from the
      hotspot's topological neighbourhood (a mid-level list of the start
      topology, so a flash exercises bounded mid-size transformations).
    * churn joins/leaves arrive at ``churn_rate`` per slot, alternating, on
      peers outside the active sets.

    The schedule opens with a warmup prologue touching every pair the body
    will request — heavy hitters first, then the flash crowds, then the far
    pairs.  Ordering matters at scale: a level-0 transformation rewrites
    the membership vector of *every* node, so a far pair served before the
    local pairs have clustered would turn each of their first contacts into
    a full rebuild as well.  Warming local pairs on the pristine topology
    keeps the deep transformations limited to the ``cross_pair_count``
    first contacts; after each one, every active pair re-sinks with a
    single mid-size transformation on its next request.

    Every endpoint a request may draw is protected from departure, so the
    schedule is valid by construction.
    """
    rng = make_rng(seed)
    if n < 16 * crowd_size:
        raise ValueError("scale scenario expects a large population")
    alive = list(range(1, n + 1))
    next_key = n + 1

    # Heavy hitters: pairs of ranks (r, r + stride) where the stride is the
    # largest power of two below n.  In the balanced start topology the two
    # nodes share every membership bit except the top one, i.e. they sit in
    # a list of size two — maximal overlay locality.
    stride = 1 << ((n - 1).bit_length() - 1)
    starts = rng.sample(range(n - stride), min(hot_pair_count, n - stride))
    hot = [(start + 1, start + stride + 1) for start in starts]
    hot_nodes = {key for pair in hot for key in pair}

    non_hot = [key for key in alive if key not in hot_nodes]
    if cross_pair_count > 0 and len(non_hot) < 2 * cross_pair_count:
        raise ValueError(
            "not enough keys outside the hot pairs for the requested cross pairs; "
            "lower hot_pair_count or cross_pair_count"
        )
    cross: List[Request] = []
    while len(cross) < cross_pair_count:
        u, v = rng.sample(non_hot, 2)
        cross.append((u, v))
    cross_nodes = {key for pair in cross for key in pair}

    # Flash phases: fixed windows of the schedule.  The crowd shares a
    # mid-level list with the hotspot: ranks equal to the hotspot's modulo
    # 2^m, with m chosen so that the shared list holds a few crowds' worth
    # of nodes.
    flash_slots = int(length * flash_fraction)
    per_flash = flash_slots // max(flash_count, 1)
    flash_windows: List[Tuple[int, int, Key, List[Key]]] = []
    protected = set(hot_nodes) | cross_nodes
    modulus = 1
    while n // (2 * modulus) > 4 * crowd_size:
        modulus *= 2
    for index in range(flash_count):
        window_start = int((index + 0.5) * length / (flash_count + 0.5))
        hotspot_rank = rng.randrange(n)
        hotspot = hotspot_rank + 1
        neighbourhood = [
            rank + 1 for rank in range(hotspot_rank % modulus, n, modulus) if rank != hotspot_rank
        ]
        crowd = rng.sample(neighbourhood, min(crowd_size, len(neighbourhood)))
        flash_windows.append((window_start, window_start + per_flash, hotspot, crowd))
        protected.add(hotspot)
        protected.update(crowd)

    events: List[Event] = [RequestEvent(u, v) for u, v in rng.sample(hot, len(hot))]
    for _, _, hotspot, crowd in flash_windows:
        events.extend(RequestEvent(member, hotspot) for member in crowd)
    events.extend(RequestEvent(u, v) for u, v in cross)
    join_next = True
    for slot in range(length - len(events)):
        if rng.random() < churn_rate:
            if join_next:
                events.append(JoinEvent(next_key))
                alive.append(next_key)
                next_key += 1
            else:
                victim = rng.choice(alive)
                if victim not in protected:
                    alive.remove(victim)
                    events.append(LeaveEvent(victim))
            join_next = not join_next
            continue
        flash = next(
            (window for window in flash_windows if window[0] <= slot < window[1]), None
        )
        if flash is not None and rng.random() < 0.9:
            _, _, hotspot, crowd = flash
            events.append(RequestEvent(rng.choice(crowd), hotspot))
        elif cross and rng.random() < cross_fraction:
            u, v = cross[rng.randrange(len(cross))]
            events.append(RequestEvent(u, v))
        else:
            u, v = hot[rng.randrange(len(hot))]
            events.append(RequestEvent(u, v))

    return Scenario(
        name=name or "scale-mix",
        initial_keys=list(range(1, n + 1)),
        events=events,
        params={
            "n": n,
            "length": length,
            "seed": seed,
            "hot_pairs": hot_pair_count,
            "cross_pairs": cross_pair_count,
            "flashes": flash_count,
            "churn_rate": churn_rate,
        },
    )


def failure_scenario(
    n: int = 256,
    length: int = 2000,
    seed: Optional[int] = None,
    rng=None,
    mode: str = "independent",
    crash_rate: float = 0.01,
    rack_count: int = 16,
    rack_failures: int = 2,
    flash_size: int = 8,
    stale_fraction: float = 0.05,
    adjacent_crash_limit: Optional[int] = None,
    recovery_fraction: float = 0.0,
    recovery_delay: Tuple[int, int] = (8, 64),
    mid_wave_fraction: float = 0.0,
    name: Optional[str] = None,
) -> Scenario:
    """Traffic interleaved with crash-stop failures (no joins, no goodbyes).

    The schedule has ``length`` slots over keys ``1..n``.  Failures never
    take the population below ``n // 2`` (half the overlay survives, the
    regime the route-around machinery is built for), and arrive in one of
    three shapes:

    * ``"independent"`` — each slot is a :class:`CrashEvent` of a uniform
      alive peer with probability ``crash_rate`` (fail-stop background
      attrition);
    * ``"racks"`` — keys are dealt into ``rack_count`` racks by a random
      shuffle (so rack placement is uncorrelated with key order, i.e. a
      rack failure punches scattered holes in every level list), and
      ``rack_failures`` whole racks crash at evenly spaced points of the
      schedule, every member in consecutive events (a correlated burst);
    * ``"flash"`` — a single burst of ``flash_size`` simultaneous crashes
      at the schedule's midpoint (a flash disconnect).

    Every other slot is a :class:`RequestEvent` whose source is always
    alive; with probability ``stale_fraction`` (once anyone has crashed)
    the destination is a *crashed* peer — a request issued by a client
    holding a stale reference.  Those are the schedule's intended
    failures: the message-passing arena counts them as ``failed_requests``
    while every surviving-key request must still be delivered.  Because
    stale destinations are no longer in a centralized structure after the
    crash-as-leave repair, :func:`run_scenario` accepts failure scenarios
    only with ``stale_fraction = 0``; the dark-window semantics live in
    :mod:`repro.distributed.failover`.

    ``adjacent_crash_limit`` encodes the tolerance assumption of a
    k-redundant overlay: between two repair waves it survives at most
    ``k - 1`` *consecutive* (in key order) failures — a wider hole has no
    surviving list member within stepping distance, and routes to keys
    beyond it legitimately strand.  When set, a victim whose crash would
    produce a run longer than the limit within the current unrepaired
    burst is skipped (it survives); ``None`` leaves failures unguarded.
    The arena benchmark passes ``k - 1`` so its every-survivor-delivered
    gate holds by the redundancy guarantee, not by luck.

    ``recovery_fraction`` gives every victim an independent chance to come
    back: a :class:`RecoveryEvent` is scheduled ``rng.randint(*recovery_delay)``
    slots after the crash (dropped if that falls past the schedule's end) —
    the key rejoins as a fresh identity and re-enters the alive pool, the
    stale-destination pool forgets it.  Once any key has recovered, request
    slots steer their destination to a recovered key with the same
    ``stale_fraction`` probability (mirroring the stale steering), so the
    schedule provably routes *to* rejoined identities even when they are a
    vanishing fraction of a large arena — those requests must be delivered,
    which is exactly the recovered-keys-serve gate.  ``mid_wave_fraction`` makes request
    slots fire a crash *mid-wave* with that probability (victim drawn from
    alive peers that are not an endpoint of the current wave's requests, so
    survivor-delivery accounting stays statically checkable); the event
    carries ``mid_wave=True`` so the arena injects it between in-flight
    requests instead of at the quiescent boundary.  Both default to ``0.0``,
    which leaves the classic shapes' rng stream byte-identical — the extra
    coins are only drawn when the feature is on.

    Pass ``rng`` (any :mod:`random`-compatible generator) to draw from an
    existing deterministic stream; otherwise one is built from ``seed``
    via :func:`~repro.simulation.rng.make_rng`.  Given the same stream the
    schedule — recovery timing and mid-wave offsets included — and
    therefore every delivered/failed count downstream is identical.
    """
    if mode not in ("independent", "racks", "flash"):
        raise KeyError(f"unknown failure mode {mode!r}")
    if n < 4:
        raise ValueError("failure scenario expects at least 4 peers")
    if rng is None:
        rng = make_rng(seed)
    alive = list(range(1, n + 1))
    crashed: List[Key] = []
    floor = max(2, n // 2)

    # Correlated modes pre-place their bursts; crashes beyond the survivor
    # floor are dropped (never reordered), keeping the schedule valid.
    burst_slots: Dict[int, List[Key]] = {}
    if mode == "racks":
        shuffled = list(alive)
        rng.shuffle(shuffled)
        racks = [shuffled[index::rack_count] for index in range(rack_count)]
        doomed = rng.sample(range(rack_count), min(rack_failures, rack_count))
        for index, rack in enumerate(doomed):
            slot = int((index + 0.5) * length / (len(doomed) + 0.5))
            burst_slots[slot] = list(racks[rack])
    elif mode == "flash":
        burst_slots[length // 2] = rng.sample(alive, min(flash_size, n - floor))

    # Guard state: a burst is the run of unrepaired crashes — everything
    # since the last wave boundary (exactly what one repair wave later
    # closes up; with mid-wave crashes on, the burst spans the wave's
    # requests too, since mid victims share the boundary victims' repair).
    # ``snapshot`` is the alive order at burst start, ``recent`` the
    # victims taken so far.  ``requests_in_wave`` / ``wave_endpoints``
    # track the current wave's traffic so a mid-wave victim never is (or
    # becomes) an endpoint of a request already in flight.
    snapshot: List[Key] = []
    positions: Dict[Key, int] = {}
    recent: set = set()
    in_burst = False
    requests_in_wave = 0
    wave_endpoints: set = set()
    pending_recoveries: Dict[int, List[Key]] = {}
    recovered: List[Key] = []

    def take_victim(key: Key, slot: int, mid: bool = False) -> bool:
        nonlocal in_burst, requests_in_wave
        if not in_burst or (not mid and requests_in_wave):
            # Wave boundary: the previous burst's holes are repaired before
            # this crash lands, so the adjacency guard starts fresh.
            snapshot[:] = alive
            positions.clear()
            positions.update((member, index) for index, member in enumerate(snapshot))
            recent.clear()
            in_burst = True
        if not mid:
            requests_in_wave = 0
            wave_endpoints.clear()
        if adjacent_crash_limit is not None:
            run = 1
            index = positions[key] - 1
            while index >= 0 and snapshot[index] in recent:
                run += 1
                index -= 1
            index = positions[key] + 1
            while index < len(snapshot) and snapshot[index] in recent:
                run += 1
                index += 1
            if run > adjacent_crash_limit:
                return False
        recent.add(key)
        alive.remove(key)
        crashed.append(key)
        if key in recovered:
            recovered.remove(key)
        events.append(CrashEvent(key, mid_wave=mid))
        if recovery_fraction > 0.0 and rng.random() < recovery_fraction:
            due = slot + rng.randint(recovery_delay[0], recovery_delay[1])
            if due < length:
                pending_recoveries.setdefault(due, []).append(key)
        return True

    events: List[Event] = []
    for slot in range(length):
        due = pending_recoveries.pop(slot, None)
        if due:
            for key in due:
                events.append(RecoveryEvent(key))
                insort(alive, key)
                crashed.remove(key)
                recovered.append(key)
            # A recovery is a wave boundary: the arena repairs every open
            # hole before the key rejoins, so the burst and wave reset.
            in_burst = False
            requests_in_wave = 0
            wave_endpoints.clear()
        burst = burst_slots.get(slot)
        if burst is not None:
            for key in burst:
                if len(alive) <= floor:
                    break
                take_victim(key, slot)
            continue
        if mode == "independent" and len(alive) > floor and rng.random() < crash_rate:
            take_victim(rng.choice(alive), slot)
            continue
        if (
            mid_wave_fraction > 0.0
            and requests_in_wave
            and len(alive) > floor
            and rng.random() < mid_wave_fraction
        ):
            candidates = [key for key in alive if key not in wave_endpoints]
            if candidates and take_victim(rng.choice(candidates), slot, mid=True):
                continue
        source = rng.choice(alive)
        destination: Optional[Key] = None
        if crashed and rng.random() < stale_fraction:
            destination = rng.choice(crashed)
        elif recovered and rng.random() < stale_fraction:
            # Steer toward a rejoined identity (coin drawn only once a
            # recovery happened, so recovery-free streams are untouched).
            pool = [key for key in recovered if key != source]
            if pool:
                destination = rng.choice(pool)
        if destination is None:
            destination = rng.choice(alive)
            while destination == source:
                destination = rng.choice(alive)
        events.append(RequestEvent(source, destination))
        requests_in_wave += 1
        wave_endpoints.add(source)
        wave_endpoints.add(destination)

    return Scenario(
        name=name or f"failures-{mode}",
        initial_keys=list(range(1, n + 1)),
        events=events,
        params={
            "n": n,
            "length": length,
            "seed": seed,
            "mode": mode,
            "crash_rate": crash_rate,
            "rack_count": rack_count,
            "rack_failures": rack_failures,
            "flash_size": flash_size,
            "stale_fraction": stale_fraction,
            "adjacent_crash_limit": adjacent_crash_limit,
            "recovery_fraction": recovery_fraction,
            "recovery_delay": recovery_delay,
            "mid_wave_fraction": mid_wave_fraction,
        },
    )
