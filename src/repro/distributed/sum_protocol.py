"""Distributed sum over a balanced skip list, as a message-passing protocol.

Appendix D: each node forwards its number to the nearest neighbour that
stepped up to the next level; receivers add and forward upward recursively;
the root broadcasts the total back down.  The protocol runs over the
*segment tree* induced by a :class:`repro.skiplist.BalancedSkipList` — every
node's parent is the promoted node owning its segment at the lowest level
where the node itself stops being promoted.  Each message carries one
partial sum (one word).

The processes are fully message-driven: a node is passive (``done``) from
the start and acts only when partials or the total arrive, so the engine's
active set stays proportional to the messages in flight rather than the
population — the convergecast over 4096 leaves costs O(n) process
invocations total, not O(n * rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional

from repro.simulation import Message, Network, NodeProcess, RoundContext, Simulator, SimulatorConfig
from repro.skiplist.balanced import BalancedSkipList

__all__ = ["SumProtocolResult", "install_sum", "run_sum_protocol", "segment_tree"]

Key = Hashable


@dataclass
class SumProtocolResult:
    """Outcome of one aggregation."""

    total: float
    rounds: int
    messages: int
    max_message_bits: int
    congestion_violations: int
    received_by_all: bool
    dropped_messages: int = 0
    total_bits: int = 0


def segment_tree(skiplist: BalancedSkipList) -> Dict[Key, Optional[Key]]:
    """Parent pointers of the aggregation tree induced by the skip list.

    A node's parent is the owner of its segment at the highest level the
    node itself reaches; the root (left-most node) has parent ``None``.
    The tree has depth ``height - 1`` and fan-in at most ``2a``.
    """
    parents: Dict[Key, Optional[Key]] = {item: None for item in skiplist.levels[0]}
    for level in range(skiplist.height - 1):
        promoted_next = set(skiplist.levels[level + 1])
        for owner, members in skiplist.segments(level):
            for member in members:
                if member not in promoted_next:
                    parents[member] = owner
    parents[skiplist.root] = None
    return parents


class _SumProcess(NodeProcess):
    def __init__(self, key: Key, value: float, parent: Optional[Key], children: List[Key]) -> None:
        super().__init__(key)
        self.value = float(value)
        self.parent = parent
        self.children = list(children)
        self.pending = set(children)
        self.accumulated = float(value)
        self.total: Optional[float] = None
        self.sent_up = False
        # Message-driven: passive throughout, woken by partials / the total.
        self.done = True

    def memory_words(self) -> int:
        return 5 + len(self.children)

    def _maybe_send_up(self, ctx: RoundContext) -> None:
        if self.pending or self.sent_up:
            return
        if self.parent is None:
            self.total = self.accumulated
            self.result = self.total
            for child in self.children:
                ctx.send(child, "total", self.total)
            self.sent_up = True
        else:
            ctx.send(self.parent, "partial", self.accumulated)
            self.sent_up = True

    def on_start(self, ctx: RoundContext) -> None:
        self._maybe_send_up(ctx)

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for message in inbox:
            if message.kind == "partial":
                self.accumulated += message.payload
                self.pending.discard(message.sender)
            elif message.kind == "total":
                self.total = message.payload
                self.result = self.total
                for child in self.children:
                    ctx.send(child, "total", self.total)
        self._maybe_send_up(ctx)


def install_sum(
    simulator: Simulator,
    skiplist: BalancedSkipList,
    values: Mapping[Key, float],
) -> Dict[Key, _SumProcess]:
    """Register sum processes over ``skiplist``'s segment tree.

    The simulator's network must contain one link per (child, parent) pair
    of :func:`segment_tree` (label ``"segment"``); on a reused engine,
    retire the previous generation first.
    """
    base = skiplist.levels[0]
    missing = [item for item in base if item not in values]
    if missing:
        raise ValueError(f"missing values for items: {missing[:5]!r}")
    parents = segment_tree(skiplist)
    children: Dict[Key, List[Key]] = {item: [] for item in base}
    for child, parent in parents.items():
        if parent is not None:
            children[parent].append(child)
    processes: Dict[Key, _SumProcess] = {}
    for item in base:
        process = _SumProcess(item, values[item], parents[item], children[item])
        processes[item] = process
        simulator.add_process(process)
    return processes


def segment_network(skiplist: BalancedSkipList) -> Network:
    """Network with one link per (child, parent) pair of the segment tree."""
    network = Network()
    for item in skiplist.levels[0]:
        network.add_node(item)
    for child, parent in segment_tree(skiplist).items():
        if parent is not None:
            network.add_link(child, parent, label="segment")
    return network


def run_sum_protocol(
    skiplist: BalancedSkipList,
    values: Mapping[Key, float],
    seed: Optional[int] = None,
) -> SumProtocolResult:
    """Aggregate ``values`` over the skip list's segment tree."""
    network = segment_network(skiplist)
    simulator = Simulator(
        network, SimulatorConfig(seed=seed, max_rounds=20 * skiplist.height + 10 * len(skiplist.levels[0]))
    )
    processes = install_sum(simulator, skiplist, values)
    metrics = simulator.run()

    root_total = processes[skiplist.root].total
    received_by_all = all(process.total == root_total for process in processes.values())
    return SumProtocolResult(
        total=float(root_total if root_total is not None else 0.0),
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
        received_by_all=received_by_all,
        dropped_messages=metrics.dropped_messages,
        total_bits=metrics.total_bits,
    )
