"""Broadcast along a linked list (the DSG transformation notification).

Upon a request, ``u`` and ``v`` broadcast a transformation notification to
every node of ``l_alpha`` (Algorithm 1, step 1).  The protocol below floods
the notification along the list links: the initiator sends to both its
neighbours, every receiver forwards away from the direction it heard from.
One hop per round; the message carries the initiator and a constant number
of words per level of payload (the structural engine accounts for the
``O(H_t)``-word payload by charging extra rounds, since CONGEST only allows
``O(log n)`` bits per round).

:func:`install_broadcast` registers the processes on an existing simulator
(the churn arena runs broadcasts over a network whose list links are being
rewired underneath it — a wavefront that reaches a departed neighbour is a
recorded drop, and the coverage count reports how far it got);
:func:`run_list_broadcast` is the one-shot fresh-simulator measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.simulation import Message, Network, NodeProcess, RoundContext, Simulator, SimulatorConfig

__all__ = ["BroadcastResult", "install_broadcast", "run_list_broadcast"]

Key = Hashable


@dataclass
class BroadcastResult:
    """Outcome of one list broadcast."""

    initiator: Key
    reached: List[Key]
    rounds: int
    messages: int
    max_message_bits: int
    congestion_violations: int
    dropped_messages: int = 0
    total_bits: int = 0

    @property
    def coverage(self) -> int:
        return len(self.reached)


class _BroadcastProcess(NodeProcess):
    def __init__(self, key: Key, left: Optional[Key], right: Optional[Key], is_initiator: bool) -> None:
        super().__init__(key)
        self.left = left
        self.right = right
        self.is_initiator = is_initiator
        self.received = is_initiator
        self.done = not is_initiator

    def memory_words(self) -> int:
        return 4

    def on_start(self, ctx: RoundContext) -> None:
        if not self.is_initiator:
            return
        for neighbor in (self.left, self.right):
            if neighbor is not None:
                ctx.send(neighbor, "notify", {"from": self.node_id})
        self.result = "notified"
        self.done = True

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for message in inbox:
            if message.kind != "notify" or self.received:
                continue
            self.received = True
            self.result = "notified"
            sender = message.sender
            forward = self.right if sender == self.left else self.left
            if forward is not None:
                ctx.send(forward, "notify", {"from": self.node_id})
        self.done = True


def install_broadcast(
    simulator: Simulator, members: Sequence[Key], initiator: Key
) -> Dict[Key, _BroadcastProcess]:
    """Register broadcast processes for the (ordered) list ``members``.

    The simulator's network must contain the consecutive list links.  On a
    reused engine, retire the previous generation first.
    """
    members = list(members)
    if initiator not in members:
        raise ValueError("the initiator must be a member of the list")
    processes: Dict[Key, _BroadcastProcess] = {}
    for index, key in enumerate(members):
        left = members[index - 1] if index > 0 else None
        right = members[index + 1] if index + 1 < len(members) else None
        process = _BroadcastProcess(key, left, right, is_initiator=(key == initiator))
        processes[key] = process
        simulator.add_process(process)
    return processes


def run_list_broadcast(members: Sequence[Key], initiator: Key, seed: Optional[int] = None) -> BroadcastResult:
    """Broadcast from ``initiator`` to every member of the (ordered) list."""
    members = list(members)
    if initiator not in members:
        raise ValueError("the initiator must be a member of the list")
    network = Network()
    for key in members:
        network.add_node(key)
    for left, right in zip(members, members[1:]):
        network.add_link(left, right, label="list")

    simulator = Simulator(network, SimulatorConfig(seed=seed, max_rounds=4 * len(members) + 10))
    processes = install_broadcast(simulator, members, initiator)
    metrics = simulator.run()
    reached = [key for key, process in processes.items() if process.received]
    return BroadcastResult(
        initiator=initiator,
        reached=reached,
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
        dropped_messages=metrics.dropped_messages,
        total_bits=metrics.total_bits,
    )
