"""Crash-stop failure arena: dark windows, route-around, repair, integrity.

The other drivers in this package treat departures as *graceful*: the
overlay is rewired in the same breath as the process retires, so no router
ever holds a stale neighbour.  This module runs the opposite regime — the
one the k-redundant tables exist for.  A :func:`failure_scenario
<repro.workloads.scenarios.failure_scenario>` schedule is executed as a
sequence of **waves**, each of which is the full crash-stop lifecycle:

1. **crash burst** — at quiescence, every :class:`~repro.workloads.scenarios.CrashEvent`
   of the wave kills its node through :meth:`Simulator.crash
   <repro.simulation.Simulator.crash>`: links dark, no ``on_retire``
   goodbye, no re-entry.  The skip-graph mirror is *not* touched — the
   survivors' view of the world is now wrong, which is the point.
2. **dark window** — the wave's requests are injected (staggered over
   consecutive rounds) and routed while the holes are still open.  A
   router whose queued hop lost its link marks the neighbour dark and
   re-forwards through its k-redundant table
   (:meth:`NeighborTable.next_hop <repro.distributed.routing_protocol.NeighborTable.next_hop>`),
   so every request to a *surviving* key is delivered by route-around,
   while a request to a crashed key strands at the hole's edge and is
   counted as a ``failed_request`` (never a drop, never an exception).
3. **repair wave** — :func:`repair_crashes
   <repro.workloads.scenarios.repair_crashes>` excises the crashed keys
   from the graph and closes every level list up over them under
   redundancy ``k`` (restoring ``network == skip_graph_network(graph, k)``
   exactly), and the surviving routers whose neighbourhood changed get
   fresh :class:`~repro.distributed.routing_protocol.NeighborTable`
   snapshots.
4. **integrity sweep** — :func:`verify_skip_graph_integrity
   <repro.skipgraph.integrity.verify_skip_graph_integrity>` audits the
   repaired structure *and* the live network against it; the arena's
   standing invariant is that every sweep comes back clean.

Two extensions lift the original safety rails:

* **Recovery** — a wave may open with :class:`~repro.workloads.scenarios.RecoveryEvent`
  entries: the engine's re-entry ban is lifted
  (:meth:`~repro.simulation.Simulator.recover`) and the key rejoins *as a
  fresh identity* through the kernel's join path
  (:func:`~repro.workloads.scenarios.apply_recovery` — new membership
  bits, :func:`~repro.distributed.routing_protocol.rejoin_crash_links`
  rewiring), gets a fresh router process and serves the wave's traffic
  like any survivor.  Every router forgets the key from its dark set —
  the identity that crashed is gone; the one that rejoined is live.
* **Mid-wave crashes** — a :class:`~repro.workloads.scenarios.CrashEvent`
  flagged ``mid_wave`` fires *between request injections* while earlier
  requests are still in flight.  Messages en route to (or queued through)
  the victim become counted engine drops; because every request carries a
  request id recorded in a shared
  :class:`~repro.distributed.routing_protocol.RouteLedger`, a rid with no
  terminal outcome after quiescence is exactly such an in-flight
  casualty.  The arena retries those after the repair wave (bounded by
  ``max_retries``, ``retry_backoff`` rounds apart) and only counts a
  request failed when its destination is genuinely gone.

Flow control gates every send on the current link set, so the arena runs
with ``strict_congest`` *and* ``strict_links`` both on even under mid-wave
crashes: a congestion violation or an illegal send raises at the offending
round.  Requests are conserved by construction —
``delivered + failed + retried-then-delivered == injected`` holds per
wave, and message drops appear only in waves that crash mid-flight.

``benchmarks/bench_e16_failures.py`` runs this arena at 4096 nodes and
publishes the delivered/failed/repair-cost accounting as a schema-v7
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distributed.routing_protocol import (
    NeighborTable,
    RouteLedger,
    install_routing,
    make_router,
    skip_graph_network,
)
from repro.simulation import Simulator, SimulatorConfig
from repro.simulation.rng import make_rng
from repro.skipgraph.build import build_balanced_skip_graph
from repro.skipgraph.integrity import verify_skip_graph_integrity
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph
from repro.workloads.scenarios import (
    CrashEvent,
    RecoveryEvent,
    RequestEvent,
    Scenario,
    apply_crash,
    apply_recovery,
    repair_crashes,
)

__all__ = [
    "FailureArenaReport",
    "FailureWaveReport",
    "Wave",
    "run_failure_arena",
    "segment_waves",
]


@dataclass
class FailureWaveReport:
    """One rejoin + crash burst + dark-window batch + repair + sweep.

    ``crashes`` counts every victim of the wave (boundary *and* mid-wave;
    ``mid_wave_crashes`` is the mid-flight subset).  ``delivered`` counts
    first-attempt deliveries only; a request lost in flight to a mid-wave
    crash and delivered on a later attempt shows up in
    ``retried_delivered`` (``retried`` counts the re-injections), so
    ``failed`` stays exactly the stale-destination requests.
    """

    index: int
    crashes: int
    requests: int
    delivered: int
    failed: int
    route_arounds: int
    dropped_messages: int
    repair_links: int
    tables_refreshed: int
    rounds: int
    recoveries: int = 0
    mid_wave_crashes: int = 0
    rejoin_links: int = 0
    retried: int = 0
    retried_delivered: int = 0
    integrity_violations: List[str] = field(default_factory=list)

    @property
    def conserved(self) -> bool:
        """Every injected request reached exactly one terminal outcome."""
        return self.delivered + self.failed + self.retried_delivered == self.requests


@dataclass
class FailureArenaReport:
    """Outcome of one :func:`run_failure_arena` execution."""

    scenario: str
    n: int
    k: int
    waves: List[FailureWaveReport]
    rounds: int
    messages: int
    total_bits: int
    max_message_bits: int
    congestion_violations: int
    dropped_messages: int

    @property
    def crashes(self) -> int:
        return sum(wave.crashes for wave in self.waves)

    @property
    def requests(self) -> int:
        return sum(wave.requests for wave in self.waves)

    @property
    def delivered(self) -> int:
        return sum(wave.delivered for wave in self.waves)

    @property
    def failed(self) -> int:
        return sum(wave.failed for wave in self.waves)

    @property
    def route_arounds(self) -> int:
        return sum(wave.route_arounds for wave in self.waves)

    @property
    def repair_links(self) -> int:
        return sum(wave.repair_links for wave in self.waves)

    @property
    def tables_refreshed(self) -> int:
        return sum(wave.tables_refreshed for wave in self.waves)

    @property
    def recoveries(self) -> int:
        return sum(wave.recoveries for wave in self.waves)

    @property
    def mid_wave_crashes(self) -> int:
        return sum(wave.mid_wave_crashes for wave in self.waves)

    @property
    def rejoin_links(self) -> int:
        return sum(wave.rejoin_links for wave in self.waves)

    @property
    def retried(self) -> int:
        return sum(wave.retried for wave in self.waves)

    @property
    def retried_delivered(self) -> int:
        return sum(wave.retried_delivered for wave in self.waves)

    @property
    def conserved(self) -> bool:
        return all(wave.conserved for wave in self.waves)

    @property
    def integrity_clean(self) -> bool:
        return all(not wave.integrity_violations for wave in self.waves)


@dataclass
class Wave:
    """One segmented wave of a failure schedule.

    ``recoveries`` rejoin first, then ``crashes`` land at the quiescent
    boundary, then ``requests`` are injected; ``mid_wave`` entries
    ``(offset, key)`` crash ``key`` after the first ``offset`` requests
    have been injected — while they may still be in flight.
    """

    recoveries: List[Key] = field(default_factory=list)
    crashes: List[Key] = field(default_factory=list)
    requests: List[Tuple[Key, Key]] = field(default_factory=list)
    mid_wave: List[Tuple[int, Key]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.recoveries or self.crashes or self.requests or self.mid_wave)

    @property
    def crash_keys(self) -> List[Key]:
        """Every victim the wave's repair must excise (boundary + mid)."""
        return self.crashes + [key for _, key in self.mid_wave]


def segment_waves(scenario: Scenario) -> List[Wave]:
    """Split a failure schedule into :class:`Wave` segments.

    A wave is a maximal run of :class:`~repro.workloads.scenarios.RecoveryEvent`,
    then :class:`~repro.workloads.scenarios.CrashEvent`, then
    :class:`~repro.workloads.scenarios.RequestEvent` (any part may be
    empty: a schedule that opens with traffic yields a crash-free baseline
    wave, a trailing burst a request-free one).  A crash flagged
    ``mid_wave`` that arrives after the wave's requests started does *not*
    close the wave — it is recorded as an in-flight ``(offset, key)``
    entry; one without preceding requests degrades to a boundary crash.  A
    recovery always closes a non-empty wave (the arena repairs every open
    hole before a key rejoins).  Join/leave events are rejected — graceful
    churn belongs to the other arenas.
    """
    waves: List[Wave] = []
    current = Wave()
    for event in scenario.events:
        if isinstance(event, RecoveryEvent):
            if current.crashes or current.requests or current.mid_wave:
                waves.append(current)
                current = Wave()
            current.recoveries.append(event.key)
        elif isinstance(event, CrashEvent):
            if event.mid_wave and current.requests:
                current.mid_wave.append((len(current.requests), event.key))
            else:
                if current.requests:
                    waves.append(current)
                    current = Wave()
                current.crashes.append(event.key)
        elif isinstance(event, RequestEvent):
            current.requests.append((event.source, event.destination))
        else:
            raise ValueError(
                f"failure arena schedules contain only crashes, recoveries and requests, "
                f"got {event!r}"
            )
    if not current.empty:
        waves.append(current)
    return waves


def run_failure_arena(
    scenario: Scenario,
    k: int = 2,
    seed: Optional[int] = None,
    stagger: int = 32,
    graph: Optional[SkipGraph] = None,
    max_rounds: int = 1_000_000,
    max_retries: int = 2,
    retry_backoff: int = 4,
) -> FailureArenaReport:
    """Execute a failure schedule wave by wave on a fresh CONGEST engine.

    ``k`` is the redundancy the network is built with and the tables route
    around with; ``stagger`` bounds how many requests are injected per
    round (they still interleave freely once in flight).  ``graph``
    defaults to the balanced start topology over the scenario's initial
    keys.  Both strict modes are on: the arena proves its claims by
    *raising* on a congestion violation or an illegal send, not by
    counting them after the fact.

    A request lost in flight to a mid-wave crash (rid with no terminal
    outcome after quiescence) is re-injected after the repair wave — up to
    ``max_retries`` passes, ``retry_backoff`` rounds before each — and
    counted ``retried_delivered`` on success; only requests whose
    destination is genuinely gone end up ``failed``.  ``max_retries=0``
    counts every in-flight loss failed outright.
    """
    if graph is None:
        graph = build_balanced_skip_graph(scenario.initial_keys)
    network = skip_graph_network(graph, k=k)
    sim = Simulator(
        network,
        SimulatorConfig(seed=seed, strict_congest=True, strict_links=True, max_rounds=max_rounds),
    )
    ledger = RouteLedger()
    routers = install_routing(sim, graph, k=k, ledger=ledger)
    sim.run()  # start the (idle) population so waves begin from quiescence
    # Recovered identities draw fresh membership bits from a dedicated
    # arena-owned stream, so same-seed arenas rejoin bit-for-bit alike.
    recovery_rng = make_rng(seed)
    next_rid = 0
    retired_route_arounds = 0

    def route_around_total() -> int:
        # Crashed routers stay in the dict with frozen counters; routers a
        # recovery replaced moved their count into the retired accumulator.
        return retired_route_arounds + sum(router.route_arounds for router in routers.values())

    waves: List[FailureWaveReport] = []
    for index, wave in enumerate(segment_waves(scenario)):
        base_route_arounds = route_around_total()
        base_drops = sim.metrics.dropped_messages
        base_round = sim.round

        rejoin_links = 0
        tables_refreshed = 0
        for key in wave.recoveries:
            affected, added = apply_recovery(sim, graph, key, recovery_rng, k=k)
            rejoin_links += added
            old = routers.pop(key, None)
            if old is not None:
                retired_route_arounds += old.route_arounds
            router = make_router(graph, key, k=k, ledger=ledger)
            routers[key] = router
            sim.add_process(router)
            for neighbor in affected:
                peer = routers.get(neighbor)
                if peer is None or neighbor in sim.crashed:
                    continue
                peer.table = NeighborTable(graph, neighbor, k=k)
                tables_refreshed += 1
            # The identity that crashed is gone for good; the fresh one is
            # live everywhere, not just where links changed.
            for peer in routers.values():
                peer.dark.discard(key)

        for key in wave.crashes:
            apply_crash(sim, graph, key)

        # Cursor-based injection: each flushed batch (and each mid-wave
        # crash) occupies one scheduling round, so a mid crash fires while
        # the earlier batches' messages are still in flight.
        mid_by_offset: Dict[int, List[Key]] = {}
        for offset, key in wave.mid_wave:
            mid_by_offset.setdefault(offset, []).append(key)
        cursor = sim.round
        injected: Dict[int, Tuple[Key, Key]] = {}
        batch: List[Tuple[Key, Key, int]] = []

        def flush_batch() -> None:
            nonlocal cursor
            if not batch:
                return
            entries = list(batch)
            batch.clear()

            def inject(s: Simulator, entries=entries) -> None:
                for source, destination, rid in entries:
                    router = routers[source]
                    router.requests.append((destination, rid))
                    router.done = False

            sim.schedule(cursor, inject)
            cursor += 1

        def schedule_mid_crash(key: Key) -> None:
            nonlocal cursor
            flush_batch()

            def crash_callback(s: Simulator, key=key) -> None:
                apply_crash(s, graph, key)

            sim.schedule(cursor, crash_callback)
            cursor += 1

        for position, (source, destination) in enumerate(wave.requests):
            for key in mid_by_offset.pop(position, ()):
                schedule_mid_crash(key)
            rid = next_rid
            next_rid += 1
            injected[rid] = (source, destination)
            batch.append((source, destination, rid))
            if len(batch) >= max(1, stagger):
                flush_batch()
        for offset in sorted(mid_by_offset):
            for key in mid_by_offset[offset]:
                schedule_mid_crash(key)
        flush_batch()
        if injected or wave.mid_wave:
            sim.run()

        injected_rids = set(injected)
        first_pass_delivered = len(injected_rids & ledger.delivered)

        repair_links = 0
        crash_keys = wave.crash_keys
        if crash_keys:
            affected, repair_links = repair_crashes(sim, graph, crash_keys, k=k)
            for key in affected:
                router = routers.get(key)
                if router is None or key in sim.crashed:
                    continue
                router.table = NeighborTable(graph, key, k=k)
                router.dark.difference_update(crash_keys)
                tables_refreshed += 1

        # Bounded retry with backoff: rids with no terminal outcome were
        # lost in flight to a mid-wave crash; re-inject them over the
        # repaired overlay.  Whatever survives every pass is failed.
        retried = 0
        lost = ledger.unresolved(injected_rids)
        first_pass_lost = set(lost)
        for _ in range(max_retries):
            if not lost:
                break
            resend: List[Tuple[Key, Key, int]] = []
            for rid in sorted(lost):
                source, destination = injected[rid]
                if source in sim.crashed:
                    ledger.failed.add(rid)
                    continue
                resend.append((source, destination, rid))
            if not resend:
                break
            retried += len(resend)

            def reinject(s: Simulator, entries=tuple(resend)) -> None:
                for source, destination, rid in entries:
                    router = routers[source]
                    router.requests.append((destination, rid))
                    router.done = False

            sim.schedule(sim.round + max(0, retry_backoff), reinject)
            sim.run()
            lost = ledger.unresolved(injected_rids)
        ledger.failed.update(lost)
        retried_delivered = len(first_pass_lost & ledger.delivered)

        violations = verify_skip_graph_integrity(graph, sim.network, redundancy=k)
        waves.append(
            FailureWaveReport(
                index=index,
                crashes=len(crash_keys),
                requests=len(injected),
                delivered=first_pass_delivered,
                failed=len(injected_rids & ledger.failed),
                route_arounds=route_around_total() - base_route_arounds,
                dropped_messages=sim.metrics.dropped_messages - base_drops,
                repair_links=repair_links,
                tables_refreshed=tables_refreshed,
                rounds=sim.round - base_round,
                recoveries=len(wave.recoveries),
                mid_wave_crashes=len(wave.mid_wave),
                rejoin_links=rejoin_links,
                retried=retried,
                retried_delivered=retried_delivered,
                integrity_violations=violations,
            )
        )

    metrics = sim.metrics
    return FailureArenaReport(
        scenario=scenario.name,
        n=len(scenario.initial_keys),
        k=k,
        waves=waves,
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        total_bits=metrics.total_bits,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
        dropped_messages=metrics.dropped_messages,
    )
