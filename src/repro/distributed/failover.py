"""Crash-stop failure arena: dark windows, route-around, repair, integrity.

The other drivers in this package treat departures as *graceful*: the
overlay is rewired in the same breath as the process retires, so no router
ever holds a stale neighbour.  This module runs the opposite regime — the
one the k-redundant tables exist for.  A :func:`failure_scenario
<repro.workloads.scenarios.failure_scenario>` schedule is executed as a
sequence of **waves**, each of which is the full crash-stop lifecycle:

1. **crash burst** — at quiescence, every :class:`~repro.workloads.scenarios.CrashEvent`
   of the wave kills its node through :meth:`Simulator.crash
   <repro.simulation.Simulator.crash>`: links dark, no ``on_retire``
   goodbye, no re-entry.  The skip-graph mirror is *not* touched — the
   survivors' view of the world is now wrong, which is the point.
2. **dark window** — the wave's requests are injected (staggered over
   consecutive rounds) and routed while the holes are still open.  A
   router whose queued hop lost its link marks the neighbour dark and
   re-forwards through its k-redundant table
   (:meth:`NeighborTable.next_hop <repro.distributed.routing_protocol.NeighborTable.next_hop>`),
   so every request to a *surviving* key is delivered by route-around,
   while a request to a crashed key strands at the hole's edge and is
   counted as a ``failed_request`` (never a drop, never an exception).
3. **repair wave** — :func:`repair_crashes
   <repro.workloads.scenarios.repair_crashes>` excises the crashed keys
   from the graph and closes every level list up over them under
   redundancy ``k`` (restoring ``network == skip_graph_network(graph, k)``
   exactly), and the surviving routers whose neighbourhood changed get
   fresh :class:`~repro.distributed.routing_protocol.NeighborTable`
   snapshots.
4. **integrity sweep** — :func:`verify_skip_graph_integrity
   <repro.skipgraph.integrity.verify_skip_graph_integrity>` audits the
   repaired structure *and* the live network against it; the arena's
   standing invariant is that every sweep comes back clean.

Because crashes land only at quiescent wave boundaries and the routers'
flow control gates every send on the current link set, the arena runs with
``strict_congest`` *and* ``strict_links`` both on: a congestion violation
or an illegal send raises at the offending round.  Requests are conserved
by construction — ``delivered + failed == injected`` holds per wave, with
zero message drops.

``benchmarks/bench_e16_failures.py`` runs this arena at 4096 nodes and
publishes the delivered/failed/repair-cost accounting as a schema-v4
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distributed.routing_protocol import (
    NeighborTable,
    install_routing,
    skip_graph_network,
)
from repro.simulation import Simulator, SimulatorConfig
from repro.skipgraph.build import build_balanced_skip_graph
from repro.skipgraph.integrity import verify_skip_graph_integrity
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph
from repro.workloads.scenarios import (
    CrashEvent,
    RequestEvent,
    Scenario,
    apply_crash,
    repair_crashes,
)

__all__ = [
    "FailureArenaReport",
    "FailureWaveReport",
    "run_failure_arena",
    "segment_waves",
]


@dataclass
class FailureWaveReport:
    """One crash burst + dark-window batch + repair + sweep."""

    index: int
    crashes: int
    requests: int
    delivered: int
    failed: int
    route_arounds: int
    dropped_messages: int
    repair_links: int
    tables_refreshed: int
    rounds: int
    integrity_violations: List[str] = field(default_factory=list)

    @property
    def conserved(self) -> bool:
        """Every injected request was either delivered or counted failed."""
        return self.delivered + self.failed == self.requests


@dataclass
class FailureArenaReport:
    """Outcome of one :func:`run_failure_arena` execution."""

    scenario: str
    n: int
    k: int
    waves: List[FailureWaveReport]
    rounds: int
    messages: int
    total_bits: int
    max_message_bits: int
    congestion_violations: int
    dropped_messages: int

    @property
    def crashes(self) -> int:
        return sum(wave.crashes for wave in self.waves)

    @property
    def requests(self) -> int:
        return sum(wave.requests for wave in self.waves)

    @property
    def delivered(self) -> int:
        return sum(wave.delivered for wave in self.waves)

    @property
    def failed(self) -> int:
        return sum(wave.failed for wave in self.waves)

    @property
    def route_arounds(self) -> int:
        return sum(wave.route_arounds for wave in self.waves)

    @property
    def repair_links(self) -> int:
        return sum(wave.repair_links for wave in self.waves)

    @property
    def tables_refreshed(self) -> int:
        return sum(wave.tables_refreshed for wave in self.waves)

    @property
    def conserved(self) -> bool:
        return all(wave.conserved for wave in self.waves)

    @property
    def integrity_clean(self) -> bool:
        return all(not wave.integrity_violations for wave in self.waves)


def segment_waves(scenario: Scenario) -> List[Tuple[List[Key], List[Tuple[Key, Key]]]]:
    """Split a failure schedule into ``(crash keys, requests)`` waves.

    A wave is a maximal run of :class:`~repro.workloads.scenarios.CrashEvent`
    followed by a maximal run of :class:`~repro.workloads.scenarios.RequestEvent`
    (either part may be empty: a schedule that opens with traffic yields a
    crash-free baseline wave, and a trailing burst yields a request-free
    one).  Join/leave events are rejected — graceful churn belongs to the
    other arenas.
    """
    waves: List[Tuple[List[Key], List[Tuple[Key, Key]]]] = []
    crashes: List[Key] = []
    requests: List[Tuple[Key, Key]] = []
    for event in scenario.events:
        if isinstance(event, CrashEvent):
            if requests:
                waves.append((crashes, requests))
                crashes, requests = [], []
            crashes.append(event.key)
        elif isinstance(event, RequestEvent):
            requests.append((event.source, event.destination))
        else:
            raise ValueError(
                f"failure arena schedules contain only crashes and requests, got {event!r}"
            )
    if crashes or requests:
        waves.append((crashes, requests))
    return waves


def run_failure_arena(
    scenario: Scenario,
    k: int = 2,
    seed: Optional[int] = None,
    stagger: int = 32,
    graph: Optional[SkipGraph] = None,
    max_rounds: int = 1_000_000,
) -> FailureArenaReport:
    """Execute a failure schedule wave by wave on a fresh CONGEST engine.

    ``k`` is the redundancy the network is built with and the tables route
    around with; ``stagger`` bounds how many requests are injected per
    round (they still interleave freely once in flight).  ``graph``
    defaults to the balanced start topology over the scenario's initial
    keys.  Both strict modes are on: the arena proves its claims by
    *raising* on a congestion violation or an illegal send, not by
    counting them after the fact.
    """
    if graph is None:
        graph = build_balanced_skip_graph(scenario.initial_keys)
    network = skip_graph_network(graph, k=k)
    sim = Simulator(
        network,
        SimulatorConfig(seed=seed, strict_congest=True, strict_links=True, max_rounds=max_rounds),
    )
    routers = install_routing(sim, graph, k=k)
    sim.run()  # start the (idle) population so waves begin from quiescence

    def delivered_total() -> int:
        # Crashed routers stay in our dict with frozen counters, so the
        # per-wave delta never loses a completion to a later crash.
        return sum(router.completed for router in routers.values())

    def route_around_total() -> int:
        return sum(router.route_arounds for router in routers.values())

    waves: List[FailureWaveReport] = []
    for index, (crash_keys, requests) in enumerate(segment_waves(scenario)):
        base_delivered = delivered_total()
        base_failed = sim.metrics.failed_requests
        base_route_arounds = route_around_total()
        base_drops = sim.metrics.dropped_messages
        base_round = sim.round

        for key in crash_keys:
            apply_crash(sim, graph, key)

        injected = 0
        for offset in range(0, len(requests), max(1, stagger)):
            batch = requests[offset : offset + max(1, stagger)]
            target_round = sim.round + offset // max(1, stagger)

            def inject(s: Simulator, batch=batch) -> None:
                for source, destination in batch:
                    router = routers[source]
                    router.requests.append(destination)
                    router.done = False

            sim.schedule(target_round, inject)
            injected += len(batch)
        if injected:
            sim.run()

        repair_links = 0
        tables_refreshed = 0
        if crash_keys:
            affected, repair_links = repair_crashes(sim, graph, crash_keys, k=k)
            for key in affected:
                router = routers.get(key)
                if router is None or key in sim.crashed:
                    continue
                router.table = NeighborTable(graph, key, k=k)
                router.dark.difference_update(crash_keys)
                tables_refreshed += 1

        violations = verify_skip_graph_integrity(graph, sim.network, redundancy=k)
        waves.append(
            FailureWaveReport(
                index=index,
                crashes=len(crash_keys),
                requests=injected,
                delivered=delivered_total() - base_delivered,
                failed=sim.metrics.failed_requests - base_failed,
                route_arounds=route_around_total() - base_route_arounds,
                dropped_messages=sim.metrics.dropped_messages - base_drops,
                repair_links=repair_links,
                tables_refreshed=tables_refreshed,
                rounds=sim.round - base_round,
                integrity_violations=violations,
            )
        )

    metrics = sim.metrics
    return FailureArenaReport(
        scenario=scenario.name,
        n=len(scenario.initial_keys),
        k=k,
        waves=waves,
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        total_bits=metrics.total_bits,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
        dropped_messages=metrics.dropped_messages,
    )
