"""Self-adjusting DSG as a message-passing protocol on the CONGEST simulator.

This is the distributed execution of the local-operation kernel
(:mod:`repro.core.local_ops`): the same restructuring plans the centralized
:class:`~repro.core.dsg.DynamicSkipGraph` applies in one pass are carried
out by per-node processes exchanging ``O(log n)``-bit messages over the
skip-graph overlay, request by request:

1. **Route** — the source's :class:`DSGProcess` forwards a ``route`` message
   greedily towards the destination, one hop per round, exactly like the
   multi-request router of :mod:`repro.distributed.routing_protocol`; the
   hop count measured at the destination is the request's routing distance
   ``d_{S_t}(σ_t)``.
2. **Plan** — the request's local-op sequence comes from the *planner* (a
   :class:`~repro.core.dsg.DynamicSkipGraph` over the same key population
   and seed): the per-node decisions of Algorithm 1 — priorities, AMF
   medians, group splits — whose round costs the plan already carries
   (``transformation_rounds``, the ``ρ`` term of Equation 1).
3. **Execute** — the source disseminates the ops as ``op`` messages, each a
   flat payload of O(1) words (:func:`~repro.core.local_ops.op_to_payload`)
   greedily routed to its anchor (:func:`~repro.core.local_ops.op_anchor`):
   a node receiving a promote/demote rewrites its own membership bits, a
   dummy receiving its destruction notice destroys itself (Section IV-F),
   and an insertion is executed by the new key's base-list predecessor.
   Outgoing traffic is flow-controlled per link (at most one send per
   neighbour per round, the rest queued FIFO), so the protocol is
   CONGEST-conformant *by construction* — zero congestion violations.
4. **Rewire** — once the phase quiesces, each executed op drives per-level
   link rewiring of the live network through
   :func:`~repro.workloads.scenarios.apply_local_op` (the same bridge churn
   replay uses), and the routing tables of the op's bounded neighbourhood
   are refreshed.

Churn (:class:`~repro.workloads.scenarios.JoinEvent` /
:class:`~repro.workloads.scenarios.LeaveEvent`) follows the PR-3 bridge
convention: the planner's Section IV-G plan (``last_churn_ops``) is applied
structurally between requests — joins install fresh processes via the
``install_*`` pattern, leaves retire them — so request traffic races a
changing membership exactly like the other protocol arenas.

The keystone guarantee, proven by ``tests/distributed/test_dsg_protocol.py``
and asserted at 4096 nodes by ``benchmarks/bench_e14_distributed_dsg.py``:
on the same request sequence (with or without churn) the distributed
protocol reaches the **same topology** as the centralized
``DynamicSkipGraph`` (op replay is exact) and charges the **same total
cost** (the measured hop count equals the planner's routing distance for
every request), with zero congestion violations and every message within
the ``c * log2 n`` bit budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.local_ops import (
    DemoteOp,
    DummyInsertOp,
    DummyRemoveOp,
    LocalOp,
    NodeJoinOp,
    NodeLeaveOp,
    PromoteOp,
    apply_ops,
    apply_ops_touched,
    op_anchor,
    op_from_payload,
    op_to_payload,
    stale_op_keys,
)
from repro.distributed.pipeline import (
    PHASE_COMPLETED,
    PHASE_DISSEMINATING,
    PHASE_ROUTING,
    AdmissionRecord,
    ConflictSet,
    PipelineEntry,
    PipelineWindow,
    entry_record,
)
from repro.distributed.routing_protocol import (
    NeighborTable,
    networks_equal,
    repair_crash_links,
    skip_graph_network,
)
from repro.simulation import Message, NodeProcess, RoundContext, Simulator, SimulatorConfig
from repro.simulation.errors import SimulationError
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph
from repro.workloads.scenarios import (
    CrashEvent,
    JoinEvent,
    LeaveEvent,
    RecoveryEvent,
    RequestEvent,
    Scenario,
    apply_local_op,
)

__all__ = [
    "DSGProcess",
    "DistributedDSG",
    "DistributedDSGReport",
    "DistributedRequestOutcome",
    "PipelinedDSG",
    "PipelinedDSGProcess",
    "PipelinedDSGReport",
    "run_distributed_dsg",
    "run_pipelined_dsg",
]


class DSGProcess(NodeProcess):
    """One DSG peer: its membership bits and per-level neighbour links.

    Local state is ``O(log n)`` words, as the model requires: the bit
    vector, one (left, right) pair per level, and the flow-control queues.
    The process is passive (``done``) unless it holds queued outgoing
    messages; it is woken by message delivery otherwise.
    """

    def __init__(self, key: Key, graph: SkipGraph, k: int = 1) -> None:
        super().__init__(key)
        self.table = NeighborTable(graph, key, k=k)
        self.bits: Tuple[int, ...] = graph.membership(key).bits
        self.is_dummy = graph.node(key).is_dummy
        #: Per-link FIFO flow control: receiver -> queued (kind, payload).
        self.outgoing: Dict[Key, Deque[Tuple[str, dict]]] = {}
        #: Ops executed at this node (it was their anchor).
        self.executed = 0
        #: Dummy nodes this process created next to itself.
        self.created_dummies = 0
        #: Set when the node (a dummy) received its self-destruction notice.
        self.destroyed = False
        #: Hop count of the last route that terminated here.
        self.route_hops: Optional[int] = None
        self.routes_completed = 0
        #: Neighbours observed crashed (their link vanished at flush time).
        self.dark: set = set()
        #: Messages re-routed around a dark neighbour.
        self.route_arounds = 0
        #: Messages stranded at this node (every remaining candidate dark).
        self.failed = 0
        self._unreported_failures = 0
        self.done = True

    def memory_words(self) -> int:
        queued = sum(len(bucket) for bucket in self.outgoing.values())
        return self.table.size_words() + len(self.bits) + 5 * queued + len(self.dark) + 6

    # ------------------------------------------------------------ round hook
    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for message in inbox:
            payload = message.payload
            if payload["to"] == self.node_id:
                self._arrive(message.kind, payload)
            else:
                self._relay(message.kind, payload)
        self._flush(ctx)

    # ------------------------------------------------------------ initiation
    def initiate_route(self, destination: Key) -> None:
        """Start routing one request towards ``destination`` (driver hook)."""
        self._relay("route", {"to": destination, "lvl": self.table.top_level, "hops": 0})
        self.done = not self.outgoing

    def initiate_ops(self, payloads: List[Tuple[Key, dict]]) -> None:
        """Disseminate a request's op plan (driver hook).

        ``payloads`` pairs each op's anchor with its wire payload; ops
        anchored at this node execute immediately, the rest are greedily
        routed, subject to the per-link flow control.
        """
        for anchor, payload in payloads:
            if anchor == self.node_id:
                self._arrive("op", payload)
            else:
                self._relay("op", {**payload, "lvl": self.table.top_level, "hops": 0})
        self.done = not self.outgoing

    # -------------------------------------------------------------- internals
    def _arrive(self, kind: str, payload: dict) -> None:
        if kind == "route":
            self.routes_completed += 1
            self.route_hops = payload["hops"]
            self.result = "reached"
            return
        op = op_from_payload(payload)
        self.executed += 1
        if type(op) is PromoteOp:
            bits = self.bits
            if len(bits) < op.level:
                bits = bits + (0,) * (op.level - len(bits))
            self.bits = bits[: op.level - 1] + (op.bit,) + bits[op.level :]
        elif type(op) is DemoteOp:
            self.bits = self.bits[: op.length]
        elif type(op) is DummyInsertOp:
            self.created_dummies += 1
        elif type(op) is DummyRemoveOp:
            self.destroyed = True

    def _relay(self, kind: str, payload: dict) -> None:
        next_hop, used_level = self.table.next_hop(payload["to"], payload["lvl"], dark=self.dark)
        if next_hop is None:
            # A consistent crash-free topology never strands; with crashes
            # this is a failed request (the destination itself is dark).
            self.result = ("stuck", payload["to"])
            self.failed += 1
            self._unreported_failures += 1
            return
        updated = dict(payload)
        updated["lvl"] = used_level
        updated["hops"] = payload["hops"] + 1
        bucket = self.outgoing.get(next_hop)
        if bucket is None:
            bucket = self.outgoing[next_hop] = deque()
        bucket.append((kind, updated))

    def _flush(self, ctx: RoundContext) -> None:
        """Send at most one queued message per neighbour link this round.

        A receiver whose link vanished (it crashed) is marked dark and its
        queued messages re-routed through the k-redundant table — the hop
        they never took is uncounted (``hops - 1``) before the re-relay
        re-increments it.
        """
        if self.outgoing:
            live = ctx.neighbors()
            dark_receivers = [receiver for receiver in self.outgoing if receiver not in live]
            while dark_receivers:
                for receiver in dark_receivers:
                    bucket = self.outgoing.pop(receiver)
                    self.dark.add(receiver)
                    for kind, payload in bucket:
                        self.route_arounds += 1
                        rewound = dict(payload)
                        rewound["hops"] = payload["hops"] - 1
                        self._relay(kind, rewound)
                # A re-route may have queued onto another dark receiver; the
                # dark set only grows, so this settles.
                dark_receivers = [receiver for receiver in self.outgoing if receiver not in live]
        drained = []
        for receiver, bucket in self.outgoing.items():
            kind, payload = bucket.popleft()
            ctx.send(receiver, kind, payload)
            if not bucket:
                drained.append(receiver)
        for receiver in drained:
            del self.outgoing[receiver]
        if self._unreported_failures:
            ctx.report_failure(self._unreported_failures)
            self._unreported_failures = 0
        self.done = not self.outgoing


@dataclass
class DistributedRequestOutcome:
    """One request served by the protocol, with the plan it executed.

    ``measured_distance`` is the hop count observed at the destination
    (minus the final hop), i.e. the number of intermediate nodes real
    messages crossed; ``planned_distance`` is the planner's
    ``d_{S_t}(σ_t)`` for the same request — the keystone property test
    asserts they are equal on every request.
    """

    source: Key
    destination: Key
    alpha: int
    measured_distance: int
    planned_distance: int
    transformation_rounds: int
    ops_executed: int
    rounds: int

    @property
    def cost(self) -> int:
        """Equation 1 with the *measured* routing distance."""
        return self.measured_distance + self.transformation_rounds + 1


@dataclass
class DistributedDSGReport:
    """Aggregate outcome of one distributed DSG execution."""

    requests: int
    joins: int
    leaves: int
    total_cost: int
    planner_total_cost: int
    total_routing: int
    rounds: int
    messages: int
    total_bits: int
    max_message_bits: int
    congestion_violations: int
    dropped_messages: int
    final_nodes: int
    final_height: int
    crashes: int = 0
    recoveries: int = 0
    abandoned_plans: int = 0
    reanchored_plans: int = 0
    outcomes: List[DistributedRequestOutcome] = field(default_factory=list)

    @property
    def matches_planner(self) -> bool:
        """Whether the protocol's total Equation 1 cost equals the planner's."""
        return self.total_cost == self.planner_total_cost


class DistributedDSG:
    """Driver executing self-adjusting DSG on a live CONGEST simulator.

    Owns the planner (a centralized :class:`~repro.core.dsg.DynamicSkipGraph`
    used for the per-request decision maths), the executed topology mirror
    (grown exclusively by applying the emitted ops), the network and the
    per-node processes.  Requests are served sequentially — route phase,
    then op dissemination, each run to quiescence — which is the paper's
    one-request-at-a-time model; batching concurrent requests is a
    ROADMAP follow-on.
    """

    def __init__(
        self,
        keys,
        config: Optional[DSGConfig] = None,
        seed: Optional[int] = None,
        max_rounds: int = 200_000,
        strict: bool = False,
    ) -> None:
        self.planner = DynamicSkipGraph(keys=keys, config=config)
        #: Topology as executed: starts at S_0 and changes only via ops.
        self.topology = self.planner.graph.copy()
        self.sim = Simulator(
            skip_graph_network(self.topology),
            SimulatorConfig(
                seed=seed,
                strict_congest=strict,
                strict_links=strict,
                max_rounds=max_rounds,
            ),
        )
        self.processes: Dict[Key, DSGProcess] = {}
        for key in self.topology.keys:
            self._install(key)
        self.outcomes: List[DistributedRequestOutcome] = []
        self.joins = 0
        self.leaves = 0
        self.crashes = 0
        self.recoveries = 0
        self.repair_ops = 0
        self.total_cost = 0
        self.total_routing = 0
        #: Keys crashed via :meth:`crash_dark` and not yet repaired.
        self.dark_keys: set = set()
        self.abandoned_plans = 0
        self.reanchored_plans = 0
        #: One-shot fault hook fired between a request's route and execute
        #: phases (cleared before it runs) — the property tests' instrument
        #: for landing a crash exactly inside a plan's vulnerability window.
        self.mid_request_fault: Optional[Callable[[], None]] = None
        # Reseating the planner after a mid-request repair resets its
        # running cost counter; the base keeps planner_total_cost exact.
        self._planner_cost_base = 0

    # ------------------------------------------------------------------ serve
    def request(self, source: Key, destination: Key) -> DistributedRequestOutcome:
        """Serve one communication request: route, plan, execute, rewire.

        A crash can land *inside* the request — the one-shot
        ``mid_request_fault`` hook fires between the route and execute
        phases, exactly the window where the planner's emitted plan is in
        danger of going stale.  The driver then repairs the holes
        structurally and either **re-anchors** the plan (every op's anchor
        is recomputed against the post-repair topology in phase B — the
        dark-anchor case) or **abandons** it (an op's *subject* crashed:
        :func:`~repro.core.local_ops.stale_op_keys`, or the disseminating
        source itself did) with explicit accounting — a stale op is never
        applied.
        """
        if self.dark_keys:
            # A request entering over open holes repairs them first — the
            # planner must plan against the topology the messages will see.
            self.repair_dark()
        plan = self.planner.request(source, destination, keep_result=False)
        first_round = self.sim.round

        # Phase A: the route message crosses the pre-request topology S_t.
        initiator = self.processes[source]
        self.sim.schedule(self.sim.round, lambda sim: initiator.initiate_route(destination))
        self.sim.run()
        receiver = self.processes[destination]
        hops = receiver.route_hops
        receiver.route_hops = None
        if hops is None:
            raise SimulationError(
                f"route ({source!r}, {destination!r}) never reached its destination"
            )
        measured = hops - 1

        # The vulnerability window: the plan exists, nothing executed yet.
        hook, self.mid_request_fault = self.mid_request_fault, None
        if hook is not None:
            hook()

        ops = list(plan.ops or [])
        transformation_rounds = plan.transformation_rounds
        needs_reseat = False
        if self.dark_keys:
            dark = frozenset(self.dark_keys)
            if not ops:
                # Nothing in flight to salvage: boundary repair through the
                # planner keeps both views consistent, no reseat needed.
                self.repair_dark()
            else:
                self._repair_dark_structural()
                needs_reseat = True
                if stale_op_keys(ops, dark) or source in dark:
                    ops = []
                    transformation_rounds = 0
                    self.abandoned_plans += 1
                    # Refund the planner's charge for the transformation the
                    # protocol never executed, so matches_planner stays
                    # meaningful across abandons.
                    self._planner_cost_base -= plan.transformation_rounds
                else:
                    self.reanchored_plans += 1

        # Phase B: disseminate the (possibly re-anchored) plan, then rewire.
        if ops:
            payloads = []
            for op in ops:
                anchor = op_anchor(op, self.topology)
                payloads.append((anchor, {"to": anchor, **op_to_payload(op)}))
            executed_before = self._executed_total()
            self.sim.schedule(self.sim.round, lambda sim: initiator.initiate_ops(payloads))
            self.sim.run()
            executed = self._executed_total() - executed_before
            if executed != len(ops):
                raise SimulationError(
                    f"op dissemination lost work: {executed}/{len(ops)} ops executed"
                )
            self._apply_ops(ops)
        if needs_reseat:
            self._reseat_planner()

        outcome = DistributedRequestOutcome(
            source=source,
            destination=destination,
            alpha=plan.alpha,
            measured_distance=measured,
            planned_distance=plan.routing.distance,
            transformation_rounds=transformation_rounds,
            ops_executed=len(ops),
            rounds=self.sim.round - first_round,
        )
        self.outcomes.append(outcome)
        self.total_cost += outcome.cost
        self.total_routing += measured
        return outcome

    def join(self, key: Key) -> None:
        """A peer joins (Section IV-G): structural churn between requests."""
        if key in self.sim.crashed:
            # Reject before the planner mutates: a partial join would leave
            # planner and topology out of sync when add_process refuses the
            # crashed key.
            raise SimulationError(f"key {key!r} crashed and cannot re-join")
        self.planner.add_node(key)
        self._apply_ops(self.planner.last_churn_ops)
        self.joins += 1

    def leave(self, key: Key) -> None:
        """A peer departs (Section IV-G)."""
        self.planner.remove_node(key)
        self._apply_ops(self.planner.last_churn_ops)
        self.leaves += 1

    def crash(self, key: Key) -> int:
        """Crash-stop failure of ``key``: no goodbye, then structural repair.

        The process dies immediately through :meth:`Simulator.crash` — its
        ``on_retire`` hook never fires, its links go dark, and the node can
        never re-enter — and the overlay is then repaired with the *same*
        Section IV-G departure plan a graceful leave would execute (the
        membership repair does not depend on the departed node's
        cooperation; only the goodbye does).  Repair is immediate, so the
        planner-equivalence invariants hold after every crash; the
        deferred-repair window (routing around dark hops before any repair)
        is exercised by the router-based failure arena
        (:mod:`repro.distributed.failover`).

        Returns the number of repair ops executed (the wave's repair cost).
        """
        self.sim.crash(key)
        self.processes.pop(key, None)
        self.planner.remove_node(key)
        ops = self.planner.last_churn_ops
        self._apply_ops(ops)
        self.crashes += 1
        self.repair_ops += len(ops)
        return len(ops)

    def crash_dark(self, key: Key) -> None:
        """Crash ``key`` and leave its hole *open*: links dark, no repair.

        The deferred-repair counterpart of :meth:`crash`: the process dies
        without a goodbye, but the planner and the topology mirror still
        believe the node exists until :meth:`repair_dark` (at a boundary)
        or the next request's entry/mid-request handling closes the hole.
        Dummies cannot crash — they are protocol bookkeeping, not peers.
        """
        if not self.topology.has_node(key) or self.topology.node(key).is_dummy:
            raise SimulationError(f"cannot crash {key!r}: not a live peer")
        self.sim.crash(key)
        self.processes.pop(key, None)
        self.dark_keys.add(key)
        self.crashes += 1

    def repair_dark(self) -> int:
        """Planner-consistent boundary repair of every dark key.

        Used when no plan is in flight: each dark key departs through the
        planner's Section IV-G machinery exactly like :meth:`crash` does,
        so planner and topology never diverge and no reseat is needed.
        Returns the number of repair ops executed.
        """
        total = 0
        for key in sorted(self.dark_keys):
            self.planner.remove_node(key)
            ops = self.planner.last_churn_ops
            self._apply_ops(ops)
            self.repair_ops += len(ops)
            total += len(ops)
        self.dark_keys.clear()
        return total

    def recover(self, key: Key) -> None:
        """Recover crashed ``key`` as a *fresh identity*.

        Any open dark holes are repaired first (a recovery is a wave
        boundary), the engine's re-entry ban is lifted
        (:meth:`~repro.simulation.Simulator.recover`), and the key rejoins
        through the planner's Section IV-G join — new membership bits, new
        links, a new process; nothing of the old identity survives.
        """
        if self.dark_keys:
            self.repair_dark()
        self.sim.recover(key)
        self.planner.add_node(key)
        self._apply_ops(self.planner.last_churn_ops)
        self.recoveries += 1

    def run_scenario(self, scenario: Scenario) -> DistributedDSGReport:
        """Serve a whole :class:`~repro.workloads.scenarios.Scenario`."""
        for event in scenario.events:
            if isinstance(event, RequestEvent):
                self.request(event.source, event.destination)
            elif isinstance(event, JoinEvent):
                self.join(event.key)
            elif isinstance(event, LeaveEvent):
                self.leave(event.key)
            elif isinstance(event, CrashEvent):
                self.crash(event.key)
            elif isinstance(event, RecoveryEvent):
                self.recover(event.key)
            else:  # pragma: no cover - the event union is closed
                raise TypeError(f"unknown scenario event {event!r}")
        return self.report()

    # ----------------------------------------------------------------- report
    def report(self) -> DistributedDSGReport:
        metrics = self.sim.metrics
        return DistributedDSGReport(
            requests=len(self.outcomes),
            joins=self.joins,
            leaves=self.leaves,
            total_cost=self.total_cost,
            planner_total_cost=self._planner_cost_base + self.planner.total_cost(),
            total_routing=self.total_routing,
            rounds=metrics.rounds,
            messages=metrics.total_messages,
            total_bits=metrics.total_bits,
            max_message_bits=metrics.max_message_bits,
            congestion_violations=metrics.congestion_violations,
            dropped_messages=metrics.dropped_messages,
            final_nodes=len(self.topology.real_keys),
            final_height=self.topology.height(),
            crashes=self.crashes,
            recoveries=self.recoveries,
            abandoned_plans=self.abandoned_plans,
            reanchored_plans=self.reanchored_plans,
            outcomes=self.outcomes,
        )

    def topology_matches_planner(self) -> bool:
        """Keystone check: op-executed topology == centralized topology."""
        return self.topology.membership_table() == self.planner.graph.membership_table()

    def network_matches_topology(self) -> bool:
        """Invariant check: incrementally rewired links == rebuilt links."""
        return networks_equal(self.sim.network, skip_graph_network(self.topology))

    # -------------------------------------------------------------- internals
    def _install(self, key: Key) -> None:
        process = DSGProcess(key, self.topology)
        self.processes[key] = process
        self.sim.add_process(process)

    def _executed_total(self) -> int:
        return sum(process.executed for process in self.processes.values())

    def _repair_dark_structural(self) -> None:
        """Repair dark keys *without* the planner: close links, refresh tables.

        The mid-request path: a Section IV-G departure plan would itself
        need dissemination — racing the very plan being salvaged — so the
        holes are closed structurally
        (:func:`~repro.distributed.routing_protocol.repair_crash_links`)
        and the planner is reseated from the repaired topology once the
        salvaged plan has landed (:meth:`_reseat_planner`).
        """
        for key in sorted(self.dark_keys):
            affected, _ = repair_crash_links(self.sim.network, self.topology, key)
            for neighbor in affected:
                process = self.processes.get(neighbor)
                if process is None or not self.topology.has_node(neighbor):
                    continue
                process.table = NeighborTable(self.topology, neighbor)
            for process in self.processes.values():
                process.dark.discard(key)
        self.dark_keys.clear()

    def _reseat_planner(self) -> None:
        """Rebuild the planner over the executed topology after structural repair.

        The mid-request path repairs topology and network behind the
        planner's back; rather than replay that divergence into its
        internal state, the planner is reseated on a copy of the post-plan
        topology — the same ``S_{t+1}`` both views must agree on, so
        :meth:`topology_matches_planner` holds immediately.  Its running
        cost counter restarts, which the accumulated base absorbs.
        """
        self._planner_cost_base += self.planner.total_cost()
        self.planner = DynamicSkipGraph(graph=self.topology.copy(), config=self.planner.config)

    def _apply_ops(self, ops: List[LocalOp]) -> None:
        """Rewire topology, network, tables and the process population."""
        affected = set()
        arrivals: List[Key] = []
        for op in ops:
            if type(op) in (DummyInsertOp, NodeJoinOp):
                arrivals.append(op.key)
            elif type(op) in (DummyRemoveOp, NodeLeaveOp):
                self.processes.pop(op.key, None)  # apply_local_op retires it
            affected |= apply_local_op(self.sim, self.topology, op)
        for key in affected:
            process = self.processes.get(key)
            if process is None or not self.topology.has_node(key):
                continue
            process.table = NeighborTable(self.topology, key)
            # process.bits is deliberately NOT refreshed here: a node's bit
            # vector evolves only through the op messages it receives, so
            # the end-of-run equality with the topology is a genuine check
            # of the message-driven execution.
        for key in arrivals:
            if self.topology.has_node(key) and key not in self.processes:
                self._install(key)


def run_distributed_dsg(
    scenario: Scenario,
    config: Optional[DSGConfig] = None,
    seed: Optional[int] = None,
    strict: bool = False,
) -> DistributedDSGReport:
    """Execute ``scenario`` end to end on a fresh :class:`DistributedDSG`."""
    driver = DistributedDSG(scenario.initial_keys, config=config, seed=seed, strict=strict)
    return driver.run_scenario(scenario)


# --------------------------------------------------------------- pipelining
class PipelinedDSGProcess(DSGProcess):
    """A :class:`DSGProcess` that reports rid-tagged completions.

    The sequential driver detects phase completion globally (quiescence of
    the whole simulator), so :class:`DSGProcess` only keeps ``route_hops``
    of the *last* route that terminated at the node.  With several requests
    in flight that is ambiguous, so the pipelined driver tags every route
    and op payload with the request id and each process records arrivals in
    driver-shared ledgers: ``route_done[rid] = hops`` at the route's
    destination, ``ops_done[rid] += 1`` at each op's anchor.  The extra
    ``rid`` word keeps the payload O(1) words — well inside the
    ``c * log2 n`` bit budget the strict arenas enforce
    (:func:`~repro.core.local_ops.op_from_payload` ignores the extra key).
    """

    def __init__(
        self,
        key: Key,
        graph: SkipGraph,
        route_done: Dict[int, int],
        ops_done: Dict[int, int],
        k: int = 1,
    ) -> None:
        super().__init__(key, graph, k=k)
        self._route_done = route_done
        self._ops_done = ops_done

    def initiate_tagged_route(self, destination: Key, rid: int) -> None:
        """Start one rid-tagged route towards ``destination`` (driver hook)."""
        self._relay(
            "route", {"to": destination, "rid": rid, "lvl": self.table.top_level, "hops": 0}
        )
        self.done = not self.outgoing

    def _arrive(self, kind: str, payload: dict) -> None:
        super()._arrive(kind, payload)
        rid = payload.get("rid")
        if rid is None:
            return
        if kind == "route":
            self._route_done[rid] = payload["hops"]
        else:
            self._ops_done[rid] = self._ops_done.get(rid, 0) + 1


@dataclass
class PipelinedDSGReport(DistributedDSGReport):
    """A :class:`DistributedDSGReport` plus the pipeline's own accounting."""

    window: int = 1
    max_in_flight: int = 0
    admitted: int = 0
    conflict_stalls: int = 0
    admission_trace: List[AdmissionRecord] = field(default_factory=list)


class PipelinedDSG(DistributedDSG):
    """Conflict-aware pipelined serving of the self-adjusting DSG.

    Planning stays strictly sequential — the embedded planner serves events
    in arrival order, so every plan, every ``d_{S_t}`` and the whole
    Equation-1 accounting are byte-identical to the sequential driver's by
    construction.  What overlaps is the *execution*: up to ``window``
    planned events are in flight on the simulator at once, admitted FIFO
    whenever their :class:`~repro.distributed.pipeline.ConflictSet` (route
    path reads; op-touched region plus ``l_alpha`` members as writes) is
    disjoint from everything already in flight.  Routes overlap routes
    freely, and a request's op dissemination may overlap younger routes;
    structural application (topology mirror, live links, routing tables,
    process install/retire) happens only in arrival order and only at
    dissemination-free boundaries, so no rewiring can strand an in-flight
    message — the differential suite (``tests/distributed/test_pipeline.py``)
    asserts final topology, per-request routing cost and total cost equal
    the sequential driver's on every tested schedule, and that an
    all-conflict schedule degrades to exactly the sequential round count.

    The write sets are extracted by replaying each plan on a *shadow* copy
    of the planner's pre-plan graph (:func:`~repro.core.local_ops.
    apply_ops_touched`), which trails the planner by exactly one plan and
    needs no per-request graph copies.
    """

    def __init__(
        self,
        keys,
        config: Optional[DSGConfig] = None,
        seed: Optional[int] = None,
        max_rounds: int = 200_000,
        strict: bool = False,
        window: int = 8,
    ) -> None:
        self._route_done: Dict[int, int] = {}
        self._ops_done: Dict[int, int] = {}
        super().__init__(keys, config=config, seed=seed, max_rounds=max_rounds, strict=strict)
        self.window = PipelineWindow(int(window))
        #: Pre-plan shadow of the planner's graph (see the class docstring).
        self._shadow = self.planner.graph.copy()
        self._planned: Deque[PipelineEntry] = deque()
        self._next_index = 0
        self._max_rounds = max_rounds
        self.admission_trace: List[AdmissionRecord] = []

    # ------------------------------------------------------------------ serve
    def request(self, source: Key, destination: Key) -> DistributedRequestOutcome:
        """Serve one request (drains the pipeline — use run_scenario to overlap)."""
        self._serve([RequestEvent(source, destination)])
        return self.outcomes[-1]

    def join(self, key: Key) -> None:
        self._serve([JoinEvent(key)])

    def leave(self, key: Key) -> None:
        self._serve([LeaveEvent(key)])

    def crash(self, key: Key) -> int:
        # _serve always drains, so between calls nothing is in flight and
        # the sequential crash path applies; only the shadow needs syncing.
        count = super().crash(key)
        apply_ops(self._shadow, self.planner.last_churn_ops)
        return count

    def recover(self, key: Key) -> None:
        # Recovery (and any boundary repair it triggers) may run several
        # churn plans through the planner; re-copying is always exact and
        # recoveries are rare enough that the copy cost is noise.
        super().recover(key)
        self._shadow = self.planner.graph.copy()

    def crash_dark(self, key: Key) -> None:
        raise SimulationError(
            "PipelinedDSG serves crashes as pipeline barriers; use crash() "
            "(the in-flight window drains first, then the sequential path runs)"
        )

    def run_scenario(self, scenario: Scenario) -> PipelinedDSGReport:
        """Serve a whole scenario with up to ``window`` events in flight."""
        self._serve(scenario.events)
        return self.report()

    # ----------------------------------------------------------------- report
    def report(self) -> PipelinedDSGReport:
        base = super().report()
        values = {f.name: getattr(base, f.name) for f in fields(DistributedDSGReport)}
        return PipelinedDSGReport(
            **values,
            window=self.window.depth,
            max_in_flight=self.window.max_in_flight,
            admitted=self.window.admitted,
            conflict_stalls=self.window.conflict_stalls,
            admission_trace=list(self.admission_trace),
        )

    # -------------------------------------------------------------- internals
    def _install(self, key: Key) -> None:
        process = PipelinedDSGProcess(key, self.topology, self._route_done, self._ops_done)
        self.processes[key] = process
        self.sim.add_process(process)

    def _reseat_planner(self) -> None:
        super()._reseat_planner()
        self._shadow = self.planner.graph.copy()

    def _serve(self, events) -> None:
        """The pipeline loop: plan ahead, admit, step, absorb, apply.

        Crash and recovery events are *barriers*: planning stops at them,
        every in-flight admission drains (or completes) cleanly, and only
        then does the sequential crash/recover path run — so a failure can
        land while a conflict-disjoint window is in flight without ever
        stranding an admitted message, and ``window=1`` degrades to exactly
        the sequential arena's behaviour.
        """
        queue: Deque = deque(events)
        window = self.window
        start_round = self.sim.round
        while queue or self._planned or window.entries:
            if (
                queue
                and isinstance(queue[0], (CrashEvent, RecoveryEvent))
                and not self._planned
                and not window.entries
            ):
                event = queue.popleft()
                if isinstance(event, CrashEvent):
                    self.crash(event.key)
                else:
                    self.recover(event.key)
                continue
            # Plan ahead just past the window (planning is pure bookkeeping
            # on the planner/shadow — no simulator rounds are consumed).
            while (
                queue
                and len(self._planned) <= window.depth
                and not isinstance(queue[0], (CrashEvent, RecoveryEvent))
            ):
                self._planned.append(self._plan_event(queue.popleft()))
            # FIFO admission: the oldest planned event blocks on conflict.
            while self._planned and window.try_admit(self._planned[0]):
                self._activate(self._planned.popleft())
            if window.work_in_flight():
                self.sim.step()
                if self.sim.round - start_round > self._max_rounds:
                    raise SimulationError(
                        f"pipelined serve exceeded {self._max_rounds} rounds "
                        "(an op dissemination lost work?)"
                    )
                self._absorb_completions()
            self._apply_ready()

    def _plan_event(self, event) -> PipelineEntry:
        """Run the planner for one event and extract its conflict set."""
        index = self._next_index
        self._next_index += 1
        if isinstance(event, RequestEvent):
            source, destination = event.source, event.destination
            graph = self.planner.graph
            # The l_alpha region the transformation will restructure, read
            # from the pre-plan graph (alpha is what _adjust computes).
            alpha = graph.common_level(source, destination)
            region = tuple(graph.list_of(source, alpha))
            plan = self.planner.request(source, destination, keep_result=False)
            ops = list(plan.ops or [])
            touched = apply_ops_touched(self._shadow, ops)
            if ops:
                writes = frozenset(touched) | frozenset(region)
            else:
                writes = frozenset()
            conflict = ConflictSet(reads=frozenset(plan.routing.path), writes=writes)
            return PipelineEntry(
                index=index,
                kind="request",
                rid=index,
                conflict=conflict,
                ops=ops,
                source=source,
                destination=destination,
                plan=plan,
            )
        if isinstance(event, JoinEvent):
            if event.key in self.sim.crashed:
                raise SimulationError(f"key {event.key!r} crashed and cannot re-join")
            self.planner.add_node(event.key)
            kind = "join"
        elif isinstance(event, LeaveEvent):
            self.planner.remove_node(event.key)
            kind = "leave"
        else:
            raise TypeError(f"unknown scenario event {event!r}")
        ops = list(self.planner.last_churn_ops)
        touched = apply_ops_touched(self._shadow, ops)
        conflict = ConflictSet(writes=frozenset(touched) | {event.key})
        return PipelineEntry(index=index, kind=kind, rid=index, conflict=conflict, ops=ops)

    def _activate(self, entry: PipelineEntry) -> None:
        """Start an admitted entry's simulator work (requests only).

        Churn events consume no simulator rounds in the sequential driver
        (Section IV-G plans are applied structurally between requests), so
        here they complete instantly and wait in the window for their FIFO
        application turn.
        """
        entry.admit_round = self.sim.round
        if entry.kind == "request":
            initiator = self.processes[entry.source]
            self.sim.schedule(
                self.sim.round,
                lambda sim, p=initiator, d=entry.destination, r=entry.rid: (
                    p.initiate_tagged_route(d, r)
                ),
            )
            entry.phase = PHASE_ROUTING
        else:
            entry.phase = PHASE_COMPLETED
            entry.complete_round = self.sim.round

    def _absorb_completions(self) -> None:
        """Advance in-flight entries whose simulator work finished."""
        for entry in self.window.entries:
            if entry.phase == PHASE_ROUTING and entry.rid in self._route_done:
                hops = self._route_done.pop(entry.rid)
                entry.measured = hops - 1
                if entry.ops:
                    payloads = []
                    for op in entry.ops:
                        anchor = op_anchor(op, self.topology)
                        payloads.append(
                            (anchor, {"to": anchor, "rid": entry.rid, **op_to_payload(op)})
                        )
                    initiator = self.processes[entry.source]
                    self.sim.schedule(
                        self.sim.round,
                        lambda sim, p=initiator, pl=payloads: p.initiate_ops(pl),
                    )
                    entry.phase = PHASE_DISSEMINATING
                else:
                    entry.phase = PHASE_COMPLETED
                    entry.complete_round = self.sim.round
            elif entry.phase == PHASE_DISSEMINATING:
                executed = self._ops_done.get(entry.rid, 0)
                if executed > len(entry.ops):
                    raise SimulationError(
                        f"op dissemination over-delivered: {executed}/{len(entry.ops)} ops"
                    )
                if executed == len(entry.ops):
                    self._ops_done.pop(entry.rid, None)
                    entry.phase = PHASE_COMPLETED
                    entry.complete_round = self.sim.round

    def _apply_ready(self) -> None:
        """Apply completed entries in arrival order, at safe boundaries.

        Structural rewiring is deferred while *any* op dissemination is in
        flight: op relays cross arbitrary keys, so removing a link or node
        mid-flight could drop a message (routes are safe — their paths are
        conflict-checked read sets, untouched by any admitted writer).
        """
        if self.window.dissemination_in_flight():
            return
        while True:
            entry = self.window.pop_completed_head()
            if entry is None:
                return
            entry.apply_round = self.sim.round
            self._apply_ops(entry.ops)
            if entry.kind == "request":
                plan = entry.plan
                outcome = DistributedRequestOutcome(
                    source=entry.source,
                    destination=entry.destination,
                    alpha=plan.alpha,
                    measured_distance=entry.measured,
                    planned_distance=plan.routing.distance,
                    transformation_rounds=plan.transformation_rounds,
                    ops_executed=len(entry.ops),
                    rounds=entry.complete_round - entry.admit_round,
                )
                self.outcomes.append(outcome)
                self.total_cost += outcome.cost
                self.total_routing += entry.measured
            elif entry.kind == "join":
                self.joins += 1
            else:
                self.leaves += 1
            self.admission_trace.append(entry_record(entry))


def run_pipelined_dsg(
    scenario: Scenario,
    config: Optional[DSGConfig] = None,
    seed: Optional[int] = None,
    strict: bool = False,
    window: int = 8,
) -> PipelinedDSGReport:
    """Execute ``scenario`` end to end on a fresh :class:`PipelinedDSG`."""
    driver = PipelinedDSG(
        scenario.initial_keys, config=config, seed=seed, strict=strict, window=window
    )
    return driver.run_scenario(scenario)
