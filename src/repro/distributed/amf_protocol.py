"""Message-level AMF (Algorithm 2) over the balanced skip list's segment tree.

Every node starts with its own value.  Values travel towards the root one
per message per round (CONGEST): a node streams its current entries to its
parent, ends with a ``flush`` marker, and a parent only starts streaming
upward after every child has flushed.  From the sampling level onward a
parent sorts what it received, keeps a uniform sample of ``a * h`` entries
and folds the discarded mass into rank weights, exactly as the structural
implementation in :mod:`repro.core.amf` does.  The root picks the entry
whose accounted rank is closest to the middle and broadcasts it back down.

Each ``entry`` message carries a value and a weight (two words); ``flush``
and ``median`` carry one word — all well within the CONGEST budget, which
experiment E11 verifies by inspecting the recorded message sizes.

Processes are active only while they stream (one entry per round towards
the parent); waiting for children's flushes or for the median broadcast is
passive and message-driven, so the engine's active set follows the
streaming frontier instead of the whole population — at 4096 leaves the
run costs O(total messages) process invocations, which is what makes the
protocol measurable at benchmark scale (E6/E11 arenas).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.simulation import Message, NodeProcess, RoundContext, Simulator, SimulatorConfig
from repro.skiplist.balanced import BalancedSkipList
from repro.distributed.sum_protocol import segment_tree

__all__ = ["AMFProtocolResult", "install_amf", "run_amf_protocol"]

Key = Hashable
Entry = Tuple[float, int]  # (value, weight of discarded values at or below it)


@dataclass
class AMFProtocolResult:
    """Outcome of one message-level AMF execution."""

    median: float
    rounds: int
    messages: int
    max_message_bits: int
    congestion_violations: int
    n: int
    dropped_messages: int = 0
    total_bits: int = 0

    def rank_interval(self, values: List[float]) -> Tuple[int, int]:
        below = sum(1 for value in values if value < self.median)
        not_above = sum(1 for value in values if value <= self.median)
        return below + 1, max(not_above, below + 1)

    def satisfies_lemma1(self, values: List[float], a: int) -> bool:
        low, high = self.rank_interval(values)
        slack = self.n / (2 * a)
        return not (high < self.n / 2 - slack or low > self.n / 2 + slack)


def _sample(entries: List[Entry], sample_size: int) -> List[Entry]:
    ordered = sorted(entries)
    if len(ordered) <= sample_size:
        return ordered
    last = len(ordered) - 1
    kept_indices = sorted({round(i * last / (sample_size - 1)) for i in range(sample_size)})
    kept: List[Entry] = []
    previous = -1
    for index in kept_indices:
        value, weight = ordered[index]
        extra = sum(1 + w for _, w in ordered[previous + 1 : index])
        kept.append((value, weight + extra))
        previous = index
    return kept


class _AMFProcess(NodeProcess):
    def __init__(
        self,
        key: Key,
        value: float,
        parent: Optional[Key],
        children: List[Key],
        sample: bool,
        sample_size: int,
    ) -> None:
        super().__init__(key)
        self.parent = parent
        self.children = list(children)
        self.pending = set(children)
        self.entries: List[Entry] = [(float(value), 0)]
        self.sample = sample
        self.sample_size = sample_size
        self.outbox: List[Entry] = []
        self.streaming = False
        self.flushed = False
        self.median: Optional[float] = None
        self.done = True  # passive until children report or streaming begins

    def memory_words(self) -> int:
        return 4 + 2 * max(len(self.entries), len(self.outbox)) + len(self.children)

    # The streaming discipline: once all children flushed, move the local
    # entries (sampled if required) to the outbox and send one per round.
    def _start_streaming_if_ready(self) -> None:
        if self.pending or self.streaming:
            return
        self.streaming = True
        entries = _sample(self.entries, self.sample_size) if self.sample else sorted(self.entries)
        if self.parent is None:
            self.median = _pick_median(entries)
            self.result = self.median
        else:
            self.outbox = list(entries)

    def _stream_one(self, ctx: RoundContext) -> None:
        if self.parent is None or not self.streaming or self.flushed:
            return
        if self.outbox:
            value, weight = self.outbox.pop(0)
            ctx.send(self.parent, "entry", [value, weight])
        else:
            # Everything sent: emit the flush marker exactly once.
            ctx.send(self.parent, "flush", None)
            self.flushed = True

    def _broadcast_median_if_known(self, ctx: RoundContext) -> None:
        if self.median is None:
            return
        for child in self.children:
            ctx.send(child, "median", self.median)

    def _refresh_done(self) -> None:
        # Active only while entries (or the flush marker) remain to stream;
        # every other state is woken by message delivery.
        self.done = not (self.streaming and not self.flushed and self.parent is not None)

    def on_start(self, ctx: RoundContext) -> None:
        self._start_streaming_if_ready()  # leaves begin immediately
        self._stream_one(ctx)
        self._broadcast_median_if_known(ctx)  # degenerate single-node tree
        self._refresh_done()

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        heard_median = False
        for message in inbox:
            if message.kind == "entry":
                value, weight = message.payload
                self.entries.append((float(value), int(weight)))
            elif message.kind == "flush":
                self.pending.discard(message.sender)
            elif message.kind == "median":
                self.median = message.payload
                self.result = self.median
                heard_median = True
        had_median = self.median is not None and not heard_median
        self._start_streaming_if_ready()
        self._stream_one(ctx)
        if self.median is not None and not had_median:
            # The median became known this round (computed at the root or
            # received from the parent): broadcast it downward exactly once.
            self._broadcast_median_if_known(ctx)
        self._refresh_done()


def _pick_median(entries: List[Entry]) -> float:
    ordered = sorted(entries)
    total = sum(1 + weight for _, weight in ordered)
    target = total / 2
    best_value = ordered[0][0]
    best_distance = math.inf
    cumulative = 0
    for value, weight in ordered:
        cumulative += weight + 1
        distance = abs(cumulative - target)
        if distance < best_distance:
            best_distance = distance
            best_value = value
    return best_value


def install_amf(
    simulator: Simulator,
    skiplist: BalancedSkipList,
    values: Mapping[Key, float],
    a: int = 4,
) -> Dict[Key, _AMFProcess]:
    """Register AMF processes over ``skiplist``'s segment tree.

    The simulator's network must contain the segment links
    (:func:`repro.distributed.sum_protocol.segment_network`); on a reused
    engine, retire the previous generation first.
    """
    items = list(skiplist.levels[0])
    h = skiplist.height - 1
    sample_size = max(2, a * max(h, 1))
    base = max(a / 2, 1.5)
    sampling_start = math.ceil(math.log(max(h, 2), base)) + 1

    parents = segment_tree(skiplist)
    children: Dict[Key, List[Key]] = {item: [] for item in items}
    depth: Dict[Key, int] = {}
    for level in range(skiplist.height):
        for item in skiplist.levels[level]:
            depth[item] = level
    for child, parent in parents.items():
        if parent is not None:
            children[parent].append(child)

    processes: Dict[Key, _AMFProcess] = {}
    for item in items:
        # A node samples when it aggregates at or above the sampling level.
        aggregates_at = depth.get(item, 0) + 1
        process = _AMFProcess(
            key=item,
            value=values[item],
            parent=parents[item],
            children=children[item],
            sample=aggregates_at >= sampling_start,
            sample_size=sample_size,
        )
        processes[item] = process
        simulator.add_process(process)
    return processes


def run_amf_protocol(
    values: Mapping[Key, float],
    a: int = 4,
    seed: Optional[int] = None,
) -> AMFProtocolResult:
    """Run the message-level AMF over ``values`` (list order = iteration order)."""
    items = list(values.keys())
    if len(items) < 2:
        raise ValueError("the protocol needs at least two values")
    if a < 2:
        raise ValueError("the balance parameter a must be at least 2")

    from repro.distributed.sum_protocol import segment_network
    from repro.simulation.rng import make_rng

    skiplist = BalancedSkipList(items, a=a, rng=make_rng(seed))
    network = segment_network(skiplist)
    simulator = Simulator(
        network,
        SimulatorConfig(seed=seed, max_rounds=50 * skiplist.height + 20 * len(items) + 100),
    )
    processes = install_amf(simulator, skiplist, values, a=a)
    metrics = simulator.run()

    median = processes[skiplist.root].median
    return AMFProtocolResult(
        median=float(median if median is not None else 0.0),
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
        n=len(items),
        dropped_messages=metrics.dropped_messages,
        total_bits=metrics.total_bits,
    )
