"""Conflict-aware pipelining primitives for the distributed DSG.

The sequential driver (:class:`repro.distributed.dsg_protocol.DistributedDSG`)
serves one request to quiescence at a time — the paper's model, kept as the
executable equivalence reference.  This module provides the pieces that let
many requests be in flight at once *without changing any observable result*:

* :class:`ConflictSet` — the touched region of one planned event.  The
  *read set* is the request's planned route path (the keys its ``route``
  message crosses in ``S_t``); the *write set* is the union of the plan's
  op-touched neighbourhoods (:func:`repro.core.local_ops.apply_ops_touched`,
  replayed on a shadow copy of the pre-plan graph) and the ``l_alpha``
  subtree the transformation restructures (the ``list_of(u, alpha)``
  members).  Two events conflict when either one's writes intersect the
  other's reads or writes; read/read overlap is always safe — routes may
  overlap routes freely.

* :class:`PipelineWindow` — the FIFO in-flight window.  Admission is
  head-of-line: the oldest planned event is admitted as soon as the window
  has room and its conflict set is disjoint from every in-flight event's;
  a conflicting head *blocks* (no younger event may overtake it), which is
  what makes the all-conflict schedule degrade to exactly the sequential
  round count with no starvation.  Structural application is equally FIFO:
  completed events apply their ops in arrival order, and only at
  dissemination-free boundaries — while op messages roam the overlay the
  link structure stays frozen, so the per-link FIFO flow control of
  :class:`~repro.distributed.dsg_protocol.DSGProcess` keeps overlap
  congestion-safe and no rewiring can drop an in-flight message.

* :class:`AdmissionRecord` — one line of the admission trace, the
  determinism artifact the regression tests compare across same-seed runs.

The pieces that touch the simulator live next to their siblings in
:mod:`repro.distributed.dsg_protocol`: :class:`~repro.distributed.
dsg_protocol.PipelinedDSGProcess` (a :class:`~repro.distributed.
dsg_protocol.DSGProcess` whose route and op arrivals are tagged with a
request id and recorded in a driver-shared completion ledger, so
concurrent completions cannot clobber each other) and the
:class:`~repro.distributed.dsg_protocol.PipelinedDSG` driver that wires
this window onto the CONGEST engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, NamedTuple, Optional

from repro.core.dsg import RequestResult
from repro.core.local_ops import LocalOp
from repro.skipgraph.node import Key

__all__ = [
    "AdmissionRecord",
    "ConflictSet",
    "PipelineEntry",
    "PipelineWindow",
    "entry_record",
]

#: Lifecycle phases of an in-flight entry.
PHASE_ROUTING = "routing"
PHASE_DISSEMINATING = "disseminating"
PHASE_COMPLETED = "completed"


@dataclass(frozen=True)
class ConflictSet:
    """The touched region of one planned event (see the module docstring)."""

    reads: FrozenSet[Key] = frozenset()
    writes: FrozenSet[Key] = frozenset()

    def conflicts_with(self, other: "ConflictSet") -> bool:
        """True unless the two regions may safely overlap in flight.

        Writes must be exclusive against everything; reads only against
        writes.  Read/read overlap is the whole point of pipelining: any
        number of routes may cross the same keys at once.
        """
        if self.writes and (self.writes & other.writes or self.writes & other.reads):
            return True
        return bool(other.writes and other.writes & self.reads)

    def size_words(self) -> int:
        """Detector state for this event, in O(1)-word units."""
        return len(self.reads) + len(self.writes)


@dataclass
class PipelineEntry:
    """One planned scenario event moving through the pipeline."""

    index: int
    kind: str  # "request" | "join" | "leave"
    rid: int
    conflict: ConflictSet
    ops: List[LocalOp]
    source: Optional[Key] = None
    destination: Optional[Key] = None
    plan: Optional[RequestResult] = None
    phase: str = PHASE_ROUTING
    measured: Optional[int] = None
    admit_round: int = -1
    complete_round: int = -1
    apply_round: int = -1
    #: Window occupancy at admission, the entry itself included.
    admitted_in_flight: int = 0
    stalled: bool = False


class AdmissionRecord(NamedTuple):
    """One applied event in the admission trace (arrival order).

    ``in_flight`` is the window occupancy at the entry's admission —
    counting the entry itself — which is how the adversarial serialization
    test asserts an all-conflict schedule never overlaps (always 1).
    """

    index: int
    kind: str
    rid: int
    admit_round: int
    complete_round: int
    apply_round: int
    in_flight: int


class PipelineWindow:
    """FIFO in-flight window with conflict-gated, head-of-line admission."""

    __slots__ = ("depth", "entries", "admitted", "max_in_flight", "conflict_stalls")

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"window depth must be >= 1, got {depth}")
        self.depth = depth
        self.entries: List[PipelineEntry] = []
        self.admitted = 0
        self.max_in_flight = 0
        self.conflict_stalls = 0

    def __len__(self) -> int:
        return len(self.entries)

    def try_admit(self, entry: PipelineEntry) -> bool:
        """Admit ``entry`` if there is room and no in-flight conflict.

        A refusal due to conflict is counted once per stalled entry (the
        ``conflict_stalls`` statistic): the entry stays at the head of the
        planned queue and blocks everything younger until the conflicting
        in-flight work has been applied — FIFO head-of-line blocking, the
        serialization half of the scheduler.
        """
        if len(self.entries) >= self.depth:
            return False
        if any(entry.conflict.conflicts_with(inflight.conflict) for inflight in self.entries):
            if not entry.stalled:
                entry.stalled = True
                self.conflict_stalls += 1
            return False
        self.entries.append(entry)
        self.admitted += 1
        entry.admitted_in_flight = len(self.entries)
        self.max_in_flight = max(self.max_in_flight, len(self.entries))
        return True

    def work_in_flight(self) -> bool:
        """Whether any in-flight entry still owes simulator rounds."""
        return any(
            entry.phase in (PHASE_ROUTING, PHASE_DISSEMINATING) for entry in self.entries
        )

    def dissemination_in_flight(self) -> bool:
        """Whether any op messages may be roaming the overlay.

        While true, structural application is forbidden: op relays cross
        arbitrary keys, so rewiring *any* link could strand or drop one.
        Routes are exempt — their paths are read sets, conflict-checked
        against every writer before admission.
        """
        return any(entry.phase == PHASE_DISSEMINATING for entry in self.entries)

    def pop_completed_head(self) -> Optional[PipelineEntry]:
        """Pop the oldest entry iff it has completed (FIFO application)."""
        if self.entries and self.entries[0].phase == PHASE_COMPLETED:
            return self.entries.pop(0)
        return None


def entry_record(entry: PipelineEntry) -> AdmissionRecord:
    """The trace line for an applied entry (see :class:`AdmissionRecord`)."""
    return AdmissionRecord(
        index=entry.index,
        kind=entry.kind,
        rid=entry.rid,
        admit_round=entry.admit_round,
        complete_round=entry.complete_round,
        apply_round=entry.apply_round,
        in_flight=entry.admitted_in_flight,
    )
