"""Message-level skip graph routing (Appendix B) on the CONGEST simulator.

Every node process knows only its own key, its membership vector and its
left/right neighbours at each level (``O(log n)`` words of local state, as
the model requires).  A source forwards a ``route`` message greedily towards
the destination, one hop per round; each hop carries only the destination
key and the current level — a constant number of words.

The router is *multi-request capable*: a process can be handed several
destinations (initiated one per round) and forwards any ``route`` message it
receives, reading the destination from the payload.  Outgoing messages are
flow-controlled per link — at most one send per neighbour per round, the
rest queued FIFO locally — so concurrent routes through a shared hop stay
CONGEST-conformant by construction instead of relying on luck.

Two entry points:

* :func:`run_routing_protocol` — the classic one-shot measurement: fresh
  network, fresh simulator, one (source, destination) pair, path
  reconstruction.
* :func:`install_routing` — register router processes on an *existing*
  simulator (reusing its network and metrics), which is how the churn
  arena restarts routing generations across membership changes and how
  :func:`~repro.workloads.scenarios.replay_scenario` joiners get processes.

Network maintenance is *op driven*: :func:`skip_graph_network` builds the
link structure once from a topology snapshot, and :func:`patch_network` /
:func:`apply_network_delta` keep a built network equal to the evolving
topology by executing local-operation plans (:mod:`repro.core.local_ops`)
as per-level link rewiring — the invariant
``network == skip_graph_network(graph)`` (links *and* level labels) holds
after every op, so protocol installs and churn replays never rebuild the
network from scratch (at 100k nodes a rebuild is millions of link
insertions; a churn op patches a bounded neighbourhood).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.local_ops import (
    DemoteOp,
    DummyInsertOp,
    DummyRemoveOp,
    LocalOp,
    NodeJoinOp,
    NodeLeaveOp,
    PromoteOp,
    apply_op,
)
from repro.simulation import Message, Network, NodeProcess, RoundContext, Simulator, SimulatorConfig
from repro.skipgraph.membership import common_prefix_length
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

__all__ = [
    "NeighborTable",
    "RoutingProtocolResult",
    "apply_network_delta",
    "install_routing",
    "make_router",
    "networks_equal",
    "patch_network",
    "run_routing_protocol",
    "skip_graph_network",
    "trace_route",
]


@dataclass
class RoutingProtocolResult:
    """Outcome of one message-level routing execution."""

    source: Key
    destination: Key
    path: List[Key]
    rounds: int
    messages: int
    max_message_bits: int
    congestion_violations: int
    dropped_messages: int = 0
    total_bits: int = 0

    @property
    def distance(self) -> int:
        return max(0, len(self.path) - 2)

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class NeighborTable:
    """Per-node neighbour table extracted from a skip graph snapshot.

    Shared by the plain router and the DSG protocol
    (:mod:`repro.distributed.dsg_protocol`): both forward greedily with
    :meth:`next_hop`, so the Appendix B semantics live in exactly one
    place — the distributed == centralized routing-distance guarantee
    depends on it.
    """

    def __init__(self, graph: SkipGraph, key: Key) -> None:
        self.key = key
        self.levels: Dict[int, Tuple[Optional[Key], Optional[Key]]] = {}
        top = graph.singleton_level(key)
        for level in range(0, top + 1):
            self.levels[level] = graph.neighbors(key, level)
        self.top_level = top

    def next_hop(self, destination: Key, level: int) -> Tuple[Optional[Key], int]:
        """Greedy next hop and the level it uses, or ``(None, -1)`` if stuck."""
        ascending = destination > self.key
        current_level = min(level, self.top_level)
        while current_level >= 0:
            left, right = self.levels.get(current_level, (None, None))
            candidate = right if ascending else left
            if candidate is not None:
                overshoots = candidate > destination if ascending else candidate < destination
                if not overshoots:
                    return candidate, current_level
            current_level -= 1
        return None, -1


class _RouterProcess(NodeProcess):
    """Forwards ``route`` messages one greedy hop per round.

    Passive (``done``) unless it has requests left to initiate or queued
    outgoing messages; woken by message delivery otherwise.
    """

    def __init__(self, key: Key, table: NeighborTable, requests: Sequence[Key] = ()) -> None:
        super().__init__(key)
        self.table = table
        self.requests: Deque[Key] = deque(requests)
        #: Per-link flow control: (receiver, payload) pairs awaiting a free round.
        self.outgoing: Deque[Tuple[Key, dict]] = deque()
        #: Routes that terminated at this node (it was their destination).
        self.completed = 0
        #: Last forwarding decision per destination (for path reconstruction
        #: under concurrent routes; ``result`` only keeps the latest one).
        self.forwards: Dict[Key, Tuple[Key, int]] = {}
        self.done = not self.requests

    def memory_words(self) -> int:
        return 2 * len(self.table.levels) + 3 + len(self.requests) + 2 * len(self.outgoing)

    def on_start(self, ctx: RoundContext) -> None:
        self._act(ctx)

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for message in inbox:
            if message.kind != "route":
                continue
            destination = message.payload["destination"]
            if self.node_id == destination:
                self.completed += 1
                self.result = "reached"
            else:
                self._forward(destination, message.payload["level"])
        self._act(ctx)

    # One initiation per round plus at most one send per neighbour link.
    def _act(self, ctx: RoundContext) -> None:
        if self.requests:
            destination = self.requests.popleft()
            if destination == self.node_id:
                self.completed += 1
                self.result = [self.node_id]
            else:
                self._forward(destination, self.table.top_level)
        self._flush(ctx)
        self.done = not (self.requests or self.outgoing)

    def _forward(self, destination: Key, level: int) -> None:
        next_hop, used_level = self.table.next_hop(destination, level)
        if next_hop is None:
            self.result = "stuck"
            return
        self.outgoing.append((next_hop, {"destination": destination, "level": used_level}))
        self.forwards[destination] = (next_hop, used_level)
        self.result = ("forwarded", next_hop, used_level)

    def _flush(self, ctx: RoundContext) -> None:
        used = set()
        keep: Deque[Tuple[Key, dict]] = deque()
        while self.outgoing:
            receiver, payload = self.outgoing.popleft()
            if receiver in used:
                keep.append((receiver, payload))
                continue
            used.add(receiver)
            ctx.send(receiver, "route", payload)
        self.outgoing = keep


def skip_graph_network(graph: SkipGraph) -> Network:
    """Network with one link per pair of level-adjacent skip graph nodes.

    Every level at which a pair is adjacent is recorded as a label on the
    (single physical) link, so churn rewiring can retract adjacency one
    level at a time (:func:`repro.workloads.scenarios.replay_scenario`).
    """
    network = Network()
    for key in graph.keys:
        network.add_node(key)
    for key in graph.keys:
        top = graph.singleton_level(key)
        for level in range(0, top + 1):
            left, right = graph.neighbors(key, level)
            for neighbor in (left, right):
                if neighbor is not None:
                    network.add_link(key, neighbor, label=f"level{level}")
    return network


def _splice_into_level(network: Network, graph: SkipGraph, key: Key, level: int, affected: Set[Key]) -> None:
    """Wire ``key`` into its (already updated) list at ``level``.

    The new node links to its left/right list neighbours and the pair it
    landed between loses its adjacency label at that level — the
    :func:`skip_graph_network` convention.
    """
    left, right = graph.neighbors(key, level)
    if left is not None and right is not None:
        network.remove_link(left, right, label=f"level{level}")
    for neighbor in (left, right):
        if neighbor is not None:
            network.add_link(key, neighbor, label=f"level{level}")
            affected.add(neighbor)


def patch_network(network: Network, graph: SkipGraph, op: LocalOp) -> Set[Key]:
    """Execute one local op against ``graph`` and patch ``network`` to match.

    ``graph`` is the topology mirror ``network`` was built from
    (:func:`skip_graph_network`); the op is applied to it and the links are
    rewired *incrementally*, level by level, so that the invariant
    ``network == skip_graph_network(graph)`` (links and labels) holds after
    every op:

    * an insertion (:class:`~repro.core.local_ops.NodeJoinOp` /
      :class:`~repro.core.local_ops.DummyInsertOp`) splices the new node
      into the base list and every level its membership bits reach;
    * a departure (:class:`~repro.core.local_ops.NodeLeaveOp` /
      :class:`~repro.core.local_ops.DummyRemoveOp`) closes every list up
      over the node (its left/right neighbours become adjacent) and drops
      its links;
    * a membership rewrite (:class:`~repro.core.local_ops.PromoteOp` /
      :class:`~repro.core.local_ops.DemoteOp`) closes up the lists the node
      leaves (levels above the preserved prefix of the old vector) and
      splices it into the lists the new vector reaches.

    Returns the set of keys whose links changed (the op's bounded
    neighbourhood) — what a driver must refresh routing tables for.  This
    is the op-driven alternative to rebuilding with
    :func:`skip_graph_network`: O(affected levels) link mutations per op
    instead of an O(n * height) reconstruction, property-tested equal to
    the rebuild after every op.
    """
    if not isinstance(
        op, (NodeJoinOp, DummyInsertOp, NodeLeaveOp, DummyRemoveOp, PromoteOp, DemoteOp)
    ):
        raise TypeError(f"unknown local op {op!r}")
    affected: Set[Key] = {op.key}
    if isinstance(op, (NodeJoinOp, DummyInsertOp)):
        apply_op(graph, op)
        network.add_node(op.key)
        for level in range(len(op.bits) + 1):
            _splice_into_level(network, graph, op.key, level, affected)
    elif isinstance(op, (NodeLeaveOp, DummyRemoveOp)):
        closures = []
        for level in range(len(graph.membership(op.key)) + 1):
            left, right = graph.neighbors(op.key, level)
            for neighbor in (left, right):
                if neighbor is not None:
                    affected.add(neighbor)
            if left is not None and right is not None:
                closures.append((level, left, right))
        apply_op(graph, op)
        if network.has_node(op.key):
            network.remove_node(op.key)
        for level, left, right in closures:
            network.add_link(left, right, label=f"level{level}")
    elif isinstance(op, (PromoteOp, DemoteOp)):
        old = graph.membership(op.key)
        if isinstance(op, PromoteOp):
            new = old.with_bit(op.level, op.bit)
        else:
            new = old.truncated(op.length)
        keep = common_prefix_length(old, new)
        closures = []
        for level in range(keep + 1, len(old) + 1):
            left, right = graph.neighbors(op.key, level)
            closures.append((level, left, right))
        apply_op(graph, op)
        for level, left, right in closures:
            for neighbor in (left, right):
                if neighbor is not None:
                    network.remove_link(op.key, neighbor, label=f"level{level}")
                    affected.add(neighbor)
            if left is not None and right is not None:
                network.add_link(left, right, label=f"level{level}")
        for level in range(keep + 1, len(new) + 1):
            _splice_into_level(network, graph, op.key, level, affected)
    return affected


def apply_network_delta(network: Network, graph: SkipGraph, ops: Iterable[LocalOp]) -> Set[Key]:
    """Patch ``network`` (and ``graph``) with a whole local-op plan, in order.

    The bulk form of :func:`patch_network` — what a driver uses to carry a
    built network across a request plan or a churn plan without rebuilding.
    Returns the union of every op's affected neighbourhood.
    """
    affected: Set[Key] = set()
    for op in ops:
        affected |= patch_network(network, graph, op)
    return affected


def networks_equal(network: Network, other: Network) -> bool:
    """Link-for-link equality of two networks, level labels included.

    The check side of the delta-maintenance contract: a network carried by
    :func:`patch_network` must equal a :func:`skip_graph_network` rebuild of
    the same topology.  Lives next to the convention it compares; used by
    the equivalence property tests, ``bench_e15_100k`` and the distributed
    DSG driver's invariant check.
    """
    if set(network.nodes) != set(other.nodes):
        return False
    edges = {frozenset(edge) for edge in network.edges()}
    if edges != {frozenset(edge) for edge in other.edges()}:
        return False
    return all(network.labels(u, v) == other.labels(u, v) for u, v in other.edges())


def install_routing(
    simulator: Simulator,
    graph: SkipGraph,
    requests: Mapping[Key, Sequence[Key]] | None = None,
) -> Dict[Key, _RouterProcess]:
    """Register a router process per skip graph node on ``simulator``.

    ``requests`` maps source keys to the destinations they initiate (one
    per round, in order).  The simulator's network must already contain the
    skip-graph links (:func:`skip_graph_network`); on a reused engine,
    retire the previous generation first (``simulator.retire_all()``).
    """
    requests = requests or {}
    processes: Dict[Key, _RouterProcess] = {}
    for key in graph.keys:
        process = _RouterProcess(key, NeighborTable(graph, key), requests.get(key, ()))
        processes[key] = process
        simulator.add_process(process)
    return processes


def make_router(graph: SkipGraph, key: Key, requests: Sequence[Key] = ()) -> _RouterProcess:
    """A router process for ``key`` with a fresh table snapshot of ``graph``.

    The process factory churn arenas hand to
    :func:`~repro.workloads.scenarios.replay_scenario` so joining nodes can
    route as soon as their initialization round has run.
    """
    return _RouterProcess(key, NeighborTable(graph, key), requests)


def trace_route(processes: Mapping[Key, _RouterProcess], source: Key, destination: Key) -> List[Key]:
    """Reconstruct a route's path from per-node forwarding decisions.

    Each router records its last forwarding decision *per destination*, so
    the trace stays correct when several routes (to distinct destinations)
    crossed the same node.  Two concurrent routes to the *same* destination
    share the record — the trace then follows the later decision.
    """
    path = [source]
    current = source
    visited = {source}
    while current != destination:
        forward = processes[current].forwards.get(destination)
        if forward is None:
            break
        current = forward[0]
        if current in visited:  # pragma: no cover - defensive against cycles
            break
        visited.add(current)
        path.append(current)
    return path


def run_routing_protocol(graph: SkipGraph, source: Key, destination: Key,
                         seed: Optional[int] = None) -> RoutingProtocolResult:
    """Execute the routing protocol and return its measured costs."""
    network = skip_graph_network(graph)
    simulator = Simulator(network, SimulatorConfig(seed=seed, max_rounds=10 * len(graph) + 20))
    processes = install_routing(simulator, graph, {source: [destination]})
    metrics = simulator.run()
    return RoutingProtocolResult(
        source=source,
        destination=destination,
        path=trace_route(processes, source, destination),
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
        dropped_messages=metrics.dropped_messages,
        total_bits=metrics.total_bits,
    )
