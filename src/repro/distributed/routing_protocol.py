"""Message-level skip graph routing (Appendix B) on the CONGEST simulator.

Every node process knows only its own key, its membership vector and its
left/right neighbours at each level (``O(log n)`` words of local state, as
the model requires).  The source starts at its top level and forwards a
``route`` message greedily towards the destination, one hop per round; each
hop carries only the destination key and the current level — a constant
number of words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.simulation import Message, Network, NodeProcess, RoundContext, Simulator, SimulatorConfig
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["RoutingProtocolResult", "run_routing_protocol"]


@dataclass
class RoutingProtocolResult:
    """Outcome of one message-level routing execution."""

    source: Key
    destination: Key
    path: List[Key]
    rounds: int
    messages: int
    max_message_bits: int
    congestion_violations: int

    @property
    def distance(self) -> int:
        return max(0, len(self.path) - 2)

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class _NeighborTable:
    """Per-node neighbour table extracted from a skip graph snapshot."""

    def __init__(self, graph: SkipGraph, key: Key) -> None:
        self.key = key
        self.levels: Dict[int, Tuple[Optional[Key], Optional[Key]]] = {}
        top = graph.singleton_level(key)
        for level in range(0, top + 1):
            self.levels[level] = graph.neighbors(key, level)
        self.top_level = top

    def next_hop(self, destination: Key, level: int) -> Tuple[Optional[Key], int]:
        """Greedy next hop and the level it uses, or ``(None, -1)`` if stuck."""
        ascending = destination > self.key
        current_level = min(level, self.top_level)
        while current_level >= 0:
            left, right = self.levels.get(current_level, (None, None))
            candidate = right if ascending else left
            if candidate is not None:
                overshoots = candidate > destination if ascending else candidate < destination
                if not overshoots:
                    return candidate, current_level
            current_level -= 1
        return None, -1


class _RouterProcess(NodeProcess):
    """Forwards ``route`` messages one greedy hop per round."""

    def __init__(self, key: Key, table: _NeighborTable, destination: Key, is_source: bool) -> None:
        super().__init__(key)
        self.table = table
        self.destination = destination
        self.is_source = is_source
        self.done = not is_source

    def memory_words(self) -> int:
        return 2 * len(self.table.levels) + 3

    def on_start(self, ctx: RoundContext) -> None:
        if not self.is_source:
            return
        if self.node_id == self.destination:
            self.result = [self.node_id]
            self.done = True
            return
        self._forward(ctx, level=self.table.top_level)
        self.done = True

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for message in inbox:
            if message.kind != "route":
                continue
            level = message.payload["level"]
            if self.node_id == self.destination:
                self.result = "reached"
                self.done = True
                continue
            self._forward(ctx, level=level)
            self.done = True

    def _forward(self, ctx: RoundContext, level: int) -> None:
        next_hop, used_level = self.table.next_hop(self.destination, level)
        if next_hop is None:
            self.result = "stuck"
            return
        ctx.send(next_hop, "route", {"destination": self.destination, "level": used_level})
        self.result = ("forwarded", next_hop, used_level)


def _skip_graph_network(graph: SkipGraph) -> Network:
    """Network with one link per pair of level-adjacent skip graph nodes."""
    network = Network()
    for key in graph.keys:
        network.add_node(key)
    for key in graph.keys:
        top = graph.singleton_level(key)
        for level in range(0, top + 1):
            left, right = graph.neighbors(key, level)
            for neighbor in (left, right):
                if neighbor is not None and not network.has_link(key, neighbor):
                    network.add_link(key, neighbor, label=f"level{level}")
    return network


def run_routing_protocol(graph: SkipGraph, source: Key, destination: Key,
                         seed: Optional[int] = None) -> RoutingProtocolResult:
    """Execute the routing protocol and return its measured costs."""
    network = _skip_graph_network(graph)
    simulator = Simulator(network, SimulatorConfig(seed=seed, max_rounds=10 * len(graph) + 20))
    processes = {}
    for key in graph.keys:
        table = _NeighborTable(graph, key)
        process = _RouterProcess(key, table, destination, is_source=(key == source))
        processes[key] = process
        simulator.add_process(process)
    metrics = simulator.run()

    # Reconstruct the path from the per-node forwarding decisions.
    path = [source]
    current = source
    visited = {source}
    while current != destination:
        result = processes[current].result
        if not (isinstance(result, tuple) and result[0] == "forwarded"):
            break
        current = result[1]
        if current in visited:  # pragma: no cover - defensive against cycles
            break
        visited.add(current)
        path.append(current)

    return RoutingProtocolResult(
        source=source,
        destination=destination,
        path=path,
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
    )
