"""Message-level skip graph routing (Appendix B) on the CONGEST simulator.

Every node process knows only its own key, its membership vector and its
left/right neighbours at each level (``O(log n)`` words of local state, as
the model requires).  A source forwards a ``route`` message greedily towards
the destination, one hop per round; each hop carries only the destination
key and the current level — a constant number of words.

The router is *multi-request capable*: a process can be handed several
destinations (initiated one per round) and forwards any ``route`` message it
receives, reading the destination from the payload.  Outgoing messages are
flow-controlled per link — at most one send per neighbour per round, the
rest queued FIFO locally — so concurrent routes through a shared hop stay
CONGEST-conformant by construction instead of relying on luck.

Two entry points:

* :func:`run_routing_protocol` — the classic one-shot measurement: fresh
  network, fresh simulator, one (source, destination) pair, path
  reconstruction.
* :func:`install_routing` — register router processes on an *existing*
  simulator (reusing its network and metrics), which is how the churn
  arena restarts routing generations across membership changes and how
  :func:`~repro.workloads.scenarios.replay_scenario` joiners get processes.

Network maintenance is *op driven*: :func:`skip_graph_network` builds the
link structure once from a topology snapshot, and :func:`patch_network` /
:func:`apply_network_delta` keep a built network equal to the evolving
topology by executing local-operation plans (:mod:`repro.core.local_ops`)
as per-level link rewiring — the invariant
``network == skip_graph_network(graph)`` (links *and* level labels) holds
after every op, so protocol installs and churn replays never rebuild the
network from scratch (at 100k nodes a rebuild is millions of link
insertions; a churn op patches a bounded neighbourhood).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.local_ops import (
    DemoteOp,
    DummyInsertOp,
    DummyRemoveOp,
    LocalOp,
    NodeJoinOp,
    NodeLeaveOp,
    PromoteOp,
    apply_op,
)
from repro.simulation import Message, Network, NodeProcess, RoundContext, Simulator, SimulatorConfig
from repro.skipgraph.membership import common_prefix_length
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

__all__ = [
    "NeighborTable",
    "RouteLedger",
    "RoutingProtocolResult",
    "apply_network_delta",
    "install_routing",
    "make_router",
    "networks_equal",
    "patch_network",
    "rejoin_crash_links",
    "repair_crash_links",
    "run_routing_protocol",
    "skip_graph_network",
    "trace_route",
]


@dataclass
class RoutingProtocolResult:
    """Outcome of one message-level routing execution."""

    source: Key
    destination: Key
    path: List[Key]
    rounds: int
    messages: int
    max_message_bits: int
    congestion_violations: int
    dropped_messages: int = 0
    total_bits: int = 0

    @property
    def distance(self) -> int:
        return max(0, len(self.path) - 2)

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class NeighborTable:
    """Per-node neighbour table extracted from a skip graph snapshot.

    Shared by the plain router and the DSG protocol
    (:mod:`repro.distributed.dsg_protocol`): both forward greedily with
    :meth:`next_hop`, so the Appendix B semantics live in exactly one
    place — the distributed == centralized routing-distance guarantee
    depends on it.

    With ``k > 1`` the table is *k-redundant* (the bami exemplar's
    ``extend_skip_graph_neighbourhood``): it keeps the ``k`` nearest list
    members per side per level, nearest first, so a route can step around
    a crashed primary neighbour (``dark`` argument of :meth:`next_hop`)
    instead of stranding.  Local state stays ``O(k log n)`` words.  With
    the default ``k = 1`` the table and :meth:`next_hop` behave exactly as
    before redundancy existed.
    """

    def __init__(self, graph: SkipGraph, key: Key, k: int = 1) -> None:
        if k < 1:
            raise ValueError(f"redundancy k must be >= 1, got {k}")
        self.key = key
        self.k = k
        self.levels: Dict[int, Tuple[Optional[Key], Optional[Key]]] = {}
        #: level -> (nearest-first left candidates, nearest-first right candidates)
        self.candidates: Dict[int, Tuple[List[Key], List[Key]]] = {}
        top = graph.singleton_level(key)
        bits = graph.membership(key).bits
        for level in range(0, top + 1):
            if level > len(bits):
                lefts: List[Key] = []
                rights: List[Key] = []
            else:
                members = graph.list_at(level, bits[:level] if level else ())
                index = bisect_left(members, key)
                lefts = members[max(0, index - k) : index][::-1]
                rights = members[index + 1 : index + 1 + k]
            self.candidates[level] = (lefts, rights)
            self.levels[level] = (
                lefts[0] if lefts else None,
                rights[0] if rights else None,
            )
        self.top_level = top

    def size_words(self) -> int:
        """Table size in words (for the per-node memory audit)."""
        return sum(len(lefts) + len(rights) for lefts, rights in self.candidates.values())

    def next_hop(
        self,
        destination: Key,
        level: int,
        dark: Optional[Set[Key]] = None,
    ) -> Tuple[Optional[Key], int]:
        """Greedy next hop and the level it uses, or ``(None, -1)`` if stuck.

        ``dark`` nodes (known-crashed neighbours) are skipped in favour of
        the next-nearest candidate on the same side — which never
        overshoots more than the primary would, so greedy progress (and
        hence loop freedom) is preserved.  A request whose destination
        itself is dark eventually strands here: every detour candidate
        beyond the destination overshoots, every level runs out, and the
        caller reports a failed request.
        """
        ascending = destination > self.key
        current_level = min(level, self.top_level)
        while current_level >= 0:
            lefts, rights = self.candidates.get(current_level, ([], []))
            for candidate in rights if ascending else lefts:
                overshoots = candidate > destination if ascending else candidate < destination
                if overshoots:
                    break
                if dark is not None and candidate in dark:
                    continue
                return candidate, current_level
            current_level -= 1
        return None, -1


@dataclass
class RouteLedger:
    """Driver-shared conservation ledger keyed by request id (``rid``).

    The failure arena's per-wave conservation claim is
    ``delivered + failed (+ retried-then-delivered) == injected``.  With
    crashes landing only at quiescent wave boundaries, per-router counters
    suffice — every injected request ends in exactly one counter.  A crash
    that lands *mid-wave* breaks that: a route message in flight towards
    (or through) the victim becomes a counted engine drop, and no router
    counter moves.  Tagging each injected request with a unique ``rid`` and
    recording terminal outcomes here makes the loss *identifiable*: a rid
    in neither set after quiescence is exactly an in-flight casualty, which
    the arena retries after the repair wave (bounded, with backoff) and
    only then counts failed.  The ledger is driver state, not node state —
    it costs the routers nothing against the O(k log n) memory model.
    """

    delivered: Set[int] = field(default_factory=set)
    failed: Set[int] = field(default_factory=set)

    def unresolved(self, injected: Set[int]) -> Set[int]:
        """Rids of ``injected`` with no terminal outcome (lost in flight)."""
        return injected - self.delivered - self.failed


class _RouterProcess(NodeProcess):
    """Forwards ``route`` messages one greedy hop per round.

    Passive (``done``) unless it has requests left to initiate or queued
    outgoing messages; woken by message delivery otherwise.

    Requests may be bare destinations or ``(destination, rid)`` pairs; a
    rid rides the payload (one extra word) and terminal outcomes —
    completion at the destination, stranding at a hole's edge — are
    recorded in the driver-shared ``ledger`` so the failure arena can tell
    an in-flight loss from a delivered or cleanly failed request.
    """

    def __init__(
        self,
        key: Key,
        table: NeighborTable,
        requests: Sequence[Union[Key, Tuple[Key, int]]] = (),
        ledger: Optional[RouteLedger] = None,
    ) -> None:
        super().__init__(key)
        self.table = table
        self.requests: Deque[Union[Key, Tuple[Key, int]]] = deque(requests)
        self.ledger = ledger
        #: Per-link flow control: (receiver, payload) pairs awaiting a free round.
        self.outgoing: Deque[Tuple[Key, dict]] = deque()
        #: Routes that terminated at this node (it was their destination).
        self.completed = 0
        #: Last forwarding decision per destination (for path reconstruction
        #: under concurrent routes; ``result`` only keeps the latest one).
        self.forwards: Dict[Key, Tuple[Key, int]] = {}
        #: Neighbours observed crashed (their link vanished at flush time).
        self.dark: Set[Key] = set()
        #: Hops re-routed around a dark neighbour (repair-cost accounting).
        self.route_arounds = 0
        #: Routes stranded at this node (every remaining candidate dark).
        self.failed = 0
        self._unreported_failures = 0
        self.done = not self.requests

    def memory_words(self) -> int:
        return (
            self.table.size_words()
            + 3
            + len(self.requests)
            + 2 * len(self.outgoing)
            + len(self.dark)
        )

    def on_start(self, ctx: RoundContext) -> None:
        self._act(ctx)

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for message in inbox:
            if message.kind != "route":
                continue
            destination = message.payload["destination"]
            if self.node_id == destination:
                self.completed += 1
                self.result = "reached"
                self._record_delivered(message.payload.get("rid"))
            else:
                self._forward(destination, message.payload["level"], rid=message.payload.get("rid"))
        self._act(ctx)

    # One initiation per round plus at most one send per neighbour link.
    def _act(self, ctx: RoundContext) -> None:
        if self.requests:
            item = self.requests.popleft()
            destination, rid = item if isinstance(item, tuple) else (item, None)
            if destination == self.node_id:
                self.completed += 1
                self.result = [self.node_id]
                self._record_delivered(rid)
            else:
                self._forward(destination, self.table.top_level, rid=rid)
        self._flush(ctx)
        if self._unreported_failures:
            ctx.report_failure(self._unreported_failures)
            self._unreported_failures = 0
        self.done = not (self.requests or self.outgoing)

    def _forward(self, destination: Key, level: int, rid: Optional[int] = None) -> None:
        next_hop, used_level = self.table.next_hop(destination, level, dark=self.dark)
        if next_hop is None:
            self.result = "stuck"
            self.failed += 1
            self._unreported_failures += 1
            self._record_failed(rid)
            return
        payload = {"destination": destination, "level": used_level}
        if rid is not None:
            payload["rid"] = rid
        self.outgoing.append((next_hop, payload))
        self.forwards[destination] = (next_hop, used_level)
        self.result = ("forwarded", next_hop, used_level)

    def _record_delivered(self, rid: Optional[int]) -> None:
        if rid is not None and self.ledger is not None:
            self.ledger.delivered.add(rid)

    def _record_failed(self, rid: Optional[int]) -> None:
        if rid is not None and self.ledger is not None:
            self.ledger.failed.add(rid)

    def _flush(self, ctx: RoundContext) -> None:
        """One send per live neighbour; dark hops are re-routed on the spot.

        Liveness is judged by local knowledge only — the node's current
        link set (``ctx.neighbors()``), the CONGEST analogue of a failed
        connection.  A queued hop whose link vanished marks the receiver
        dark and the payload is re-forwarded through the k-redundant
        table; the dark set only grows, so the re-route loop terminates.
        """
        if not self.outgoing:
            return
        live = ctx.neighbors()
        used = set()
        keep: Deque[Tuple[Key, dict]] = deque()
        pending, self.outgoing = self.outgoing, deque()
        while pending:
            receiver, payload = pending.popleft()
            if receiver not in live:
                self.dark.add(receiver)
                self.route_arounds += 1
                self._forward(payload["destination"], payload["level"], rid=payload.get("rid"))
                # The re-routed hop (if any) must face the same liveness
                # check, so fold it back into this drain.
                pending.extend(self.outgoing)
                self.outgoing.clear()
                continue
            if receiver in used:
                keep.append((receiver, payload))
                continue
            used.add(receiver)
            ctx.send(receiver, "route", payload)
        self.outgoing = keep


def skip_graph_network(graph: SkipGraph, k: int = 1) -> Network:
    """Network with one link per pair of level-adjacent skip graph nodes.

    Every level at which a pair is adjacent is recorded as a label on the
    (single physical) link, so churn rewiring can retract adjacency one
    level at a time (:func:`repro.workloads.scenarios.replay_scenario`).

    ``k > 1`` builds the *k-redundant* overlay of the failure arena: every
    pair within list distance ``k`` of each other (per level) is linked,
    with the same ``level<d>`` label, so a route can physically step to
    the next-nearest list member when its primary neighbour crashes.  The
    incremental maintenance in :func:`patch_network` assumes the default
    ``k = 1`` convention; a k-redundant network under *crash* churn is
    maintained by :func:`repair_crash_links` instead.
    """
    if k < 1:
        raise ValueError(f"redundancy k must be >= 1, got {k}")
    network = Network()
    for key in graph.keys:
        network.add_node(key)
    for key in graph.keys:
        top = graph.singleton_level(key)
        for level in range(0, top + 1):
            left, right = graph.neighbors(key, level)
            for neighbor in (left, right):
                if neighbor is not None:
                    network.add_link(key, neighbor, label=f"level{level}")
    if k > 1:
        base = graph.keys
        for distance in range(2, k + 1):
            for index in range(len(base) - distance):
                network.add_link(base[index], base[index + distance], label="level0")
        for level in range(1, graph.height()):
            for members in graph.lists_at_level(level).values():
                for distance in range(2, k + 1):
                    for index in range(len(members) - distance):
                        network.add_link(
                            members[index], members[index + distance], label=f"level{level}"
                        )
    return network


def repair_crash_links(network: Network, graph: SkipGraph, key: Key, k: int = 1) -> Tuple[Set[Key], int]:
    """Close every list up over crashed ``key`` under redundancy ``k``.

    ``graph`` is the topology mirror that still contains the crashed node
    (the crash removed it from the *network* only — the structural repair
    is exactly this call); the node is removed from the graph and every
    level list is re-closed so that ``network == skip_graph_network(graph, k)``
    holds again: pairs whose in-list distance dropped to ``<= k`` when the
    hole closed gain the level's link.  Removal can only shrink distances,
    so no existing link ever needs retraction.

    Returns ``(affected keys, links added)`` — the keys whose
    :class:`NeighborTable` must be refreshed, and the repair cost the
    failure arena charges for the wave.
    """
    bits = graph.membership(key).bits
    holes = []  # (level, nearest-first lefts, nearest-first rights)
    for level in range(0, len(bits) + 1):
        members = graph.list_at(level, bits[:level])
        index = bisect_left(members, key)
        if index >= len(members) or members[index] != key:
            continue
        lefts = members[max(0, index - k) : index][::-1]
        rights = members[index + 1 : index + 1 + k]
        holes.append((level, lefts, rights))
    apply_op(graph, NodeLeaveOp(key))
    if network.has_node(key):
        network.remove_node(key)
    affected: Set[Key] = set()
    links_added = 0
    for level, lefts, rights in holes:
        label = f"level{level}"
        affected.update(lefts)
        affected.update(rights)
        for i, left in enumerate(lefts):
            for j, right in enumerate(rights):
                if i + j + 1 > k:
                    break
                if label not in network.labels(left, right):
                    network.add_link(left, right, label=label)
                    links_added += 1
    return affected, links_added


def rejoin_crash_links(
    network: Network, graph: SkipGraph, key: Key, bits: Sequence[int], k: int = 1
) -> Tuple[Set[Key], int]:
    """Splice recovered ``key`` back in as a *fresh identity* under redundancy ``k``.

    The inverse of :func:`repair_crash_links`: ``graph`` is the repaired
    topology mirror (the crash's hole already closed up), and the recovered
    key rejoins through the kernel's
    :class:`~repro.core.local_ops.NodeJoinOp` path with *new* membership
    ``bits`` — a fresh identity, never a resurrection of the old tables.
    Every level list the bits reach is re-opened around the key so that
    ``network == skip_graph_network(graph, k)`` holds again: the key links
    to its ``k`` nearest list members per side per level, and a survivor
    pair whose in-list distance grew past ``k`` when the key landed between
    them loses that level's label.  Insertion can only grow survivor
    distances, so no survivor-to-survivor link ever needs *adding*.

    Returns ``(affected survivor keys, links added)`` — the keys whose
    :class:`NeighborTable` must be refreshed, and the rejoin cost the
    failure arena charges for the wave.
    """
    apply_op(graph, NodeJoinOp(key, tuple(bits)))
    network.add_node(key)
    affected: Set[Key] = set()
    links_added = 0
    for level in range(0, len(bits) + 1):
        members = graph.list_at(level, tuple(bits[:level]))
        index = bisect_left(members, key)
        lefts = members[max(0, index - k) : index][::-1]
        rights = members[index + 1 : index + 1 + k]
        label = f"level{level}"
        for neighbor in lefts + rights:
            affected.add(neighbor)
            if label not in network.labels(key, neighbor):
                network.add_link(key, neighbor, label=label)
                links_added += 1
        for i, left in enumerate(lefts):
            for j, right in enumerate(rights):
                # The pair sat i + j + 1 apart before the key landed between
                # them (so it held the label) and sits i + j + 2 apart now;
                # retract exactly when the distance crossed the k threshold.
                if i + j + 1 <= k and i + j + 2 > k:
                    network.remove_link(left, right, label=label)
    return affected, links_added


def _splice_into_level(network: Network, graph: SkipGraph, key: Key, level: int, affected: Set[Key]) -> None:
    """Wire ``key`` into its (already updated) list at ``level``.

    The new node links to its left/right list neighbours and the pair it
    landed between loses its adjacency label at that level — the
    :func:`skip_graph_network` convention.
    """
    left, right = graph.neighbors(key, level)
    if left is not None and right is not None:
        network.remove_link(left, right, label=f"level{level}")
    for neighbor in (left, right):
        if neighbor is not None:
            network.add_link(key, neighbor, label=f"level{level}")
            affected.add(neighbor)


def patch_network(network: Network, graph: SkipGraph, op: LocalOp) -> Set[Key]:
    """Execute one local op against ``graph`` and patch ``network`` to match.

    ``graph`` is the topology mirror ``network`` was built from
    (:func:`skip_graph_network`); the op is applied to it and the links are
    rewired *incrementally*, level by level, so that the invariant
    ``network == skip_graph_network(graph)`` (links and labels) holds after
    every op:

    * an insertion (:class:`~repro.core.local_ops.NodeJoinOp` /
      :class:`~repro.core.local_ops.DummyInsertOp`) splices the new node
      into the base list and every level its membership bits reach;
    * a departure (:class:`~repro.core.local_ops.NodeLeaveOp` /
      :class:`~repro.core.local_ops.DummyRemoveOp`) closes every list up
      over the node (its left/right neighbours become adjacent) and drops
      its links;
    * a membership rewrite (:class:`~repro.core.local_ops.PromoteOp` /
      :class:`~repro.core.local_ops.DemoteOp`) closes up the lists the node
      leaves (levels above the preserved prefix of the old vector) and
      splices it into the lists the new vector reaches.

    Returns the set of keys whose links changed (the op's bounded
    neighbourhood) — what a driver must refresh routing tables for.  This
    is the op-driven alternative to rebuilding with
    :func:`skip_graph_network`: O(affected levels) link mutations per op
    instead of an O(n * height) reconstruction, property-tested equal to
    the rebuild after every op.
    """
    if not isinstance(
        op, (NodeJoinOp, DummyInsertOp, NodeLeaveOp, DummyRemoveOp, PromoteOp, DemoteOp)
    ):
        raise TypeError(f"unknown local op {op!r}")
    affected: Set[Key] = {op.key}
    if isinstance(op, (NodeJoinOp, DummyInsertOp)):
        apply_op(graph, op)
        network.add_node(op.key)
        for level in range(len(op.bits) + 1):
            _splice_into_level(network, graph, op.key, level, affected)
    elif isinstance(op, (NodeLeaveOp, DummyRemoveOp)):
        closures = []
        for level in range(len(graph.membership(op.key)) + 1):
            left, right = graph.neighbors(op.key, level)
            for neighbor in (left, right):
                if neighbor is not None:
                    affected.add(neighbor)
            if left is not None and right is not None:
                closures.append((level, left, right))
        apply_op(graph, op)
        if network.has_node(op.key):
            network.remove_node(op.key)
        for level, left, right in closures:
            network.add_link(left, right, label=f"level{level}")
    elif isinstance(op, (PromoteOp, DemoteOp)):
        old = graph.membership(op.key)
        if isinstance(op, PromoteOp):
            new = old.with_bit(op.level, op.bit)
        else:
            new = old.truncated(op.length)
        keep = common_prefix_length(old, new)
        closures = []
        for level in range(keep + 1, len(old) + 1):
            left, right = graph.neighbors(op.key, level)
            closures.append((level, left, right))
        apply_op(graph, op)
        for level, left, right in closures:
            for neighbor in (left, right):
                if neighbor is not None:
                    network.remove_link(op.key, neighbor, label=f"level{level}")
                    affected.add(neighbor)
            if left is not None and right is not None:
                network.add_link(left, right, label=f"level{level}")
        for level in range(keep + 1, len(new) + 1):
            _splice_into_level(network, graph, op.key, level, affected)
    return affected


def apply_network_delta(network: Network, graph: SkipGraph, ops: Iterable[LocalOp]) -> Set[Key]:
    """Patch ``network`` (and ``graph``) with a whole local-op plan, in order.

    The bulk form of :func:`patch_network` — what a driver uses to carry a
    built network across a request plan or a churn plan without rebuilding.
    Returns the union of every op's affected neighbourhood.
    """
    affected: Set[Key] = set()
    for op in ops:
        affected |= patch_network(network, graph, op)
    return affected


def networks_equal(network: Network, other: Network) -> bool:
    """Link-for-link equality of two networks, level labels included.

    The check side of the delta-maintenance contract: a network carried by
    :func:`patch_network` must equal a :func:`skip_graph_network` rebuild of
    the same topology.  Lives next to the convention it compares; used by
    the equivalence property tests, ``bench_e15_100k`` and the distributed
    DSG driver's invariant check.
    """
    if set(network.nodes) != set(other.nodes):
        return False
    edges = {frozenset(edge) for edge in network.edges()}
    if edges != {frozenset(edge) for edge in other.edges()}:
        return False
    return all(network.labels(u, v) == other.labels(u, v) for u, v in other.edges())


def install_routing(
    simulator: Simulator,
    graph: SkipGraph,
    requests: Mapping[Key, Sequence[Union[Key, Tuple[Key, int]]]] | None = None,
    k: int = 1,
    ledger: Optional[RouteLedger] = None,
) -> Dict[Key, _RouterProcess]:
    """Register a router process per skip graph node on ``simulator``.

    ``requests`` maps source keys to the destinations they initiate (one
    per round, in order); entries may be ``(destination, rid)`` pairs when
    a shared ``ledger`` tracks terminal outcomes.  The simulator's network
    must already contain the skip-graph links (:func:`skip_graph_network`,
    built with the same ``k``); on a reused engine, retire the previous
    generation first (``simulator.retire_all()``).
    """
    requests = requests or {}
    processes: Dict[Key, _RouterProcess] = {}
    for key in graph.keys:
        process = _RouterProcess(
            key, NeighborTable(graph, key, k=k), requests.get(key, ()), ledger=ledger
        )
        processes[key] = process
        simulator.add_process(process)
    return processes


def make_router(
    graph: SkipGraph,
    key: Key,
    requests: Sequence[Union[Key, Tuple[Key, int]]] = (),
    k: int = 1,
    ledger: Optional[RouteLedger] = None,
) -> _RouterProcess:
    """A router process for ``key`` with a fresh table snapshot of ``graph``.

    The process factory churn arenas hand to
    :func:`~repro.workloads.scenarios.replay_scenario` so joining nodes can
    route as soon as their initialization round has run.
    """
    return _RouterProcess(key, NeighborTable(graph, key, k=k), requests, ledger=ledger)


def trace_route(processes: Mapping[Key, _RouterProcess], source: Key, destination: Key) -> List[Key]:
    """Reconstruct a route's path from per-node forwarding decisions.

    Each router records its last forwarding decision *per destination*, so
    the trace stays correct when several routes (to distinct destinations)
    crossed the same node.  Two concurrent routes to the *same* destination
    share the record — the trace then follows the later decision.
    """
    path = [source]
    current = source
    visited = {source}
    while current != destination:
        forward = processes[current].forwards.get(destination)
        if forward is None:
            break
        current = forward[0]
        if current in visited:  # pragma: no cover - defensive against cycles
            break
        visited.add(current)
        path.append(current)
    return path


def run_routing_protocol(graph: SkipGraph, source: Key, destination: Key,
                         seed: Optional[int] = None) -> RoutingProtocolResult:
    """Execute the routing protocol and return its measured costs."""
    network = skip_graph_network(graph)
    simulator = Simulator(network, SimulatorConfig(seed=seed, max_rounds=10 * len(graph) + 20))
    processes = install_routing(simulator, graph, {source: [destination]})
    metrics = simulator.run()
    return RoutingProtocolResult(
        source=source,
        destination=destination,
        path=trace_route(processes, source, destination),
        rounds=metrics.rounds,
        messages=metrics.total_messages,
        max_message_bits=metrics.max_message_bits,
        congestion_violations=metrics.congestion_violations,
        dropped_messages=metrics.dropped_messages,
        total_bits=metrics.total_bits,
    )
