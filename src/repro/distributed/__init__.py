"""Message-level protocol implementations on the CONGEST simulator.

The structural DSG engine (:mod:`repro.core`) charges round costs using
closed-form accounting.  The protocols here execute the primitives that
dominate those costs as genuine message-passing programs on
:class:`repro.simulation.Simulator`, which serves two purposes:

* **CONGEST conformance** (experiment E11): every message the protocols send
  is measured in bits and checked against ``O(log n)``, and the per-link
  per-round constraint is enforced by the simulator;
* **calibration**: the rounds the protocols take are compared against the
  rounds the structural engine charges for the same primitive (routing,
  broadcast, aggregation, AMF), so the cost model used in the experiments is
  anchored to an executable artefact.

Protocols
---------
``run_routing_protocol``
    Standard skip graph routing, one greedy hop per round (Appendix B).
``run_list_broadcast``
    Broadcast along one linked list (the transformation notification).
``run_sum_protocol``
    Convergecast + broadcast over the balanced skip list (Appendix D).
``run_amf_protocol``
    The gather-sample-decide pipeline of AMF (Algorithm 2).
``run_distributed_dsg`` / ``DistributedDSG``
    The full self-adjusting DSG: greedy routing plus the local-op plans of
    the kernel executed as O(log n)-bit messages, churn included
    (:mod:`repro.distributed.dsg_protocol`).
``run_pipelined_dsg`` / ``PipelinedDSG``
    Conflict-aware pipelined serving: up to ``window`` requests in flight
    at once, admitted FIFO when their read/write conflict sets
    (:mod:`repro.distributed.pipeline`) are disjoint, equivalence-tested
    against the sequential driver's topology and Equation-1 cost.

Each ``run_*`` entry point builds a fresh network and simulator; the
matching ``install_*`` function registers a new process generation on an
*existing* engine instead (retire the previous one first), which is how
the churn arena (``benchmarks/bench_e11_congest.py``) restarts protocols
across membership changes replayed by
:func:`repro.workloads.scenarios.replay_scenario` — and how the lifecycle
property tests show a post-churn rerun on a reused engine reproduces a
fresh simulator.

The aggregation protocols communicate over the balanced skip list's
*segment* links (each node talks to the promoted node owning its segment).
In a real deployment those exchanges are relayed over at most ``2a``
consecutive level links; the relay cost is part of the structural
accounting, while the message-level version uses a direct logical link per
segment for clarity.  This simplification is documented in DESIGN.md.
"""

from repro.distributed.routing_protocol import (
    NeighborTable,
    RoutingProtocolResult,
    apply_network_delta,
    install_routing,
    make_router,
    networks_equal,
    patch_network,
    rejoin_crash_links,
    repair_crash_links,
    RouteLedger,
    run_routing_protocol,
    skip_graph_network,
    trace_route,
)
from repro.distributed.failover import (
    FailureArenaReport,
    FailureWaveReport,
    Wave,
    run_failure_arena,
    segment_waves,
)
from repro.distributed.dsg_protocol import (
    DistributedDSG,
    DistributedDSGReport,
    DistributedRequestOutcome,
    DSGProcess,
    PipelinedDSG,
    PipelinedDSGProcess,
    PipelinedDSGReport,
    run_distributed_dsg,
    run_pipelined_dsg,
)
from repro.distributed.pipeline import AdmissionRecord, ConflictSet, PipelineWindow
from repro.distributed.broadcast_protocol import BroadcastResult, install_broadcast, run_list_broadcast
from repro.distributed.sum_protocol import (
    SumProtocolResult,
    install_sum,
    run_sum_protocol,
    segment_network,
)
from repro.distributed.amf_protocol import AMFProtocolResult, install_amf, run_amf_protocol

__all__ = [
    "AMFProtocolResult",
    "BroadcastResult",
    "apply_network_delta",
    "networks_equal",
    "patch_network",
    "rejoin_crash_links",
    "repair_crash_links",
    "RouteLedger",
    "Wave",
    "DSGProcess",
    "DistributedDSG",
    "DistributedDSGReport",
    "DistributedRequestOutcome",
    "AdmissionRecord",
    "ConflictSet",
    "PipelineWindow",
    "PipelinedDSG",
    "PipelinedDSGProcess",
    "PipelinedDSGReport",
    "FailureArenaReport",
    "FailureWaveReport",
    "NeighborTable",
    "RoutingProtocolResult",
    "SumProtocolResult",
    "install_amf",
    "install_broadcast",
    "install_routing",
    "install_sum",
    "make_router",
    "run_amf_protocol",
    "run_distributed_dsg",
    "run_pipelined_dsg",
    "run_failure_arena",
    "run_list_broadcast",
    "run_routing_protocol",
    "run_sum_protocol",
    "segment_network",
    "segment_waves",
    "skip_graph_network",
    "trace_route",
]
