"""Dynamic Skip Graphs — the DSG front end (paper, Algorithm 1).

:class:`DynamicSkipGraph` owns a skip graph, the per-node DSG state
(timestamps, group-ids, dominating flags, group-bases) and the request
history.  For every communication request ``(u, v)`` it:

1. establishes the communication with standard skip graph routing and
   records the routing distance ``d_{S_t}(σ_t)``;
2. finds ``alpha`` (the highest common level) and the linked list
   ``l_alpha``; dummy nodes inside ``l_alpha`` destroy themselves when the
   transformation notification reaches them;
3. computes priorities (P1-P3), merges the communicating groups at level
   ``alpha`` and, if needed, runs the ``G_lower`` alignment of Appendix C;
4. transforms the subtree of ``l_alpha`` level by level
   (:func:`repro.core.transformation.transform`), which leaves ``u`` and
   ``v`` in a linked list of size two;
5. updates group-bases and applies timestamp rules T1-T6;
6. charges the costs: ``routing distance + transformation rounds + 1``
   (Equation 1 of the paper).

The class also implements node addition/removal (Section IV-G) and the
bookkeeping needed by the experiments: per-request results, average cost,
working-set statistics, height tracking and memory auditing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.groups import (
    glower_update,
    initial_group_base,
    merge_groups_at_alpha,
    update_group_bases_after_transformation,
)
from repro.core.local_ops import LocalOp, OpRecorder, apply_ops, apply_ops_batch
from repro.core.priorities import compute_priorities
from repro.core.state import DSGNodeState
from repro.core.timestamps import TimestampContext, apply_timestamp_rules
from repro.core.transformation import transform
from repro.core.working_set import CommunicationHistory
from repro.simulation.rng import make_rng
from repro.skipgraph.balance import BalanceTracker, a_balance_violations
from repro.skipgraph.build import (
    build_balanced_skip_graph,
    build_skip_graph,
    draw_membership_bits,
    draw_membership_bits_reference,
)
from repro.skipgraph.routing import RoutingResult, route
from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["BatchOutcome", "DSGConfig", "DynamicSkipGraph", "RequestResult"]

Key = Hashable


@dataclass
class DSGConfig:
    """Tunable parameters of a :class:`DynamicSkipGraph` instance.

    Attributes
    ----------
    a:
        The balance parameter (a-balance property, AMF construction).
    seed:
        Seed of the instance's random source (AMF coin flips, dummy keys).
    use_exact_median:
        Replace AMF with an exact median (ablation; changes the cost model).
    maintain_a_balance:
        Insert dummy nodes to preserve the a-balance property (Section IV-F).
    adjust:
        When ``False`` requests are only routed, never transformed — the
        instance then behaves exactly like a static skip graph (used as a
        baseline and for ablations).
    track_working_set:
        Maintain the communication history and per-request working set
        numbers (costs O(window) per request; disable for large speed runs).
    initial_topology:
        ``"balanced"`` (default) or ``"random"`` membership vectors for the
        starting skip graph.
    use_reference_scans:
        Run the churn path on the seed O(n)-scan implementations
        (:func:`~repro.skipgraph.build.draw_membership_bits_reference` for
        join bits, a full :func:`~repro.skipgraph.balance.a_balance_violations`
        rescan per cascade round of :meth:`DynamicSkipGraph.restore_a_balance`)
        instead of the incremental indexes.  Slow — exists so the
        equivalence benchmarks can replay one schedule on both paths and
        assert identical costs, topology and dummy placement.
    use_batched_apply:
        Execute the planners' promote/demote/dummy-removal runs through the
        skip graph's bulk entry points (one list splice and one prefix-index
        pass per run) instead of op-by-op cache invalidation.  Plans, costs,
        RNG draws and the final topology are byte-identical either way
        (property-tested); ``False`` selects the op-by-op reference path.
    use_plan_compaction:
        Rewrite plans with the peephole compactor
        (:func:`~repro.core.plan_opt.compact_plan`) before *replaying* them
        through :meth:`DynamicSkipGraph.replay_plan`.  Never affects the
        planners: cost accounting and recorded plans always describe the
        original op sequence (Equation 1 is charged for the uncompacted
        plan), only replay-style consumers execute the shorter form.
    use_array_lists:
        Mirror the membership bits into the flat numpy bit-matrix store
        (:mod:`repro.skipgraph.array_store`) and let the a-balance scans run
        vectorised over it.  Results are identical to the dict/list
        reference path, which remains the executable specification.
    """

    a: int = 4
    seed: Optional[int] = None
    use_exact_median: bool = False
    maintain_a_balance: bool = True
    adjust: bool = True
    track_working_set: bool = True
    initial_topology: str = "balanced"
    use_reference_scans: bool = False
    use_batched_apply: bool = True
    use_plan_compaction: bool = True
    use_array_lists: bool = True


@dataclass
class RequestResult:
    """Per-request outcome and cost breakdown (Equation 1 of the paper)."""

    time: int
    source: Key
    destination: Key
    alpha: int
    routing: RoutingResult
    transformation_rounds: int = 0
    total_work_rounds: int = 0
    notification_rounds: int = 0
    working_set_number: Optional[int] = None
    amf_calls: int = 0
    levels_rebuilt: int = 0
    d_prime: int = 0
    dummies_added: int = 0
    dummies_removed: int = 0
    height_after: int = 0
    #: The request's full local-operation plan (dummy self-destructions in
    #: ``l_alpha`` followed by the transformation's ops), in application
    #: order.  Replaying it on a copy of the pre-request graph reproduces
    #: the post-request topology (see :mod:`repro.core.local_ops`); the
    #: distributed protocol executes exactly this sequence as messages.
    ops: Optional[List["LocalOp"]] = None

    @property
    def routing_cost(self) -> int:
        """``d_{S_t}(σ_t)`` — intermediate nodes on the routing path."""
        return self.routing.distance

    @property
    def cost(self) -> int:
        """``d_{S_t}(σ_t) + ρ(A, S_t, σ_t) + 1`` (Equation 1)."""
        return self.routing_cost + self.transformation_rounds + 1

    @property
    def log_working_set(self) -> float:
        """``log2`` of the working set number (0 when untracked)."""
        if not self.working_set_number or self.working_set_number < 1:
            return 0.0
        return math.log2(self.working_set_number)


@dataclass
class BatchOutcome:
    """Aggregate result of one :meth:`DynamicSkipGraph.run_requests` call.

    ``costs[i]`` is the Equation 1 cost of the ``i``-th request of the batch
    — identical, request by request, to what a sequential
    :meth:`DynamicSkipGraph.request` loop would have produced on the same
    instance and seed (the batch path shares the per-request core and only
    amortizes validation and bookkeeping around it).
    """

    served: int
    costs: List[int]
    total_cost: int
    total_routing_cost: int
    final_height: int
    max_height: int
    elapsed_seconds: float
    results: Optional[List[RequestResult]] = None
    #: Largest single-request routing distance of the batch.
    max_routing: int = 0

    @property
    def average_cost(self) -> float:
        return self.total_cost / self.served if self.served else 0.0

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.served / self.elapsed_seconds


class DynamicSkipGraph:
    """A self-adjusting skip graph driven by the DSG algorithm."""

    def __init__(
        self,
        keys: Optional[Iterable[Key]] = None,
        graph: Optional[SkipGraph] = None,
        config: Optional[DSGConfig] = None,
    ) -> None:
        self.config = config or DSGConfig()
        if self.config.a < 2:
            raise ValueError("the balance parameter a must be at least 2")
        self._rng = make_rng(self.config.seed)
        if graph is not None:
            self.graph = graph
        elif keys is not None:
            keys = list(keys)
            self._check_keys(keys)
            if self.config.initial_topology == "random":
                self.graph = build_skip_graph(keys, rng=self._rng)
            else:
                self.graph = build_balanced_skip_graph(keys)
        else:
            raise ValueError("provide either keys or a pre-built skip graph")
        self._check_keys(self.graph.real_keys)

        self.states: Dict[Key, DSGNodeState] = {}
        singleton_levels = self.graph.singleton_levels()
        for key in self.graph.real_keys:
            state = DSGNodeState(key=key)
            state.group_base = initial_group_base(singleton_levels[key])
            self.states[key] = state

        if self.config.use_array_lists:
            self.graph.attach_array_store()

        self._time = 0
        self.history = CommunicationHistory(total_nodes=self.graph.real_count)
        #: Local-op plan of the most recent :meth:`add_node` / :meth:`remove_node`.
        self.last_churn_ops: List[LocalOp] = []
        self.results: List[RequestResult] = []
        self._served = 0
        self._total_cost = 0
        self._total_routing_cost = 0
        #: Incremental a-balance dirty marks, fed by every recorder this
        #: instance creates; ``None`` on the reference-scan replay path and
        #: when a-balance is not maintained (nothing would ever consume the
        #: marks, so feeding them would only accumulate memory).
        self.balance_tracker: Optional[BalanceTracker] = (
            None
            if self.config.use_reference_scans or not self.config.maintain_a_balance
            else BalanceTracker()
        )
        #: Request-plan size distribution: ``len(result.ops) -> requests``.
        self._plan_size_hist: Dict[int, int] = {}
        #: Wall-clock per serving phase: routing, planning maths, bulk plan
        #: application, and churn-path a-balance repair.  "plan" is the
        #: adjustment time not spent inside bulk splices, so the four keys
        #: (plus build/overhead outside them) decompose the serving time.
        self.phase_seconds: Dict[str, float] = {
            "route": 0.0,
            "plan": 0.0,
            "apply": 0.0,
            "repair": 0.0,
        }
        # One-element accumulator threaded through every recorder: seconds
        # spent inside the skip graph's bulk entry points (the apply phase).
        self._apply_timer: List[float] = [0.0]

    # ------------------------------------------------------------------ misc
    @staticmethod
    def _check_keys(keys: Sequence[Key]) -> None:
        for key in keys:
            if isinstance(key, bool) or not isinstance(key, int) or key <= 0:
                raise ValueError(
                    "DSG requires node identifiers to be positive integers "
                    f"(priority rule P3); got {key!r}"
                )

    @property
    def time(self) -> int:
        return self._time

    @property
    def n(self) -> int:
        return self.graph.real_count

    def height(self) -> int:
        return self.graph.height()

    def state(self, key: Key) -> DSGNodeState:
        return self.states[key]

    def routing_distance(self, u: Key, v: Key) -> int:
        return route(self.graph, u, v).distance

    def are_adjacent(self, u: Key, v: Key) -> bool:
        """Whether ``u`` and ``v`` are directly linked.

        After DSG serves a request ``(u, v)`` the pair shares a linked list
        in which they are neighbours (a list of size two unless a dummy node
        had to be placed on the same side to preserve the a-balance
        property, in which case the list is slightly larger but the pair is
        still adjacent in it).
        """
        return self.graph.are_adjacent(u, v, self.graph.common_level(u, v))

    def memory_words_per_node(self) -> Dict[Key, int]:
        """Words of DSG state per node (E11 memory audit)."""
        height = self.height()
        return {key: state.memory_words(height) for key, state in self.states.items()}

    # --------------------------------------------------------------- requests
    def request(self, source: Key, destination: Key, keep_result: bool = True) -> RequestResult:
        """Serve one communication request (route, then self-adjust).

        ``keep_result=False`` serves identically but does not append the
        :class:`RequestResult` to :attr:`results` — the streaming mode the
        adapter layer (:mod:`repro.baselines.adapter`) uses so unbounded
        request streams only grow the O(1) running counters.
        """
        if source == destination:
            raise ValueError("source and destination must differ")
        if not self.graph.has_node(source) or not self.graph.has_node(destination):
            raise KeyError(f"unknown endpoint in request ({source!r}, {destination!r})")
        return self._serve(source, destination, keep_result=keep_result)

    def _serve(self, u: Key, v: Key, keep_result: bool) -> RequestResult:
        """The per-request core shared by :meth:`request` and :meth:`run_requests`.

        Endpoints are assumed validated.  The computation (routing, working
        set accounting, adjustment, RNG draws) is identical either way, which
        is what guarantees batched and sequential runs produce the same
        per-request costs on the same seed.
        """
        self._time += 1
        t = self._time

        phases = self.phase_seconds
        began = time.perf_counter()
        routing = route(self.graph, u, v)
        phases["route"] += time.perf_counter() - began
        working_set = self.history.record(u, v) if self.config.track_working_set else None

        result = RequestResult(
            time=t,
            source=u,
            destination=v,
            alpha=self.graph.common_level(u, v),
            routing=routing,
            working_set_number=working_set,
        )

        if self.config.adjust:
            apply_before = self._apply_timer[0]
            began = time.perf_counter()
            self._adjust(result, u, v, t)
            elapsed = time.perf_counter() - began
            apply_delta = self._apply_timer[0] - apply_before
            phases["apply"] += apply_delta
            phases["plan"] += elapsed - apply_delta

        result.height_after = self.height()
        self._served += 1
        self._total_cost += result.cost
        self._total_routing_cost += result.routing.distance
        if keep_result:
            self.results.append(result)
        return result

    def run_requests(
        self,
        requests: Sequence[Tuple[Key, Key]],
        keep_results: bool = True,
    ) -> BatchOutcome:
        """Serve a request batch through an amortized pipeline.

        Endpoint validation is hoisted out of the loop (one membership check
        per distinct endpoint instead of two per request) and, with
        ``keep_results=False``, the per-request :class:`RequestResult`
        objects are released as soon as their cost is extracted — the mode
        large scenario runs use so that a million-request batch does not
        accumulate result objects.  Aggregates (:meth:`total_cost`,
        :meth:`average_cost`, the working set bound) stay exact either way
        because they are maintained as running counters.

        Per-request costs are identical to a sequential :meth:`request` loop
        over the same sequence: both paths run :meth:`_serve`, the batch
        pipeline only amortizes the work around it.
        """
        pairs = list(requests)
        has_node = self.graph.has_node
        validated = set()
        for u, v in pairs:
            if u == v:
                raise ValueError("source and destination must differ")
            if u not in validated:
                if not has_node(u):
                    raise KeyError(f"unknown endpoint in request ({u!r}, {v!r})")
                validated.add(u)
            if v not in validated:
                if not has_node(v):
                    raise KeyError(f"unknown endpoint in request ({u!r}, {v!r})")
                validated.add(v)

        serve = self._serve
        costs: List[int] = []
        append_cost = costs.append
        batch_cost = 0
        batch_routing = 0
        max_routing = 0
        max_height = 0
        started = time.perf_counter()
        for u, v in pairs:
            result = serve(u, v, keep_result=keep_results)
            cost = result.cost
            append_cost(cost)
            batch_cost += cost
            routing = result.routing.distance
            batch_routing += routing
            if routing > max_routing:
                max_routing = routing
            if result.height_after > max_height:
                max_height = result.height_after
        elapsed = time.perf_counter() - started
        return BatchOutcome(
            served=len(pairs),
            costs=costs,
            total_cost=batch_cost,
            total_routing_cost=batch_routing,
            final_height=self.height(),
            max_height=max_height,
            elapsed_seconds=elapsed,
            results=self.results[-len(pairs):] if keep_results and pairs else ([] if keep_results else None),
            max_routing=max_routing,
        )

    def _adjust(self, result: RequestResult, u: Key, v: Key, t: int) -> None:
        """Steps 2-12 of Algorithm 1.

        Structurally this is a *planner* over the local-op kernel: every
        mutation flows through one :class:`~repro.core.local_ops.OpRecorder`
        (applied eagerly, recorded in order) and the request's plan is kept
        on ``result.ops``.
        """
        graph = self.graph
        recorder = OpRecorder(
            graph,
            tracker=self.balance_tracker,
            batched=self.config.use_batched_apply,
            apply_timer=self._apply_timer,
        )
        result.ops = recorder.ops
        alpha = graph.common_level(u, v)
        result.alpha = alpha
        members_all = graph.list_of(u, alpha)

        # Dummy nodes destroy themselves on receiving the notification.  A
        # dummy whose membership vector stops exactly at level ``alpha`` is
        # protecting the split of l_{alpha-1} (one level *above* the subtree
        # being rebuilt), so it stays alive; only dummies inside the rebuilt
        # subtree are destroyed (they would otherwise hold stale bits).
        doomed_dummies: List[Key] = []
        members: List[Key] = []
        for key in members_all:
            node = graph.node(key)
            if node.is_dummy:
                if len(node.membership) > alpha:
                    doomed_dummies.append(key)
            else:
                members.append(key)
        if doomed_dummies:
            recorder.remove_run(doomed_dummies)
        result.dummies_removed = len(doomed_dummies)

        height = graph.height()

        # Snapshot of the pre-transformation state (several timestamp rules
        # refer to S_t rather than S_{t+1}; vectors are immutable, so the
        # snapshot holds references instead of copies).
        old_membership = {key: graph.membership(key) for key in members}
        old_timestamps = {key: dict(self.states[key].timestamps) for key in members}
        old_group_ids_alpha = {key: self.states[key].group_id(alpha) for key in members}
        old_group_u = self.states[u].group_id(alpha)
        old_group_v = self.states[v].group_id(alpha)

        # Notification broadcast: u and v ship O(H_t) words (their vectors,
        # timestamps, group-ids and group-bases) to every node of l_alpha.
        notification_rounds = (height - alpha) + max(1, math.ceil(math.log2(max(2, len(members)))))
        result.notification_rounds = notification_rounds

        priorities = compute_priorities(self.states, members, u, v, alpha, t, height)
        merged = merge_groups_at_alpha(self.states, members, u, v, alpha)

        # The G_lower alignment is only needed when the pair's groups
        # disagreed below alpha (Appendix C); mirroring glower_update's own
        # early exits here keeps the wider-list scan off the hot path — in
        # the steady state (repeated pairs, shared group) no node ever has to
        # enumerate the wider list.
        glower_rounds = 0
        glower_participants: set = set()
        needs_glower = alpha > 0 and (
            self.states[u].group_id(alpha - 1) != self.states[v].group_id(alpha - 1)
        )
        if needs_glower:
            wide_level = min(max(self.states[u].group_base, self.states[v].group_base), alpha)
            wider_members = [
                key for key in graph.list_of(u, wide_level) if not graph.node(key).is_dummy
            ]
            glower_participants = glower_update(
                states=self.states,
                alpha_members=members,
                wider_members=wider_members,
                u=u,
                v=v,
                alpha=alpha,
            )
            if glower_participants:
                glower_rounds = height + max(1, math.ceil(math.log2(max(2, len(wider_members)))))

        # After the merge, the (large) merged group at level ``alpha`` is the
        # biggest group its members belong to, so their group-base drops to
        # ``alpha`` (definition of the group-base, Appendix C; see the
        # group-bases of the merged group in Fig. 4(c)).
        for key in merged:
            state = self.states[key]
            if state.group_base > alpha:
                state.group_base = alpha

        outcome = transform(
            graph=graph,
            states=self.states,
            members=members,
            priorities=priorities,
            u=u,
            v=v,
            alpha=alpha,
            t=t,
            a=self.config.a,
            rng=self._rng,
            use_exact_median=self.config.use_exact_median,
            maintain_a_balance=self.config.maintain_a_balance,
            recorder=recorder,
        )

        update_group_bases_after_transformation(
            states=self.states,
            members=members,
            split_levels_per_key=outcome.split_levels,
            alpha=alpha,
        )

        new_membership = {key: graph.membership(key) for key in members}
        ctx = TimestampContext(
            u=u,
            v=v,
            t=t,
            alpha=alpha,
            d_prime=outcome.d_prime,
            members=members,
            old_membership=old_membership,
            new_membership=new_membership,
            received_medians=outcome.received_medians,
            old_group_u=old_group_u,
            old_group_v=old_group_v,
            old_group_ids_alpha=old_group_ids_alpha,
            split_levels=outcome.split_levels,
            glower_participants=glower_participants,
            old_timestamps=old_timestamps,
        )
        apply_timestamp_rules(self.states, ctx)

        result.transformation_rounds = notification_rounds + glower_rounds + outcome.rounds
        result.total_work_rounds = notification_rounds + glower_rounds + outcome.total_work_rounds
        result.amf_calls = outcome.amf_calls
        result.levels_rebuilt = outcome.levels_rebuilt
        result.d_prime = outcome.d_prime
        result.dummies_added = len(outcome.dummies_added)
        plan_size = len(recorder.ops)
        self._plan_size_hist[plan_size] = self._plan_size_hist.get(plan_size, 0) + 1

    def run_sequence(self, requests: Sequence[Tuple[Key, Key]]) -> List[RequestResult]:
        """Serve every request of ``requests`` in order.

        Sequential convenience wrapper (per-request validation, results
        kept); use :meth:`run_requests` for large batches.
        """
        return [self.request(u, v) for u, v in requests]

    def replay_plan(self, graph: SkipGraph, ops: Sequence[LocalOp]) -> None:
        """Apply a recorded plan to ``graph`` under this instance's toggles.

        The replay front door for drivers and equivalence checks: honours
        ``config.use_batched_apply`` (bulk splices vs. op-by-op) and
        ``config.use_plan_compaction`` (peephole-compacted vs. original
        plan) independently, so every combination remains runnable against
        the same recorded plans.  The final topology is identical in all
        four modes (property-tested).
        """
        if self.config.use_plan_compaction:
            from repro.core.plan_opt import compact_plan

            ops = compact_plan(ops)
        if self.config.use_batched_apply:
            apply_ops_batch(graph, ops)
        else:
            apply_ops(graph, ops)

    def _churn_recorder(self) -> OpRecorder:
        """A recorder wired to this instance's tracker, batching and timer."""
        return OpRecorder(
            self.graph,
            tracker=self.balance_tracker,
            batched=self.config.use_batched_apply,
            apply_timer=self._apply_timer,
        )

    # ------------------------------------------------------------ node churn
    def add_node(self, key: Key, payload=None) -> None:
        """Add a peer with a random membership vector (Section IV-G).

        The structural effect (the join itself plus any a-balance dummies it
        forced) is recorded as a local-op plan on :attr:`last_churn_ops` —
        the same contract request plans follow (``RequestResult.ops``), and
        what the distributed protocol replays for churn events.

        Membership bits come from the indexed
        :func:`~repro.skipgraph.build.draw_membership_bits` (O(height) per
        draw) unless ``config.use_reference_scans`` selects the seed O(n)
        scan; both emit the identical bit stream for a given RNG.
        """
        self._check_keys([key])
        if self.graph.has_node(key):
            raise ValueError(f"key {key!r} already present")
        recorder = self._churn_recorder()
        draw = (
            draw_membership_bits_reference
            if self.config.use_reference_scans
            else draw_membership_bits
        )
        bits = draw(self.graph, key, self._rng)
        recorder.join(key, bits, payload=payload)
        state = DSGNodeState(key=key)
        state.group_base = initial_group_base(self.graph.singleton_level(key))
        self.states[key] = state
        self.history.total_nodes = self.graph.real_count
        if self.config.maintain_a_balance:
            began = time.perf_counter()
            self.restore_a_balance(recorder)
            self.phase_seconds["repair"] += time.perf_counter() - began
        self.last_churn_ops = recorder.ops

    def remove_node(self, key: Key) -> None:
        """Remove a peer (Section IV-G); the plan lands on :attr:`last_churn_ops`."""
        if not self.graph.has_node(key):
            raise KeyError(f"no node with key {key!r}")
        if self.graph.node(key).is_dummy:
            raise ValueError("dummy nodes are managed internally")
        recorder = self._churn_recorder()
        recorder.leave(key)
        self.states.pop(key, None)
        self.history.total_nodes = self.graph.real_count
        if self.config.maintain_a_balance:
            began = time.perf_counter()
            self.restore_a_balance(recorder)
            self.phase_seconds["repair"] += time.perf_counter() - began
        self.last_churn_ops = recorder.ops

    def restore_a_balance(self, recorder: Optional[OpRecorder] = None) -> int:
        """Insert dummy nodes until no a-balance violation remains.

        Returns the number of dummies inserted.  Used after node addition or
        removal (Section IV-G); per-transformation maintenance happens inside
        :func:`repro.core.transformation.transform`.  Each insertion is
        emitted through ``recorder`` (one over :attr:`graph` is created when
        not supplied), so callers chaining a churn plan capture the fix-ups.

        Every violation reported by one scan is repaired before rescanning:
        the runs of a scan are disjoint, so their repairs are independent,
        and a dummy can only create *new* runs in ancestor lists — which the
        next scan round picks up.  This keeps the number of scan rounds
        proportional to the cascade depth instead of the dummy count.

        Each round's violations come from :attr:`balance_tracker` — only
        the lists dirtied since the last consumption are rescanned, in the
        full-rescan order, so repairs (and their RNG draws) are identical
        to the ``use_reference_scans`` path, which rescans the whole graph
        every round.  A violation whose dummy key could not be placed has
        its list re-marked whole, so the next churn event retries it
        exactly like a full rescan would.  A caller-supplied ``recorder``
        that does not carry :attr:`balance_tracker` forces this call onto
        full rescans (its ops never produced dirty marks) and invalidates
        the tracker for the calls that follow.
        """
        tracker = self.balance_tracker
        if recorder is None:
            recorder = self._churn_recorder()
        elif tracker is not None and recorder.tracker is not tracker:
            # A caller-supplied recorder bypassed this instance's tracker, so
            # the dirty marks cannot be trusted to cover the caller's ops:
            # run this call on full rescans (the pre-tracker contract) and
            # invalidate the tracker so later incremental calls start fresh.
            tracker.mark_all()
            tracker = None
        inserted = 0
        for _ in range(2 * len(self.graph) + 1):
            if tracker is None:
                violations = a_balance_violations(self.graph, self.config.a)
            else:
                violations = tracker.violations(self.graph, self.config.a)
            if not violations:
                break
            # One round's repairs are independent (the runs are disjoint),
            # so the placements are computed first — with the key draws
            # rejecting keys claimed earlier in the round, exactly as the
            # ``has_node`` probe would after an immediate insertion — and
            # landed as one batch.
            pending: List[Tuple[Key, Tuple[int, ...]]] = []
            claimed: set = set()
            for violation in violations:
                run = violation.run_keys
                lower, upper = run[self.config.a - 1], run[self.config.a]
                dummy_key = self._dummy_key_between(lower, upper, claimed)
                if dummy_key is None:
                    if tracker is not None:
                        tracker.mark_list(violation.level, violation.prefix)
                    continue
                prefix = self.graph.membership(lower).prefix(violation.level)
                pending.append((dummy_key, prefix.bits + (1 - violation.bit,)))
                claimed.add(dummy_key)
            recorder.insert_dummy_run(pending)
            inserted += len(pending)
            if not pending:
                break
        return inserted

    def _dummy_key_between(self, lower: Key, upper: Key, claimed: frozenset = frozenset()) -> Optional[Key]:
        try:
            low, high = float(lower), float(upper)
        except (TypeError, ValueError):
            return None
        if not low < high:
            return None
        for _ in range(16):
            candidate = low + (high - low) * (0.25 + 0.5 * self._rng.random())
            if (
                candidate not in (low, high)
                and candidate not in claimed
                and not self.graph.has_node(candidate)
            ):
                return candidate
        return None

    # --------------------------------------------------------------- analysis
    def requests_served(self) -> int:
        """Number of requests served so far (kept or not)."""
        return self._served

    def total_cost(self) -> int:
        """Sum of per-request costs (Equation 1 numerator).

        Maintained as a running counter so it covers every request served —
        including batches run with ``keep_results=False`` — at O(1) cost.
        """
        return self._total_cost

    def average_cost(self) -> float:
        """Average cost per request served so far (Equation 1)."""
        if not self._served:
            return 0.0
        return self._total_cost / self._served

    def total_routing_cost(self) -> int:
        return self._total_routing_cost

    def working_set_bound(self) -> float:
        """``WS(σ)`` of the sequence served so far (Theorem 1 lower bound)."""
        return self.history.working_set_bound()

    def dummy_count(self) -> int:
        return self.graph.dummy_node_count

    def plan_size_histogram(self) -> Dict[int, int]:
        """Distribution of request-plan sizes: ``len(ops) -> request count``.

        Maintained as an O(1)-per-request running histogram (it survives
        ``keep_results=False`` batches), so the artifact pipeline can report
        per-workload plan-size percentiles — the empirical face of the
        paper's locality claim (most requests emit tiny plans).
        """
        return dict(self._plan_size_hist)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicSkipGraph(n={self.n}, height={self.height()}, "
            f"requests={len(self.results)}, a={self.config.a})"
        )
