"""Peephole compaction of recorded op plans.

A transformation plan talks about each key several times: the member is
demoted to the split point, then promoted once per level as the subtree
splits back down; a dummy inserted at one level may be destroyed by the next
request's plan prefix.  :func:`compact_plan` rewrites a recorded plan into a
shorter one with the *same final topology*:

* a run of promotes of one key at consecutive levels coalesces into a single
  multi-bit :class:`~repro.core.local_ops.ExtendOp`;
* a promote/demote pair on the same key cancels into the surviving
  truncation (the demote cuts the promoted bit off again);
* a dummy insert/remove pair on the same key annihilates, and membership
  rewrites of a key the same plan created fold into the creation bits.

Compaction is **graph-free** and purely per key: local ops are per-key
self-contained (applying one never reads another node's state), so the final
membership map — and with it every derived level list — is invariant under
regrouping ops by key.  Within one key the composition laws are applied only
where they hold for *every* starting vector; a per-key sequence that leaves
the representable family (the planners never do) is emitted verbatim, which
makes the compactor conservative rather than wrong.

The pass rewrites *execution* only.  Cost accounting (Equation 1) is always
charged for the original plan — the planners never see compacted ops — and
the a-balance dirty marks of annihilated ops are legitimately not emitted,
so compacted plans are for consumers that need the end state: the batched
applier (:func:`repro.core.local_ops.apply_ops_batch` with ``compact=True``)
and replay-style drivers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.local_ops import (
    DemoteOp,
    DummyInsertOp,
    DummyRemoveOp,
    ExtendOp,
    LocalOp,
    NodeJoinOp,
    NodeLeaveOp,
    PromoteOp,
)

__all__ = ["compact_plan"]

Bits = Tuple[int, ...]

# Per-key composition states.
_REWRITE = 0  # pre-existing key, composed (demote cut, extend window)
_INSERT = 1  # created by this plan (full vector known)
_REMOVE = 2  # pre-existing key removed
_REMOVE_INSERT = 3  # removed, then re-created under the same key
_GONE = 4  # created and destroyed by this plan (nets to nothing)
_RAW = 5  # unrepresentable composition: emit the original ops verbatim


def _fold_bits(bits: Bits, level: int, extra: Bits) -> Bits:
    """``with_bit(level + i, extra[i])`` folded over a fully known vector."""
    start = level - 1
    if len(bits) <= start:
        return bits + (0,) * (start - len(bits)) + extra
    return bits[:start] + extra + bits[start + len(extra):]


class _KeyState:
    """Composition state of every op one key sees, in plan order."""

    __slots__ = ("kind", "history", "demote", "start", "bits", "insert_op", "remove_op")

    def __init__(self) -> None:
        self.kind = _REWRITE
        self.history: List[LocalOp] = []  # originals, for the verbatim fallback
        # _REWRITE composition: optional cut at ``demote`` followed by the
        # bits assigned for levels ``start .. start + len(bits) - 1``.
        self.demote = None
        self.start = None
        self.bits: List[int] = []
        self.insert_op = None  # DummyInsertOp/NodeJoinOp template (kind word)
        self.remove_op = None  # the original removal op

    # ------------------------------------------------------------ transitions
    def _raw(self) -> None:
        self.kind = _RAW

    def feed(self, op: LocalOp) -> None:
        self.history.append(op)
        if self.kind == _RAW:
            return
        op_type = type(op)
        if op_type is PromoteOp:
            self._feed_bit_run(op.level, (op.bit,))
        elif op_type is ExtendOp:
            self._feed_bit_run(op.level, op.bits)
        elif op_type is DemoteOp:
            self._feed_demote(op.length)
        elif op_type in (DummyInsertOp, NodeJoinOp):
            self._feed_insert(op)
        elif op_type in (DummyRemoveOp, NodeLeaveOp):
            self._feed_remove(op)
        else:
            self._raw()

    def _feed_bit_run(self, level: int, extra: Bits) -> None:
        kind = self.kind
        if kind in (_INSERT, _REMOVE_INSERT):
            self.insert_op = self.insert_op._replace(
                bits=_fold_bits(self.insert_op.bits, level, extra)
            )
            return
        if kind != _REWRITE:
            self._raw()  # a rewrite of a key this plan removed: invalid plan
            return
        if self.start is None:
            self.start = level
            self.bits = list(extra)
            return
        position = level - self.start
        if position < 0:
            # Touches bits below the window whose values are unknown.
            self._raw()
            return
        window = self.bits
        if position > len(window):
            if self.demote is None:
                # Unanchored: the padding would clobber an unknown tail.
                self._raw()
                return
            window.extend([0] * (position - len(window)))
        window[position : position + len(extra)] = extra

    def _feed_demote(self, length: int) -> None:
        kind = self.kind
        if kind in (_INSERT, _REMOVE_INSERT):
            bits = self.insert_op.bits
            if len(bits) > length:
                self.insert_op = self.insert_op._replace(bits=bits[:length])
            return
        if kind != _REWRITE:
            self._raw()
            return
        if self.start is None:
            self.demote = length
            self.start = length + 1
            return
        window_start = self.start - 1
        if length >= window_start + len(self.bits):
            # At or past the end of the window.  Anchored compositions have
            # a known (or bounded) length <= that end, so the cut is a no-op
            # and drops; an unanchored window may hide a longer tail the cut
            # would truncate.
            if self.demote is None:
                self._raw()
            return
        if length > window_start:
            del self.bits[length - window_start :]
            return
        if length <= window_start and self.demote is not None and not self.bits:
            # Pure deepening of the cut: x[:demote][:length] == x[:length].
            self.demote = length
            self.start = length + 1
            return
        # Cutting into/below a window that materialised padding zeros whose
        # extent depends on the unknown original length.
        self._raw()

    def _feed_insert(self, op: LocalOp) -> None:
        kind = self.kind
        if kind == _REWRITE and self.start is None and self.demote is None:
            self.kind = _INSERT
            self.insert_op = op
        elif kind == _GONE:
            self.kind = _INSERT
            self.insert_op = op
        elif kind == _REMOVE:
            self.kind = _REMOVE_INSERT
            self.insert_op = op
        else:
            self._raw()  # duplicate insertion or insert-after-rewrite: invalid

    def _feed_remove(self, op: LocalOp) -> None:
        kind = self.kind
        if kind == _INSERT:
            self.kind = _GONE  # created and destroyed: annihilates
            self.insert_op = None
        elif kind == _REMOVE_INSERT:
            self.kind = _REMOVE  # the re-creation annihilates, removal stays
            self.insert_op = None
        elif kind == _REWRITE:
            # Rewrites of a key that then departs are invisible in the final
            # topology; only the removal survives.
            self.kind = _REMOVE
            self.remove_op = op
        else:
            self._raw()

    # -------------------------------------------------------------- emission
    def emit(self, key) -> List[LocalOp]:
        kind = self.kind
        if kind == _RAW:
            return self.history
        if kind == _GONE:
            return []
        if kind == _INSERT:
            return [self.insert_op]
        if kind == _REMOVE:
            return [self.remove_op]
        if kind == _REMOVE_INSERT:
            return [self.remove_op, self.insert_op]
        ops: List[LocalOp] = []
        if self.demote is not None:
            ops.append(DemoteOp(key, self.demote))
        bits = self.bits
        if len(bits) == 1:
            ops.append(PromoteOp(key, self.start, bits[0]))
        elif bits:
            ops.append(ExtendOp(key, self.start, tuple(bits)))
        return ops


def compact_plan(ops: Sequence[LocalOp]) -> List[LocalOp]:
    """Rewrite ``ops`` into a shorter plan with the same final topology.

    Assumes ``ops`` is valid for the graph it will be applied to (recorded
    plans are by construction).  Each key's ops are composed independently
    and emitted at the key's first appearance, so relative cross-key order
    is preserved where it existed; per-key sequences outside the
    representable family are passed through verbatim.  Property-tested:
    applying the compacted plan to a copy of the pre-plan graph yields the
    same membership table, dummy population and derived lists as the
    original plan.
    """
    states: Dict[object, _KeyState] = {}
    order: List[object] = []
    for op in ops:
        key = op.key
        state = states.get(key)
        if state is None:
            state = _KeyState()
            states[key] = state
            order.append(key)
        state.feed(op)
    compacted: List[LocalOp] = []
    for key in order:
        compacted.extend(states[key].emit(key))
    return compacted
