"""Timestamp rules T1-T6 (paper, Section IV-E).

Timestamps encode how recently a node last "confirmed" its attachment to the
group it belongs to at each level; DSG uses them both to compute priorities
(P2/P3) and to decide, during later transformations, which nodes may be
separated without violating the working set property.

The rules are applied once per request, *after* the structural
transformation, in the order T1 .. T6.  They need a fairly rich view of what
the transformation did, bundled in :class:`TimestampContext`:

* the membership vectors before (``S_t``) and after (``S_{t+1}``) the
  transformation,
* the approximate median received by each node at each level,
* which (old) groups were split, and at which levels, for each node,
* which nodes initialized or received ``G_lower`` (Appendix C),
* the snapshot of all timestamps before the request (several rules refer to
  the *old* values).

Two definitional ambiguities in the paper are resolved as follows and noted
in DESIGN.md: the "longest common postfix" of two membership vectors is
interpreted as the longest common *prefix* (the quantity that determines the
highest shared linked list, which is what the surrounding text uses it for),
and rule T1's downward loop runs to ``min(B_u, B_v)`` (rule T6 zeroes
anything below the group-base afterwards, so this choice is conservative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Mapping, Sequence, Set

from repro.core.state import DSGNodeState
from repro.skipgraph.membership import MembershipVector, common_prefix_length

__all__ = ["TimestampContext", "apply_timestamp_rules"]

Key = Hashable


@dataclass
class TimestampContext:
    """Everything the timestamp rules need to know about one request."""

    u: Key
    v: Key
    t: int
    alpha: int
    #: Level at which ``u`` and ``v`` form a linked list of size two.
    d_prime: int
    #: Members of ``l_alpha`` (the nodes involved in the transformation).
    members: Sequence[Key]
    #: Membership vectors before the transformation (``S_t``).
    old_membership: Mapping[Key, MembershipVector]
    #: Membership vectors after the transformation (``S_{t+1}``).
    new_membership: Mapping[Key, MembershipVector]
    #: ``received_medians[x][d]`` = approximate median received by ``x``
    #: while its level-``d`` list was being split.
    received_medians: Mapping[Key, Mapping[int, float]]
    #: Old group-ids at level ``alpha`` (before the merge), for rule T3.
    old_group_u: Key = None
    old_group_v: Key = None
    old_group_ids_alpha: Mapping[Key, Key] = field(default_factory=dict)
    #: ``split_levels[x]`` = levels at which ``x``'s group was split.
    split_levels: Mapping[Key, List[int]] = field(default_factory=dict)
    #: Nodes that initialized or received ``G_lower`` (rule T4).
    glower_participants: Set[Key] = field(default_factory=set)
    #: Snapshot of every member's timestamps taken before the request.
    old_timestamps: Mapping[Key, Mapping[int, int]] = field(default_factory=dict)


def apply_timestamp_rules(states: Mapping[Key, DSGNodeState], ctx: TimestampContext) -> None:
    """Apply rules T1-T6 in order, mutating ``states`` in place."""
    _rule_t1(states, ctx)
    _rule_t2(states, ctx)
    _rule_t3(states, ctx)
    _rule_t4(states, ctx)
    _rule_t5(states, ctx)
    _rule_t6(states, ctx)


def _old_timestamp(ctx: TimestampContext, key: Key, level: int) -> int:
    return ctx.old_timestamps.get(key, {}).get(level, 0)


def _rule_t1(states: Mapping[Key, DSGNodeState], ctx: TimestampContext) -> None:
    """T1: stamp the communicating pair with the current time."""
    state_u, state_v = states[ctx.u], states[ctx.v]
    for state in (state_u, state_v):
        state.set_timestamp(ctx.d_prime, ctx.t)
        state.set_timestamp(ctx.d_prime + 1, ctx.t)
    floor_level = min(state_u.group_base, state_v.group_base)
    for level in range(ctx.d_prime - 1, floor_level - 1, -1):
        merged = max(_old_timestamp(ctx, ctx.u, level), _old_timestamp(ctx, ctx.v, level))
        state_u.set_timestamp(level, merged)
        state_v.set_timestamp(level, merged)


def _nearest_communicating_node(ctx: TimestampContext, key: Key) -> Key:
    """The communicating node (u or v) closest to ``key`` in ``S_t``."""
    membership = ctx.old_membership[key]
    lcp_u = common_prefix_length(membership, ctx.old_membership[ctx.u])
    lcp_v = common_prefix_length(membership, ctx.old_membership[ctx.v])
    return ctx.u if lcp_u >= lcp_v else ctx.v


def _rule_t2(states: Mapping[Key, DSGNodeState], ctx: TimestampContext) -> None:
    """T2: refresh timestamps of nodes that stay in the merged group."""
    uid_u = states[ctx.u].uid
    for key in ctx.members:
        if key in (ctx.u, ctx.v):
            continue
        state = states[key]
        nearest = _nearest_communicating_node(ctx, key)
        c_prime = common_prefix_length(ctx.old_membership[key], ctx.old_membership[nearest])
        medians = ctx.received_medians.get(key, {})
        for level in sorted(medians):
            if level < ctx.alpha:
                continue
            if state.group_ids.get(level, state.uid) != uid_u:
                continue
            median = medians[level]
            if median == float("inf"):
                # The split was decided by the communicating pair's infinite
                # priority alone; the relevant "time" for rule T2 is then the
                # request's own timestamp.
                median = ctx.t
            chosen = None
            for c in range(ctx.alpha, max(ctx.alpha, c_prime)):
                if _old_timestamp(ctx, key, c) > median:
                    chosen = _old_timestamp(ctx, key, c)
                    break
            state.set_timestamp(level + 1, int(chosen if chosen is not None else max(median, 0)))


def _rule_t3(states: Mapping[Key, DSGNodeState], ctx: TimestampContext) -> None:
    """T3: nodes separated from the pair inherit the timestamp of the old depth."""
    for key in ctx.members:
        if key in (ctx.u, ctx.v):
            continue
        old_group = ctx.old_group_ids_alpha.get(key)
        for endpoint, endpoint_group in ((ctx.u, ctx.old_group_u), (ctx.v, ctx.old_group_v)):
            if old_group != endpoint_group:
                continue
            c_prime = common_prefix_length(ctx.old_membership[key], ctx.old_membership[endpoint])
            c_double = common_prefix_length(ctx.new_membership[key], ctx.new_membership[endpoint])
            if c_prime - 1 > c_double + 1:
                state = states[key]
                anchor = state.timestamp(c_prime)
                for level in range(c_double + 1, c_prime):
                    state.set_timestamp(level, anchor)


def _rule_t4(states: Mapping[Key, DSGNodeState], ctx: TimestampContext) -> None:
    """T4: nodes touched by the G_lower update clear stale low-level stamps."""
    for key in ctx.glower_participants:
        if key not in states:
            continue
        state = states[key]
        lowest_zero = None
        for level in range(0, ctx.d_prime + 2):
            if state.timestamp(level + 1) == 0:
                lowest_zero = level
                break
        if lowest_zero is None or lowest_zero <= state.group_base:
            continue
        fill = state.timestamp(lowest_zero + 1)
        for level in range(state.group_base, lowest_zero + 1):
            state.set_timestamp(level, fill)


def _rule_t5(states: Mapping[Key, DSGNodeState], ctx: TimestampContext) -> None:
    """T5: members of a split group backfill a zero timestamp one level down."""
    for key in ctx.members:
        state = states[key]
        for level in sorted(ctx.split_levels.get(key, [])):
            if level < ctx.alpha or level < 1:
                continue
            if state.timestamp(level - 1) == 0:
                state.set_timestamp(level - 1, state.timestamp(level))


def _rule_t6(states: Mapping[Key, DSGNodeState], ctx: TimestampContext) -> None:
    """T6: zero every timestamp below the node's group-base."""
    for key in ctx.members:
        state = states[key]
        for level in range(0, state.group_base):
            if state.timestamp(level) != 0:
                state.set_timestamp(level, 0)
