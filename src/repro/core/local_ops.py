"""The local-operation kernel for DSG restructuring.

The paper's central locality claim is that every restructure a request (or a
churn event) triggers is a *bounded-neighbourhood* operation: a node flips or
forgets membership bits of its own vector, splices itself into (or out of) a
level list next to nodes it already knows, or creates/destroys a dummy
neighbour.  This module makes that vocabulary first class:

* :class:`PromoteOp` — assign the membership bit selecting the sublist at
  ``level`` (in the transformation this is always an *append*: the node
  descends one level and splices into the 0- or 1-sublist);
* :class:`DemoteOp` — truncate the membership vector to ``length`` bits (the
  node leaves every list deeper than ``length``; the lists it leaves close up
  over it);
* :class:`DummyInsertOp` / :class:`DummyRemoveOp` — create or destroy a dummy
  node (a-balance maintenance, Section IV-F; dummies destroy themselves when
  a transformation notification reaches them);
* :class:`NodeJoinOp` / :class:`NodeLeaveOp` — peer churn (Section IV-G).

Every structural mutation of the repository flows through this vocabulary:

* the **centralized hot path** plans and applies in one pass — the planners
  (:meth:`repro.core.dsg.DynamicSkipGraph._adjust`,
  :func:`repro.core.transformation.transform`,
  :meth:`repro.core.dsg.DynamicSkipGraph.restore_a_balance`) drive an
  :class:`OpRecorder`, which applies each op to the
  :class:`~repro.skipgraph.skipgraph.SkipGraph` *as it is emitted* (the
  planning maths reads the graph mid-plan, so application must be eager) and
  keeps the emitted sequence as the plan;
* :func:`apply_ops` **replays** a recorded plan onto another graph — the
  applier the property tests use to prove a plan is self-contained
  (replaying ``result.ops`` on a copy of ``S_t`` reproduces ``S_{t+1}``)
  and the distributed protocol
  (:mod:`repro.distributed.dsg_protocol`) executes op by op;
* the simulation bridge (:func:`repro.workloads.scenarios.apply_local_op`)
  turns each op into per-level link rewiring of a live CONGEST network.

Ops are plain tuples of ``O(1)`` words — a key, a level, a bit, or a short
bit string — so a single op always fits in an ``O(log n)``-bit CONGEST
message; :func:`op_to_payload` / :func:`op_from_payload` define that wire
format and :func:`op_anchor` names the node that executes the op (for a
dummy insertion, the dummy's base-list predecessor — the neighbour that
creates it; every other op is executed by the node it names).
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import TYPE_CHECKING, Hashable, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.skipgraph.membership import MembershipVector, common_prefix_length
from repro.skipgraph.node import SkipGraphNode
from repro.skipgraph.skipgraph import SkipGraph

if TYPE_CHECKING:  # import-free at runtime: balance.py must stay core-agnostic
    from repro.skipgraph.balance import BalanceTracker

__all__ = [
    "DemoteOp",
    "DummyInsertOp",
    "DummyRemoveOp",
    "ExtendOp",
    "LocalOp",
    "NodeJoinOp",
    "NodeLeaveOp",
    "OpRecorder",
    "PromoteOp",
    "apply_op",
    "apply_op_touched",
    "apply_ops",
    "apply_ops_batch",
    "apply_ops_touched",
    "op_anchor",
    "op_from_payload",
    "op_to_payload",
    "stale_op_keys",
]

Key = Hashable
Bits = Tuple[int, ...]


class PromoteOp(NamedTuple):
    """Assign the membership bit selecting the sublist at ``level`` (>= 1)."""

    key: Key
    level: int
    bit: int


class DemoteOp(NamedTuple):
    """Truncate the membership vector to ``length`` bits."""

    key: Key
    length: int


class DummyInsertOp(NamedTuple):
    """Create the dummy node ``key`` with membership ``bits``."""

    key: Key
    bits: Bits


class DummyRemoveOp(NamedTuple):
    """Destroy the dummy node ``key``."""

    key: Key


class NodeJoinOp(NamedTuple):
    """A peer with ``key`` joins with membership ``bits`` (Section IV-G)."""

    key: Key
    bits: Bits


class NodeLeaveOp(NamedTuple):
    """The peer with ``key`` departs (Section IV-G)."""

    key: Key


class ExtendOp(NamedTuple):
    """Assign the bits for levels ``level .. level + len(bits) - 1`` at once.

    Exactly the fold of ``PromoteOp(key, level + i, bits[i])`` over ``i`` —
    the multi-bit extension the peephole compactor
    (:func:`repro.core.plan_opt.compact_plan`) coalesces a run of
    consecutive promotes into.  Still O(1) words on the wire: a level plus
    one packed ``O(log n)``-bit string.
    """

    key: Key
    level: int
    bits: Bits


LocalOp = Union[
    PromoteOp, DemoteOp, DummyInsertOp, DummyRemoveOp, NodeJoinOp, NodeLeaveOp, ExtendOp
]


def _extend_vector(old: MembershipVector, level: int, bits: Bits) -> MembershipVector:
    """Fold ``with_bit(level + i, bits[i])`` computed as one splice."""
    old_bits = old.bits
    start = level - 1
    if len(old_bits) <= start:
        new_bits = old_bits + (0,) * (start - len(old_bits)) + bits
    else:
        new_bits = old_bits[:start] + bits + old_bits[start + len(bits):]
    return MembershipVector._from_trusted(new_bits)


# ------------------------------------------------------------------ applier
def apply_op(graph: SkipGraph, op: LocalOp, tracker: Optional["BalanceTracker"] = None) -> None:
    """Apply one local op to ``graph`` (caches are patched incrementally).

    The semantics intentionally mirror what the planners do inline through
    :class:`OpRecorder`, so replaying a recorded sequence on a copy of the
    pre-plan graph reproduces the post-plan graph exactly.

    ``tracker`` (a :class:`~repro.skipgraph.balance.BalanceTracker`) is
    notified *before* the mutation — the dirty marks for a departure need
    the pre-departure membership vector — which is how the incremental
    a-balance machinery on the churn path learns which lists an op touched.
    """
    if type(op) is PromoteOp:
        old = graph.membership(op.key)
        new = old.with_bit(op.level, op.bit)
        if tracker is not None:
            tracker.mark_rewrite(op.key, old.bits, new.bits)
        graph.set_membership(op.key, new)
    elif type(op) is DemoteOp:
        membership = graph.membership(op.key)
        if len(membership) > op.length:
            if tracker is not None:
                tracker.mark_rewrite(op.key, membership.bits, membership.bits[: op.length])
            graph.set_membership(op.key, membership.truncated(op.length))
    elif type(op) is ExtendOp:
        old = graph.membership(op.key)
        new = _extend_vector(old, op.level, op.bits)
        if tracker is not None:
            tracker.mark_rewrite(op.key, old.bits, new.bits)
        graph.set_membership(op.key, new)
    elif type(op) is DummyInsertOp:
        if tracker is not None:
            tracker.mark_insert(op.key, op.bits)
        graph.add_node(
            SkipGraphNode(key=op.key, membership=MembershipVector(op.bits), is_dummy=True)
        )
    elif type(op) is NodeJoinOp:
        if tracker is not None:
            tracker.mark_insert(op.key, op.bits)
        graph.add_node(SkipGraphNode(key=op.key, membership=MembershipVector(op.bits)))
    elif type(op) is DummyRemoveOp or type(op) is NodeLeaveOp:
        if tracker is not None:
            tracker.mark_remove(graph, op.key)
        graph.remove_node(op.key)
    else:
        raise TypeError(f"unknown local op {op!r}")


def apply_ops(graph: SkipGraph, ops: Sequence[LocalOp]) -> None:
    """Replay a recorded op sequence onto ``graph``, in order.

    Order matters: a demote must run before the promotes that re-grow the
    vector, and a dummy insertion may name neighbours that a previous op put
    in place.
    """
    for op in ops:
        apply_op(graph, op)


def apply_ops_batch(
    graph: SkipGraph,
    ops: Sequence[LocalOp],
    tracker: Optional["BalanceTracker"] = None,
    compact: bool = False,
) -> None:
    """Replay a recorded plan with bulk structure updates.

    End state (graph *and* tracker dirty marks) identical to
    :func:`apply_ops` with the same tracker, but maximal consecutive runs of
    same-shape ops — promotes sharing ``(level, bit)``, demotes sharing a
    cut length, dummy removals — go through the skip graph's bulk entry
    points (one list splice and one prefix-index pass per run) instead of
    op-by-op cache invalidation.  The ops inside such a run all target
    distinct keys of one split level, so they commute and the grouped
    application is order-equivalent.  Anything that does not form a run
    falls back to :func:`apply_op`, keeping the batched applier exactly as
    general as the sequential one.

    With ``compact=True`` the plan is first rewritten by
    :func:`repro.core.plan_opt.compact_plan`; the final topology is
    preserved but dirty marks of compacted-away ops are legitimately not
    emitted, so compaction is only for consumers that need the end state.
    """
    if compact:
        from repro.core.plan_opt import compact_plan

        ops = compact_plan(ops)
    total = len(ops)
    index = 0
    while index < total:
        op = ops[index]
        op_type = type(op)
        if op_type is PromoteOp:
            level = op.level
            bit = op.bit
            previous = op.key
            end = index + 1
            while end < total:
                candidate = ops[end]
                if (
                    type(candidate) is not PromoteOp
                    or candidate.level != level
                    or candidate.bit != bit
                    or not previous < candidate.key
                ):
                    break
                previous = candidate.key
                end += 1
            if end - index > 1:
                keys = [ops[position].key for position in range(index, end)]
                if graph.promote_run(keys, level, bit, tracker=tracker):
                    index = end
                    continue
        elif op_type is DemoteOp:
            length = op.length
            previous = op.key
            end = index + 1
            while end < total:
                candidate = ops[end]
                if (
                    type(candidate) is not DemoteOp
                    or candidate.length != length
                    or not previous < candidate.key
                ):
                    break
                previous = candidate.key
                end += 1
            if end - index > 1:
                keys = [ops[position].key for position in range(index, end)]
                if graph.demote_run(keys, length, tracker=tracker):
                    index = end
                    continue
        elif op_type is DummyRemoveOp:
            previous = op.key
            end = index + 1
            while end < total:
                candidate = ops[end]
                if type(candidate) is not DummyRemoveOp or not previous < candidate.key:
                    break
                previous = candidate.key
                end += 1
            if end - index > 1:
                keys = [ops[position].key for position in range(index, end)]
                graph.remove_run(keys, tracker=tracker)
                index = end
                continue
        apply_op(graph, op, tracker)
        index += 1


# ------------------------------------------------------------- target sets
def apply_op_touched(graph: SkipGraph, op: LocalOp) -> set:
    """Apply one op and return the keys whose links it rewires.

    The returned set is the op's *bounded neighbourhood* — the same set
    :func:`repro.distributed.routing_protocol.patch_network` reports as
    affected when it rewires a live network for the op (property-tested
    equal): the op's own key plus every list neighbour spliced against or
    closed over, at every level the op reaches.  Because the splice flanks
    of an insertion only exist after the node lands in its lists, the op is
    applied as part of the extraction; drivers that need the touched region
    of a plan *before* executing it on the real structure replay the plan
    against a shadow copy of the pre-plan graph (the pipelined scheduler's
    conflict detector does exactly that).
    """
    touched: set = set()
    _apply_op_touched_into(graph, op, touched)
    return touched


def _apply_op_touched_into(graph: SkipGraph, op: LocalOp, touched: set) -> None:
    """Apply ``op`` and add its touched keys to the shared ``touched`` set."""
    touched.add(op.key)
    if type(op) in (DummyInsertOp, NodeJoinOp):
        apply_op(graph, op)
        for level in range(len(op.bits) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
    elif type(op) in (DummyRemoveOp, NodeLeaveOp):
        for level in range(len(graph.membership(op.key)) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
        apply_op(graph, op)
    elif type(op) in (PromoteOp, DemoteOp, ExtendOp):
        old = graph.membership(op.key)
        if type(op) is PromoteOp:
            new = old.with_bit(op.level, op.bit)
        elif type(op) is DemoteOp:
            new = old.truncated(op.length)
        else:
            new = _extend_vector(old, op.level, op.bits)
        keep = common_prefix_length(old, new)
        for level in range(keep + 1, len(old) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
        apply_op(graph, op)
        for level in range(keep + 1, len(new) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
    else:
        raise TypeError(f"unknown local op {op!r}")


def apply_ops_touched(graph: SkipGraph, ops: Sequence[LocalOp]) -> set:
    """Replay a plan onto ``graph`` and return the union of touched keys.

    The bulk form of :func:`apply_op_touched` — the write-set extractor the
    pipelined distributed driver feeds its conflict detector with.  One
    shared accumulator collects every op's neighbourhood directly; the
    per-op set materialisation and union this replaces showed up on level-0
    transformations, whose plans run to ``n * height`` ops.
    """
    touched: set = set()
    for op in ops:
        _apply_op_touched_into(graph, op, touched)
    return touched


# ----------------------------------------------------------------- recorder
class OpRecorder:
    """Applies local ops to a graph eagerly while recording the sequence.

    The planners interleave planning reads with structural writes (the next
    split reads the lists the previous split produced), so the centralized
    path cannot plan first and apply later; instead every write goes through
    this recorder, which both mutates the graph and appends the op to
    :attr:`ops` — making "the plan" a byproduct of the existing computation
    at O(1) extra work per mutation, with cost accounting untouched.

    An attached ``tracker`` (see :func:`apply_op`) receives every op before
    it lands, feeding the incremental a-balance dirty marks; the DSG front
    end threads its per-instance tracker through every recorder it creates.

    The ``*_run`` bulk methods record exactly the per-key op sequence the
    singular methods would, so the plan (and therefore the cost accounting
    and the wire traffic) is byte-identical either way; with ``batched``
    recorders the *application* goes through the skip graph's bulk entry
    points — one list splice per run instead of one cache invalidation per
    op — falling back to per-op application whenever a bulk precondition
    fails.  ``apply_timer``, when given, is a one-element list accumulating
    the seconds spent inside bulk splices (the adapter's "apply" phase).
    """

    __slots__ = ("graph", "ops", "tracker", "batched", "apply_timer")

    def __init__(
        self,
        graph: SkipGraph,
        ops: Optional[List[LocalOp]] = None,
        tracker: Optional["BalanceTracker"] = None,
        batched: bool = False,
        apply_timer: Optional[List[float]] = None,
    ) -> None:
        self.graph = graph
        self.ops: List[LocalOp] = ops if ops is not None else []
        self.tracker = tracker
        self.batched = batched
        self.apply_timer = apply_timer

    def _record(self, op: LocalOp) -> None:
        apply_op(self.graph, op, self.tracker)
        self.ops.append(op)

    def promote(self, key: Key, level: int, bit: int) -> None:
        self._record(PromoteOp(key, level, bit))

    def demote(self, key: Key, length: int) -> None:
        if len(self.graph.membership(key)) > length:
            self._record(DemoteOp(key, length))

    def promote_run(self, keys: Sequence[Key], level: int, bit: int) -> None:
        """Promote every key of ``keys`` (one split sublist) to ``level``."""
        if self.batched and len(keys) > 1:
            began = perf_counter()
            landed = self.graph.promote_run(keys, level, bit, tracker=self.tracker)
            if self.apply_timer is not None:
                self.apply_timer[0] += perf_counter() - began
            if landed:
                self.ops.extend(PromoteOp(key, level, bit) for key in keys)
                return
        for key in keys:
            self._record(PromoteOp(key, level, bit))

    def demote_run(self, keys: Sequence[Key], length: int) -> None:
        """Truncate every key of ``keys`` (one subtree's members) to ``length``."""
        membership = self.graph.membership
        eligible = [key for key in keys if len(membership(key)) > length]
        if self.batched and len(eligible) > 1:
            began = perf_counter()
            landed = self.graph.demote_run(eligible, length, tracker=self.tracker)
            if self.apply_timer is not None:
                self.apply_timer[0] += perf_counter() - began
            if landed:
                self.ops.extend(DemoteOp(key, length) for key in eligible)
                return
        for key in eligible:
            self._record(DemoteOp(key, length))

    def remove_run(self, keys: Sequence[Key]) -> None:
        """Destroy every dummy in ``keys`` (ascending) in one bulk removal."""
        if self.batched and len(keys) > 1:
            began = perf_counter()
            self.graph.remove_run(keys, tracker=self.tracker)
            if self.apply_timer is not None:
                self.apply_timer[0] += perf_counter() - began
            self.ops.extend(DummyRemoveOp(key) for key in keys)
            return
        for key in keys:
            self._record(DummyRemoveOp(key))

    def insert_dummy(self, key: Key, bits: Bits) -> None:
        self._record(DummyInsertOp(key, tuple(bits)))

    def insert_dummy_run(self, entries: Sequence[Tuple[Key, Bits]]) -> None:
        """Insert a batch of dummies (one chain pass or one repair round)."""
        if self.batched and len(entries) > 1:
            ops = [DummyInsertOp(key, tuple(bits)) for key, bits in entries]
            make_vector = MembershipVector._from_trusted
            nodes = [
                SkipGraphNode(key=op.key, membership=make_vector(op.bits), is_dummy=True)
                for op in ops
            ]
            began = perf_counter()
            self.graph.insert_run(nodes, tracker=self.tracker)
            if self.apply_timer is not None:
                self.apply_timer[0] += perf_counter() - began
            self.ops.extend(ops)
            return
        for key, bits in entries:
            self._record(DummyInsertOp(key, tuple(bits)))

    def remove_dummy(self, key: Key) -> None:
        self._record(DummyRemoveOp(key))

    def join(self, key: Key, bits: Bits, payload=None) -> None:
        # The only op applied by hand: ``payload`` rides on the node object
        # but not on the (wire-format) op, so apply_op cannot attach it.
        bits = tuple(bits)
        op = NodeJoinOp(key, bits)
        if self.tracker is not None:
            self.tracker.mark_insert(key, bits)
        self.graph.add_node(
            SkipGraphNode(key=key, membership=MembershipVector(bits), payload=payload)
        )
        self.ops.append(op)

    def leave(self, key: Key) -> None:
        self._record(NodeLeaveOp(key))


# ---------------------------------------------------------------- wire form
#: Numeric op tags used on the wire (one word each).
_OP_TAGS = {
    PromoteOp: 0,
    DemoteOp: 1,
    DummyInsertOp: 2,
    DummyRemoveOp: 3,
    NodeJoinOp: 4,
    NodeLeaveOp: 5,
    ExtendOp: 6,
}


def _encode_bits(bits: Bits) -> Tuple[int, int]:
    """Pack a membership bit string into ``(length, value)`` — two words.

    A membership vector has ``O(log n)`` bits, so the packed value is one
    ``O(log n)``-bit word; the explicit length keeps leading zero bits.
    """
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return len(bits), value


def _decode_bits(length: int, value: int) -> Bits:
    return tuple((value >> (length - 1 - index)) & 1 for index in range(length))


def op_to_payload(op: LocalOp) -> dict:
    """The op as a flat, O(1)-word message payload (see the module docstring)."""
    tag = _OP_TAGS[type(op)]
    if type(op) is PromoteOp:
        return {"t": tag, "k": op.key, "l": op.level, "b": op.bit}
    if type(op) is DemoteOp:
        return {"t": tag, "k": op.key, "l": op.length}
    if type(op) in (DummyInsertOp, NodeJoinOp):
        length, value = _encode_bits(op.bits)
        return {"t": tag, "k": op.key, "l": length, "b": value}
    if type(op) is ExtendOp:
        length, value = _encode_bits(op.bits)
        return {"t": tag, "k": op.key, "l": op.level, "n": length, "b": value}
    return {"t": tag, "k": op.key}


def op_from_payload(payload: dict) -> LocalOp:
    """Inverse of :func:`op_to_payload`."""
    tag = payload["t"]
    key = payload["k"]
    if tag == 0:
        return PromoteOp(key, payload["l"], payload["b"])
    if tag == 1:
        return DemoteOp(key, payload["l"])
    if tag == 2:
        return DummyInsertOp(key, _decode_bits(payload["l"], payload["b"]))
    if tag == 3:
        return DummyRemoveOp(key)
    if tag == 4:
        return NodeJoinOp(key, _decode_bits(payload["l"], payload["b"]))
    if tag == 5:
        return NodeLeaveOp(key)
    if tag == 6:
        return ExtendOp(key, payload["l"], _decode_bits(payload["n"], payload["b"]))
    raise ValueError(f"unknown op tag {tag!r}")


def op_anchor(op: LocalOp, graph: SkipGraph) -> Key:
    """The node that executes ``op`` in the distributed protocol.

    Promote/demote/leave are executed by the node they name; a dummy
    destroys itself on notification (Section IV-F), so the dummy is its own
    anchor; an *insertion* (dummy or joiner) is executed by the key's
    base-list predecessor in ``graph`` — the neighbour that creates the new
    node next to itself (falling back to the successor when the new key
    would become the new minimum).
    """
    if type(op) in (DummyInsertOp, NodeJoinOp):
        keys = graph.keys
        if not keys:
            raise ValueError("cannot anchor an insertion in an empty graph")
        index = bisect_left(keys, op.key)
        return keys[index - 1] if index > 0 else keys[0]
    return op.key


def stale_op_keys(ops: Sequence[LocalOp], dark: Sequence[Key]) -> frozenset:
    """The ops' *subject* keys that are dark — the unsalvageable part of a plan.

    A crash between a plan's route and execute phases invalidates the plan
    in one of two ways, and only one is repairable: a dark *anchor* (the
    base-list predecessor an insertion would execute at crashed) is fixed
    by recomputing :func:`op_anchor` against the repaired graph — the op
    itself is untouched; a dark *subject* (``op.key`` names the crashed
    node: its promote, demote, departure or dummy) cannot be re-aimed at
    anyone else, so a plan containing one must be abandoned rather than
    applied stale.  Returns the offending subjects (empty == re-anchorable).
    """
    dark_set = frozenset(dark)
    return frozenset(op.key for op in ops) & dark_set
