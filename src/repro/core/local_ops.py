"""The local-operation kernel for DSG restructuring.

The paper's central locality claim is that every restructure a request (or a
churn event) triggers is a *bounded-neighbourhood* operation: a node flips or
forgets membership bits of its own vector, splices itself into (or out of) a
level list next to nodes it already knows, or creates/destroys a dummy
neighbour.  This module makes that vocabulary first class:

* :class:`PromoteOp` — assign the membership bit selecting the sublist at
  ``level`` (in the transformation this is always an *append*: the node
  descends one level and splices into the 0- or 1-sublist);
* :class:`DemoteOp` — truncate the membership vector to ``length`` bits (the
  node leaves every list deeper than ``length``; the lists it leaves close up
  over it);
* :class:`DummyInsertOp` / :class:`DummyRemoveOp` — create or destroy a dummy
  node (a-balance maintenance, Section IV-F; dummies destroy themselves when
  a transformation notification reaches them);
* :class:`NodeJoinOp` / :class:`NodeLeaveOp` — peer churn (Section IV-G).

Every structural mutation of the repository flows through this vocabulary:

* the **centralized hot path** plans and applies in one pass — the planners
  (:meth:`repro.core.dsg.DynamicSkipGraph._adjust`,
  :func:`repro.core.transformation.transform`,
  :meth:`repro.core.dsg.DynamicSkipGraph.restore_a_balance`) drive an
  :class:`OpRecorder`, which applies each op to the
  :class:`~repro.skipgraph.skipgraph.SkipGraph` *as it is emitted* (the
  planning maths reads the graph mid-plan, so application must be eager) and
  keeps the emitted sequence as the plan;
* :func:`apply_ops` **replays** a recorded plan onto another graph — the
  applier the property tests use to prove a plan is self-contained
  (replaying ``result.ops`` on a copy of ``S_t`` reproduces ``S_{t+1}``)
  and the distributed protocol
  (:mod:`repro.distributed.dsg_protocol`) executes op by op;
* the simulation bridge (:func:`repro.workloads.scenarios.apply_local_op`)
  turns each op into per-level link rewiring of a live CONGEST network.

Ops are plain tuples of ``O(1)`` words — a key, a level, a bit, or a short
bit string — so a single op always fits in an ``O(log n)``-bit CONGEST
message; :func:`op_to_payload` / :func:`op_from_payload` define that wire
format and :func:`op_anchor` names the node that executes the op (for a
dummy insertion, the dummy's base-list predecessor — the neighbour that
creates it; every other op is executed by the node it names).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Hashable, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.skipgraph.membership import MembershipVector, common_prefix_length
from repro.skipgraph.node import SkipGraphNode
from repro.skipgraph.skipgraph import SkipGraph

if TYPE_CHECKING:  # import-free at runtime: balance.py must stay core-agnostic
    from repro.skipgraph.balance import BalanceTracker

__all__ = [
    "DemoteOp",
    "DummyInsertOp",
    "DummyRemoveOp",
    "LocalOp",
    "NodeJoinOp",
    "NodeLeaveOp",
    "OpRecorder",
    "PromoteOp",
    "apply_op",
    "apply_op_touched",
    "apply_ops",
    "apply_ops_touched",
    "op_anchor",
    "op_from_payload",
    "op_to_payload",
]

Key = Hashable
Bits = Tuple[int, ...]


class PromoteOp(NamedTuple):
    """Assign the membership bit selecting the sublist at ``level`` (>= 1)."""

    key: Key
    level: int
    bit: int


class DemoteOp(NamedTuple):
    """Truncate the membership vector to ``length`` bits."""

    key: Key
    length: int


class DummyInsertOp(NamedTuple):
    """Create the dummy node ``key`` with membership ``bits``."""

    key: Key
    bits: Bits


class DummyRemoveOp(NamedTuple):
    """Destroy the dummy node ``key``."""

    key: Key


class NodeJoinOp(NamedTuple):
    """A peer with ``key`` joins with membership ``bits`` (Section IV-G)."""

    key: Key
    bits: Bits


class NodeLeaveOp(NamedTuple):
    """The peer with ``key`` departs (Section IV-G)."""

    key: Key


LocalOp = Union[PromoteOp, DemoteOp, DummyInsertOp, DummyRemoveOp, NodeJoinOp, NodeLeaveOp]


# ------------------------------------------------------------------ applier
def apply_op(graph: SkipGraph, op: LocalOp, tracker: Optional["BalanceTracker"] = None) -> None:
    """Apply one local op to ``graph`` (caches are patched incrementally).

    The semantics intentionally mirror what the planners do inline through
    :class:`OpRecorder`, so replaying a recorded sequence on a copy of the
    pre-plan graph reproduces the post-plan graph exactly.

    ``tracker`` (a :class:`~repro.skipgraph.balance.BalanceTracker`) is
    notified *before* the mutation — the dirty marks for a departure need
    the pre-departure membership vector — which is how the incremental
    a-balance machinery on the churn path learns which lists an op touched.
    """
    if type(op) is PromoteOp:
        old = graph.membership(op.key)
        new = old.with_bit(op.level, op.bit)
        if tracker is not None:
            tracker.mark_rewrite(op.key, old.bits, new.bits)
        graph.set_membership(op.key, new)
    elif type(op) is DemoteOp:
        membership = graph.membership(op.key)
        if len(membership) > op.length:
            if tracker is not None:
                tracker.mark_rewrite(op.key, membership.bits, membership.bits[: op.length])
            graph.set_membership(op.key, membership.truncated(op.length))
    elif type(op) is DummyInsertOp:
        if tracker is not None:
            tracker.mark_insert(op.key, op.bits)
        graph.add_node(
            SkipGraphNode(key=op.key, membership=MembershipVector(op.bits), is_dummy=True)
        )
    elif type(op) is NodeJoinOp:
        if tracker is not None:
            tracker.mark_insert(op.key, op.bits)
        graph.add_node(SkipGraphNode(key=op.key, membership=MembershipVector(op.bits)))
    elif type(op) is DummyRemoveOp or type(op) is NodeLeaveOp:
        if tracker is not None:
            tracker.mark_remove(graph, op.key)
        graph.remove_node(op.key)
    else:
        raise TypeError(f"unknown local op {op!r}")


def apply_ops(graph: SkipGraph, ops: Sequence[LocalOp]) -> None:
    """Replay a recorded op sequence onto ``graph``, in order.

    Order matters: a demote must run before the promotes that re-grow the
    vector, and a dummy insertion may name neighbours that a previous op put
    in place.
    """
    for op in ops:
        apply_op(graph, op)


# ------------------------------------------------------------- target sets
def apply_op_touched(graph: SkipGraph, op: LocalOp) -> set:
    """Apply one op and return the keys whose links it rewires.

    The returned set is the op's *bounded neighbourhood* — the same set
    :func:`repro.distributed.routing_protocol.patch_network` reports as
    affected when it rewires a live network for the op (property-tested
    equal): the op's own key plus every list neighbour spliced against or
    closed over, at every level the op reaches.  Because the splice flanks
    of an insertion only exist after the node lands in its lists, the op is
    applied as part of the extraction; drivers that need the touched region
    of a plan *before* executing it on the real structure replay the plan
    against a shadow copy of the pre-plan graph (the pipelined scheduler's
    conflict detector does exactly that).
    """
    touched = {op.key}
    if type(op) in (DummyInsertOp, NodeJoinOp):
        apply_op(graph, op)
        for level in range(len(op.bits) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
    elif type(op) in (DummyRemoveOp, NodeLeaveOp):
        for level in range(len(graph.membership(op.key)) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
        apply_op(graph, op)
    elif type(op) is PromoteOp or type(op) is DemoteOp:
        old = graph.membership(op.key)
        if type(op) is PromoteOp:
            new = old.with_bit(op.level, op.bit)
        else:
            new = old.truncated(op.length)
        keep = common_prefix_length(old, new)
        for level in range(keep + 1, len(old) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
        apply_op(graph, op)
        for level in range(keep + 1, len(new) + 1):
            for neighbor in graph.neighbors(op.key, level):
                if neighbor is not None:
                    touched.add(neighbor)
    else:
        raise TypeError(f"unknown local op {op!r}")
    return touched


def apply_ops_touched(graph: SkipGraph, ops: Sequence[LocalOp]) -> set:
    """Replay a plan onto ``graph`` and return the union of touched keys.

    The bulk form of :func:`apply_op_touched` — the write-set extractor the
    pipelined distributed driver feeds its conflict detector with.
    """
    touched: set = set()
    for op in ops:
        touched |= apply_op_touched(graph, op)
    return touched


# ----------------------------------------------------------------- recorder
class OpRecorder:
    """Applies local ops to a graph eagerly while recording the sequence.

    The planners interleave planning reads with structural writes (the next
    split reads the lists the previous split produced), so the centralized
    path cannot plan first and apply later; instead every write goes through
    this recorder, which both mutates the graph and appends the op to
    :attr:`ops` — making "the plan" a byproduct of the existing computation
    at O(1) extra work per mutation, with cost accounting untouched.

    An attached ``tracker`` (see :func:`apply_op`) receives every op before
    it lands, feeding the incremental a-balance dirty marks; the DSG front
    end threads its per-instance tracker through every recorder it creates.
    """

    __slots__ = ("graph", "ops", "tracker")

    def __init__(
        self,
        graph: SkipGraph,
        ops: Optional[List[LocalOp]] = None,
        tracker: Optional["BalanceTracker"] = None,
    ) -> None:
        self.graph = graph
        self.ops: List[LocalOp] = ops if ops is not None else []
        self.tracker = tracker

    def _record(self, op: LocalOp) -> None:
        apply_op(self.graph, op, self.tracker)
        self.ops.append(op)

    def promote(self, key: Key, level: int, bit: int) -> None:
        self._record(PromoteOp(key, level, bit))

    def demote(self, key: Key, length: int) -> None:
        if len(self.graph.membership(key)) > length:
            self._record(DemoteOp(key, length))

    def insert_dummy(self, key: Key, bits: Bits) -> None:
        self._record(DummyInsertOp(key, tuple(bits)))

    def remove_dummy(self, key: Key) -> None:
        self._record(DummyRemoveOp(key))

    def join(self, key: Key, bits: Bits, payload=None) -> None:
        # The only op applied by hand: ``payload`` rides on the node object
        # but not on the (wire-format) op, so apply_op cannot attach it.
        bits = tuple(bits)
        op = NodeJoinOp(key, bits)
        if self.tracker is not None:
            self.tracker.mark_insert(key, bits)
        self.graph.add_node(
            SkipGraphNode(key=key, membership=MembershipVector(bits), payload=payload)
        )
        self.ops.append(op)

    def leave(self, key: Key) -> None:
        self._record(NodeLeaveOp(key))


# ---------------------------------------------------------------- wire form
#: Numeric op tags used on the wire (one word each).
_OP_TAGS = {
    PromoteOp: 0,
    DemoteOp: 1,
    DummyInsertOp: 2,
    DummyRemoveOp: 3,
    NodeJoinOp: 4,
    NodeLeaveOp: 5,
}


def _encode_bits(bits: Bits) -> Tuple[int, int]:
    """Pack a membership bit string into ``(length, value)`` — two words.

    A membership vector has ``O(log n)`` bits, so the packed value is one
    ``O(log n)``-bit word; the explicit length keeps leading zero bits.
    """
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return len(bits), value


def _decode_bits(length: int, value: int) -> Bits:
    return tuple((value >> (length - 1 - index)) & 1 for index in range(length))


def op_to_payload(op: LocalOp) -> dict:
    """The op as a flat, O(1)-word message payload (see the module docstring)."""
    tag = _OP_TAGS[type(op)]
    if type(op) is PromoteOp:
        return {"t": tag, "k": op.key, "l": op.level, "b": op.bit}
    if type(op) is DemoteOp:
        return {"t": tag, "k": op.key, "l": op.length}
    if type(op) in (DummyInsertOp, NodeJoinOp):
        length, value = _encode_bits(op.bits)
        return {"t": tag, "k": op.key, "l": length, "b": value}
    return {"t": tag, "k": op.key}


def op_from_payload(payload: dict) -> LocalOp:
    """Inverse of :func:`op_to_payload`."""
    tag = payload["t"]
    key = payload["k"]
    if tag == 0:
        return PromoteOp(key, payload["l"], payload["b"])
    if tag == 1:
        return DemoteOp(key, payload["l"])
    if tag == 2:
        return DummyInsertOp(key, _decode_bits(payload["l"], payload["b"]))
    if tag == 3:
        return DummyRemoveOp(key)
    if tag == 4:
        return NodeJoinOp(key, _decode_bits(payload["l"], payload["b"]))
    if tag == 5:
        return NodeLeaveOp(key)
    raise ValueError(f"unknown op tag {tag!r}")


def op_anchor(op: LocalOp, graph: SkipGraph) -> Key:
    """The node that executes ``op`` in the distributed protocol.

    Promote/demote/leave are executed by the node they name; a dummy
    destroys itself on notification (Section IV-F), so the dummy is its own
    anchor; an *insertion* (dummy or joiner) is executed by the key's
    base-list predecessor in ``graph`` — the neighbour that creates the new
    node next to itself (falling back to the successor when the new key
    would become the new minimum).
    """
    if type(op) in (DummyInsertOp, NodeJoinOp):
        keys = graph.keys
        if not keys:
            raise ValueError("cannot anchor an insertion in an empty graph")
        index = bisect_left(keys, op.key)
        return keys[index - 1] if index > 0 else keys[0]
    return op.key
