"""Per-node DSG state (paper, Section IV-B).

    "DSG requires every node to hold H_t bits to store its membership
    vector.  In addition, each node stores a timestamp and a group-id for
    each of the levels. [...] Initially, all timestamps are set to zero and
    all group-ids are set to the corresponding node's identifier."

Each node also holds one *is-dominating-group* boolean per level
(Section IV-C, Case 2) and a single *group-base* integer (Appendix C).  All
of this is ``O(log n)`` words, i.e. ``O(log² n)`` bits — the paper states
``O(log n)`` bits per *variable*; the memory audit in experiment E11 reports
words per node so either reading can be checked.

Levels are indexed as in the paper: index ``d`` refers to the linked list at
level ``d``; timestamps/group-ids exist for ``d = 0 .. H_t``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Hashable, List

__all__ = ["DSGNodeState", "default_uid"]

Key = Hashable


def default_uid(key: Key) -> int:
    """Deterministic positive numeric identifier for ``key``.

    The value plays the role of the node's "ip address" in the paper's
    priority rule P3; it only needs to be a positive integer that is stable
    across runs and uncorrelated with the key order.
    """
    return (zlib.crc32(repr(key).encode("utf-8")) & 0x7FFFFFFF) or 1


@dataclass
class DSGNodeState:
    """Timestamps, group-ids, dominating flags and group-base of one node.

    ``uid`` is the node's *numeric identifier* used as a group-id by the
    priority rules ("group identifiers are non-negative integers (possibly
    an ip address of a node)", Section IV-C).  It is deliberately distinct
    from — and uncorrelated with — the routing ``key``: rule P3 orders
    non-communicating nodes by group-id, so a group-id that followed key
    order would make every split key-contiguous and flood the structure with
    dummy nodes (see DESIGN.md, "Simplifications").
    """

    key: Key
    #: Numeric identifier used as the node's default group-id (positive int).
    uid: int = 0
    #: ``T^x_d`` — timestamp of the node for level ``d``.
    timestamps: Dict[int, int] = field(default_factory=dict)
    #: ``G^x_d`` — group-id of the node for level ``d``.
    group_ids: Dict[int, Key] = field(default_factory=dict)
    #: ``D^x_d`` — is-dominating-group flag of the node for level ``d``.
    dominating: Dict[int, bool] = field(default_factory=dict)
    #: ``B_x`` — the group-base: highest level at which the node belongs to
    #: its biggest group.
    group_base: int = 0

    def __post_init__(self) -> None:
        if not self.uid:
            self.uid = default_uid(self.key)

    # ------------------------------------------------------------- accessors
    def timestamp(self, level: int) -> int:
        """``T^x_level`` (0 when never set, as per the initialisation rule)."""
        return self.timestamps.get(level, 0)

    def set_timestamp(self, level: int, value: int) -> None:
        self.timestamps[level] = value

    def group_id(self, level: int) -> Key:
        """``G^x_level`` (defaults to the node's numeric identifier)."""
        return self.group_ids.get(level, self.uid)

    def set_group_id(self, level: int, value: Key) -> None:
        self.group_ids[level] = value

    def is_dominating(self, level: int) -> bool:
        """``D^x_level`` (defaults to ``False``)."""
        return self.dominating.get(level, False)

    def set_dominating(self, level: int, value: bool) -> None:
        self.dominating[level] = value

    # ------------------------------------------------------------ bookkeeping
    def reset(self) -> None:
        """Back to the initial state (all zeros / own identifier)."""
        self.timestamps.clear()
        self.group_ids.clear()
        self.dominating.clear()
        self.group_base = 0

    def memory_words(self, height: int) -> int:
        """Number of machine words the state occupies for a given height.

        One word per level for each of timestamp, group-id and dominating
        flag, plus the group-base and the key itself.  Used by the E11
        memory audit.
        """
        return 3 * (height + 1) + 2

    def snapshot(self, height: int) -> Dict[str, List]:
        """Plain-data view of the state up to ``height`` (for tests/display)."""
        return {
            "timestamps": [self.timestamp(level) for level in range(height + 1)],
            "group_ids": [self.group_id(level) for level in range(height + 1)],
            "dominating": [self.is_dominating(level) for level in range(height + 1)],
            "group_base": self.group_base,
        }
