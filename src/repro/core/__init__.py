"""The paper's core contribution: DSG and its supporting machinery.

Modules
-------
``amf``
    Approximate Median Finding (Section V, Algorithm 2, Lemma 1).
``working_set``
    Communication graphs, working set number / property / bound
    (Section III definitions, Theorem 1).
``state``
    Per-node DSG state: timestamps, group-ids, is-dominating-group flags and
    group-bases (Section IV-B).
``priorities``
    Priority rules P1-P4 (Section IV-C).
``groups``
    Group merge, group-id reassignment and group-base maintenance
    (Sections IV-D and Appendix C).
``timestamps``
    Timestamp rules T1-T6 (Section IV-E).
``transformation``
    The level-by-level topology transformation (Section IV-C: Case 1,
    Case 2 with the 1/3-2/3 split rules) and dummy-node placement
    (Section IV-F).
``dsg``
    The :class:`DynamicSkipGraph` front end (Algorithm 1): route, transform,
    account costs.
"""

from repro.core.amf import AMFResult, approximate_median, exact_median, rank_interval
from repro.core.working_set import (
    CommunicationHistory,
    working_set_bound,
    working_set_number,
)
from repro.core.state import DSGNodeState
from repro.core.dsg import DSGConfig, DynamicSkipGraph, RequestResult

__all__ = [
    "AMFResult",
    "CommunicationHistory",
    "DSGConfig",
    "DSGNodeState",
    "DynamicSkipGraph",
    "RequestResult",
    "approximate_median",
    "exact_median",
    "rank_interval",
    "working_set_bound",
    "working_set_number",
]
