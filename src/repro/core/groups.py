"""Group management: merge, split reassignment, G_lower and group-bases.

Implements the group-id bookkeeping of Sections IV-C/IV-D and Appendix C:

* merging the communicating nodes' groups at level ``alpha`` (all members
  adopt ``u``'s identifier as group-id),
* locating the group ``g_s`` whose priority band straddles a negative
  approximate median (Case 2 of the transformation),
* reassigning group-ids after a split (the sub-group that moves to the
  1-subgraph adopts the identifier of its left-most member; every node whose
  new linked list contains both ``u`` and ``v`` adopts ``u``),
* the ``G_lower`` propagation that aligns group-ids below ``alpha`` when the
  merged groups had different histories (Appendix C),
* group-base maintenance.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.priorities import priority_band
from repro.core.state import DSGNodeState

__all__ = [
    "merge_groups_at_alpha",
    "find_straddled_group",
    "assign_group_ids_after_split",
    "glower_update",
    "update_group_bases_after_transformation",
    "initial_group_base",
]

Key = Hashable


def merge_groups_at_alpha(
    states: Mapping[Key, DSGNodeState],
    members: Iterable[Key],
    u: Key,
    v: Key,
    alpha: int,
) -> List[Key]:
    """Merge ``u``'s and ``v``'s groups at level ``alpha`` (Section IV-C).

    Every member of either group adopts ``u``'s numeric identifier as its
    level-``alpha`` group-id.  Returns the keys of the merged group
    (including ``u`` and ``v``).
    """
    group_u = states[u].group_id(alpha)
    group_v = states[v].group_id(alpha)
    uid_u = states[u].uid
    merged: List[Key] = []
    for key in members:
        state = states[key]
        if state.group_ids.get(alpha, state.uid) in (group_u, group_v):
            state.group_ids[alpha] = uid_u
            merged.append(key)
    return merged


def find_straddled_group(
    states: Mapping[Key, DSGNodeState],
    members: Sequence[Key],
    level: int,
    median: float,
    t: int,
    exclude: Tuple[Key, Key],
) -> Optional[List[Key]]:
    """Find the non-communicating group ``g_s`` straddled by a negative median.

    Case 2 of the transformation (Section IV-C): when the approximate median
    ``M`` is negative there may exist a group ``g_s`` whose priority band
    ``(-(G+1)*t, -G*t]`` contains ``M`` (equation 2); splitting by direct
    priority comparison would tear that group apart.  The group is unique
    because distinct groups occupy disjoint bands.

    Returns the members of ``g_s`` within ``members`` (in the given order),
    or ``None`` when no group straddles the median.
    """
    if median >= 0:
        return None
    u, v = exclude
    candidates: Dict[Key, List[Key]] = {}
    for key in members:
        if key in (u, v):
            continue
        state = states[key]
        group = state.group_ids.get(level, state.uid)
        if not isinstance(group, bool) and isinstance(group, int) and group > 0:
            low, high = priority_band(group, t)
            if low <= median < high:
                candidates.setdefault(group, []).append(key)
    if not candidates:
        return None
    # Bands are disjoint, so at most one group can straddle the median.
    group = next(iter(candidates))
    return candidates[group]


def assign_group_ids_after_split(
    states: Mapping[Key, DSGNodeState],
    zero_list: Sequence[Key],
    one_list: Sequence[Key],
    level: int,
    parent_level: int,
    u: Key,
    v: Key,
) -> List[Key]:
    """Reassign level-``level`` group-ids after one split (Section IV-D).

    * every node whose new list contains both ``u`` and ``v`` sets its
      group-id to ``u``'s numeric identifier;
    * every (old, level ``parent_level``) group that is split between the
      two new lists gives the part that moved to the 1-subgraph a fresh
      group-id: the numeric identifier of that part's left-most member;
    * groups that moved intact keep their existing level-``level`` group-ids
      (their internal sub-group structure is preserved, as the analysis of
      Lemma 2 requires).

    Returns the list of old group-ids that were split by this assignment
    (used by timestamp rule T5 and the group-base updates).
    """
    zero_set = set(zero_list)
    one_set = set(one_list)

    # Old groups by their parent-level group-id.
    old_groups: Dict[Key, List[Key]] = {}
    for key_list in (zero_list, one_list):
        for key in key_list:
            state = states[key]
            gid = state.group_ids.get(parent_level, state.uid)
            bucket = old_groups.get(gid)
            if bucket is None:
                old_groups[gid] = [key]
            else:
                bucket.append(key)

    split_groups: List[Key] = []
    for group_id, group_members in old_groups.items():
        in_zero = [key for key in group_members if key in zero_set]
        in_one = [key for key in group_members if key in one_set]
        if in_zero and in_one:
            split_groups.append(group_id)
            # The 1-subgraph part adopts the identifier of its left-most node.
            new_id = states[min(in_one)].uid
            for key in in_one:
                states[key].set_group_id(level, new_id)

    if u in zero_set and v in zero_set:
        for key in zero_list:
            states[key].set_group_id(level, states[u].uid)
    elif u in one_set and v in one_set:  # pragma: no cover - u,v always move to 0
        for key in one_list:
            states[key].set_group_id(level, states[u].uid)
    return split_groups


def glower_update(
    states: Mapping[Key, DSGNodeState],
    alpha_members: Sequence[Key],
    wider_members: Sequence[Key],
    u: Key,
    v: Key,
    alpha: int,
) -> set:
    """Appendix C: align group-ids below ``alpha`` after a merge.

    When ``u``'s and ``v``'s groups had different group-ids at level
    ``alpha - 1`` their histories below ``alpha`` disagree; the node with the
    *smaller* group-base donates its lower-level group-ids (the vector
    ``G_lower``) to the other group's members, and every node of the merged
    group at level ``alpha`` adopts ``G_lower`` for levels below ``alpha``.

    Parameters
    ----------
    alpha_members:
        Members of ``l_alpha``.
    wider_members:
        Members of the list at level ``max(B_u, B_v)`` that contains the pair
        (a superset of ``l_alpha``).

    Returns the set of nodes that initialized or received ``G_lower`` (used
    by timestamp rule T4); the set is empty when no update was needed.
    """
    if alpha == 0:
        return set()
    state_u, state_v = states[u], states[v]
    if state_u.group_id(alpha - 1) == state_v.group_id(alpha - 1):
        return set()

    base_u, base_v = state_u.group_base, state_v.group_base
    donor = state_u if base_u <= base_v else state_v
    g_lower = [donor.group_id(level) for level in range(alpha)]
    new_base = min(base_u, base_v)
    wide_level = max(base_u, base_v)
    ref_u = state_u.group_id(wide_level)
    ref_v = state_v.group_id(wide_level)

    participants = set()
    for key in wider_members:
        state = states[key]
        if state.group_id(wide_level) in (ref_u, ref_v):
            state.group_base = new_base
            for level in range(min(alpha, len(g_lower))):
                state.set_group_id(level, g_lower[level])
            participants.add(key)

    for key in alpha_members:
        state = states[key]
        if state.group_id(alpha) == states[u].uid:
            for level in range(min(alpha, len(g_lower))):
                state.set_group_id(level, g_lower[level])
            participants.add(key)
    return participants


def update_group_bases_after_transformation(
    states: Mapping[Key, DSGNodeState],
    members: Sequence[Key],
    split_levels_per_key: Mapping[Key, List[int]],
    alpha: int,
) -> None:
    """Group-base maintenance after a transformation (Appendix C).

    * if a node's group split at some level ``d >= alpha`` and its group-base
      was exactly ``d``, the base drops by one;
    * if its base was ``alpha`` and the lowest level at which its group split
      is ``d > alpha + 1``, the base becomes ``d - 1``.
    """
    for key in members:
        state = states[key]
        split_levels = sorted(split_levels_per_key.get(key, []))
        if not split_levels:
            continue
        if state.group_base in split_levels and state.group_base >= alpha:
            state.group_base = max(0, state.group_base - 1)
        lowest = split_levels[0]
        if state.group_base == alpha and lowest > alpha + 1:
            state.group_base = lowest - 1


def initial_group_base(singleton_level: int) -> int:
    """Initial group-base: the lowest level at which the node is singleton."""
    return max(0, singleton_level)
