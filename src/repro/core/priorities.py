"""Priority rules P1-P4 (paper, Section IV-C).

Upon a communication request ``(u, v)`` every node ``x`` of the common
linked list ``l_alpha`` computes a priority ``P(x)``:

P1
    The communicating nodes take priority infinity.
P2
    Nodes in the same group as ``u`` (resp. ``v``) at level ``alpha`` take
    ``min(T^x_c, T^u_c)`` where ``c`` is the highest level (in the old skip
    graph) at which ``x`` and ``u`` share a group-id; similarly w.r.t. ``v``.
P3
    Every other node takes ``-(G^x_alpha * t) + T^x_{alpha+1}``.
P4
    After a split, a node that landed in a linked list *not* containing the
    communicating pair recomputes its priority for the next level ``d`` as
    ``-(G^x_d * t) + T^x_{d+1}``.

The rules guarantee that the communicating pair has the highest priority,
the merged group has positive priorities (timestamps are positive), every
non-communicating group has negative priorities, and distinct groups occupy
disjoint priority bands ``(-(G+1)*t, -G*t]`` — which is what the Case 2
split logic relies on.

Group identifiers must be positive integers (the paper requires non-negative
identifiers; we additionally exclude 0 so that the band of group 0 cannot
collide with the non-negative priorities of the merged group — see
DESIGN.md, "Simplifications").
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.core.state import DSGNodeState

__all__ = [
    "COMMUNICATING_PRIORITY",
    "compute_priorities",
    "priority_band",
    "recompute_priority_p4",
]

Key = Hashable

#: Priority assigned to the communicating nodes by rule P1.
COMMUNICATING_PRIORITY = math.inf


def _require_positive_identifier(group_id) -> int:
    if not isinstance(group_id, (int,)) or isinstance(group_id, bool) or group_id <= 0:
        raise ValueError(
            f"DSG requires node identifiers / group-ids to be positive integers, got {group_id!r}"
        )
    return group_id


def priority_band(group_id: int, t: int) -> Tuple[float, float]:
    """Half-open priority band ``[low, high)`` of a non-communicating group.

    Rule P3 assigns ``P(x) = -(G * t) + T`` with ``0 <= T < t``, so every
    member of group ``G`` lands in ``[-G*t, -(G-1)*t)``.  (The paper words
    the range as "between ``-(G*t)`` and ``-(G+1)*t``", which is inconsistent
    with its own formula; the formula is authoritative here.)  Bands of
    distinct groups are disjoint, which lets Case 2 identify the unique group
    straddling a negative median.
    """
    _require_positive_identifier(group_id)
    return (-group_id * t, -(group_id - 1) * t)


def _highest_common_group_level(
    state_x: DSGNodeState, state_ref: DSGNodeState, max_level: int
) -> Optional[int]:
    """Highest level ``c <= max_level`` with ``G^x_c == G^ref_c`` (rule P2)."""
    groups_x = state_x.group_ids
    groups_ref = state_ref.group_ids
    uid_x = state_x.uid
    uid_ref = state_ref.uid
    for level in range(max_level, -1, -1):
        if groups_x.get(level, uid_x) == groups_ref.get(level, uid_ref):
            return level
    return None


def compute_priorities(
    states: Mapping[Key, DSGNodeState],
    members: Iterable[Key],
    u: Key,
    v: Key,
    alpha: int,
    t: int,
    height: int,
) -> Dict[Key, float]:
    """Apply rules P1-P3 to every member of ``l_alpha``.

    Parameters
    ----------
    states:
        The (pre-transformation) DSG state of every node.
    members:
        Keys of the nodes in ``l_alpha`` (any order).
    u, v:
        The communicating pair.
    alpha:
        Highest common level of ``u`` and ``v``.
    t:
        The request's timestamp.
    height:
        Current height of the skip graph (upper bound for the level scan of
        rule P2).
    """
    state_u = states[u]
    state_v = states[v]
    group_u = state_u.group_id(alpha)
    group_v = state_v.group_id(alpha)

    priorities: Dict[Key, float] = {}
    for key in members:
        if key == u or key == v:
            priorities[key] = COMMUNICATING_PRIORITY           # P1
            continue
        state_x = states[key]
        group_x = state_x.group_ids.get(alpha, state_x.uid)
        if group_x == group_u:                                  # P2 (u's side)
            c = _highest_common_group_level(state_x, state_u, height)
            priorities[key] = float(
                min(state_x.timestamps.get(c, 0), state_u.timestamps.get(c, 0))
            )
        elif group_x == group_v:                                # P2 (v's side)
            c = _highest_common_group_level(state_x, state_v, height)
            priorities[key] = float(
                min(state_x.timestamps.get(c, 0), state_v.timestamps.get(c, 0))
            )
        else:                                                   # P3
            if type(group_x) is not int or group_x <= 0:
                _require_positive_identifier(group_x)
            priorities[key] = float(-(group_x * t) + state_x.timestamps.get(alpha + 1, 0))
    return priorities


def recompute_priority_p4(state: DSGNodeState, level: int, t: int) -> float:
    """Rule P4: priority for the next split of a list without ``u`` and ``v``.

    ``level`` is the level of the linked list the node just moved into
    (``d`` in the paper); the priority uses the node's group-id at that level
    and its (old) timestamp one level above.
    """
    group = state.group_ids.get(level, state.uid)
    if type(group) is not int or group <= 0:  # fast path for plain ints
        _require_positive_identifier(group)
    return float(-(group * t) + state.timestamps.get(level + 1, 0))
