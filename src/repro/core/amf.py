"""Approximate Median Finding for skip graphs (AMF; paper, Section V).

Given a linked list of nodes each holding a value (DSG uses the priorities
P(x)), AMF finds an approximate median in expected ``O(log n)`` rounds:

1. build a balanced probabilistic skip list over the list members
   (:class:`repro.skiplist.BalancedSkipList`);
2. gather values towards the promoted nodes level by level ("all nodes
   x in l_d, x not in l_{d+1} forward the values they have to the nearest
   left neighbor that stepped up to level d+1");
3. from level ``ceil(log_{a/2} h) + 1`` upward each node sorts the values it
   received, keeps a uniform sample of ``a*h`` of them and attaches rank
   information accounting for the discarded values;
4. the root (left-most node) picks the value whose accounted rank is closest
   to ``n/2`` and broadcasts it.

Lemma 1 of the paper guarantees the output's rank lies within
``n/2 ± n/(2a)``; experiment E5 checks this empirically and
:func:`rank_interval` provides the exact-rank diagnostics used there.

The implementation is *structural*: it simulates the information flow of the
distributed algorithm on one process while charging rounds for every
message-bearing step (skip list construction, per-level convergecast, final
broadcast), using the same accounting as :mod:`repro.skiplist`.  The
message-level version used to validate this accounting lives in
:mod:`repro.distributed.amf_protocol`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.simulation.rng import make_rng
from repro.skiplist.balanced import BalancedSkipList

__all__ = ["AMFResult", "approximate_median", "exact_median", "rank_interval"]

# Values travelling up the skip list are ``(value, weight_below)`` pairs:
# the surviving value plus the count of discarded values known to be
# <= ``value`` (and above the previously kept value of the same local list).
# Plain tuples, not objects: one transformation allocates them by the
# hundred thousand.
_value_of_entry = itemgetter(0)


@dataclass
class AMFResult:
    """Outcome of one AMF execution.

    Attributes
    ----------
    median:
        The approximate median value selected by the root.
    rounds:
        Total rounds charged: skip list construction + per-level gathering +
        final broadcast of the median.
    n:
        Number of values aggregated.
    skiplist:
        The balanced skip list built during the run.  DSG reuses it for
        distributed counts and group-id broadcasts before destroying it.
    exact:
        ``True`` when the list was small enough (``n <= a``) that the median
        was computed exactly without building a skip list.
    rank_low, rank_high:
        1-based rank interval of ``median`` within the input multiset
        (ties make it an interval).  Provided for the Lemma 1 diagnostics.
    """

    median: float
    rounds: int
    n: int
    skiplist: Optional[BalancedSkipList] = None
    exact: bool = False
    rank_low: int = 0
    rank_high: int = 0

    @property
    def rank_error(self) -> float:
        """Distance of the rank interval from the true middle ``n/2``."""
        target = self.n / 2
        if self.rank_low <= target <= self.rank_high:
            return 0.0
        return min(abs(self.rank_low - target), abs(self.rank_high - target))

    def satisfies_lemma1(self, a: int) -> bool:
        """Whether the output rank lies within ``n/2 ± n/(2a)`` (Lemma 1)."""
        slack = self.n / (2 * a)
        low = self.n / 2 - slack
        high = self.n / 2 + slack
        return not (self.rank_high < low or self.rank_low > high)


def exact_median(values: Sequence[float]) -> float:
    """Lower median of ``values`` (used for diagnostics and tiny lists)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("cannot take the median of an empty sequence")
    return ordered[(len(ordered) - 1) // 2]


def rank_interval(values: Sequence[float], chosen: float) -> Tuple[int, int]:
    """1-based rank interval of ``chosen`` within ``values`` (ties widen it)."""
    below = sum(1 for v in values if v < chosen)
    not_above = sum(1 for v in values if v <= chosen)
    return below + 1, max(not_above, below + 1)


def approximate_median(
    values: Mapping[Any, float] | Sequence[Tuple[Any, float]],
    a: int = 4,
    rng: Optional[random.Random] = None,
    diagnostics: bool = True,
) -> AMFResult:
    """Run AMF over ``values`` (mapping ``list member -> value``).

    The iteration order of ``values`` is taken as the linked-list order (for
    DSG this is key order within the linked list).  ``diagnostics=False``
    skips the exact rank interval of the result (two O(n) scans used only by
    the Lemma 1 experiments); ``rank_low``/``rank_high`` are then 0.  The
    median, round count and skip list are unaffected.
    """
    if isinstance(values, Mapping):
        items: List[Any] = list(values.keys())
        value_of: Mapping[Any, float] = values if isinstance(values, dict) else dict(values)
    else:
        items = [item for item, _ in values]
        value_of = {item: value for item, value in values}
    if not items:
        raise ValueError("AMF needs at least one value")
    if a < 2:
        raise ValueError("the balance parameter a must be at least 2")

    n = len(items)

    # Small lists: the paper's construction assumes n > a; below that the
    # nodes simply gather all values along the list and take the median.
    if n <= a:
        all_values = [value_of[item] for item in items]
        median = exact_median(all_values)
        low, high = rank_interval(all_values, median)
        return AMFResult(
            median=median, rounds=n, n=n, skiplist=None, exact=True, rank_low=low, rank_high=high
        )

    rng = rng or make_rng()
    skiplist = BalancedSkipList(items, a=a, rng=rng)
    rounds = skiplist.construction_rounds

    h = skiplist.height - 1  # paper's h: the top (singleton) level index
    sample_size = max(2, a * max(h, 1))
    base = max(a / 2, 1.5)
    sampling_start = math.ceil(math.log(max(h, 2), base)) + 1

    # entries held by each node, starting with its own value at the base.
    held: Dict[Any, List[Tuple[float, int]]] = {item: [(value_of[item], 0)] for item in items}

    for level in range(skiplist.height - 1):
        segments = skiplist.segments(level)
        next_held: Dict[Any, List[Tuple[float, int]]] = {}
        level_rounds = 0
        for owner, members in segments:
            gathered: List[Tuple[float, int]] = []
            forwarded_values = 0
            for member in members:
                entries = held.get(member, [])
                gathered.extend(entries)
                if member != owner:
                    forwarded_values += len(entries)
            # Pipelined forwarding along the segment: one hop per round plus
            # one round per value crossing the busiest (first) link.
            level_rounds = max(level_rounds, (len(members) - 1) + forwarded_values)
            if level + 1 >= sampling_start:
                gathered = _sample(gathered, sample_size)
            next_held[owner] = gathered
        rounds += level_rounds
        held = next_held

    root_entries = held[skiplist.root]
    median, rank_estimate = _pick_median(root_entries)
    rounds += skiplist.broadcast_rounds()

    if diagnostics:
        low, high = rank_interval([value_of[item] for item in items], median)
    else:
        low = high = 0
    return AMFResult(
        median=median,
        rounds=rounds,
        n=n,
        skiplist=skiplist,
        exact=False,
        rank_low=low,
        rank_high=high,
    )


def _sample(entries: List[Tuple[float, int]], sample_size: int) -> List[Tuple[float, int]]:
    """Sort ``entries`` and keep a uniform sample, folding discarded mass.

    The discarded values between two kept values are assigned to the *upper*
    kept value's ``weight_below``, so the total mass (count of original
    values) is preserved exactly.
    """
    ordered = sorted(entries, key=_value_of_entry)
    if len(ordered) <= sample_size:
        return ordered
    last = len(ordered) - 1
    kept_indices = sorted({round(i * last / (sample_size - 1)) for i in range(sample_size)})
    kept: List[Tuple[float, int]] = []
    previous_index = -1
    for index in kept_indices:
        value, weight_below = ordered[index]
        extra = 0
        for _, discarded_weight in ordered[previous_index + 1 : index]:
            extra += 1 + discarded_weight
        kept.append((value, weight_below + extra))
        previous_index = index
    # Any trailing discarded values (there are none because the last index is
    # always kept) would otherwise be lost; assert the mass is preserved.
    return kept


def _pick_median(entries: List[Tuple[float, int]]) -> Tuple[float, float]:
    """Pick the entry whose accounted rank is closest to the middle."""
    ordered = sorted(entries, key=_value_of_entry)
    total_mass = len(ordered) + sum(weight for _, weight in ordered)
    target = total_mass / 2
    best_value = ordered[0][0]
    best_rank = 0.0
    best_distance = math.inf
    cumulative = 0
    for value, weight_below in ordered:
        cumulative += weight_below + 1
        distance = abs(cumulative - target)
        if distance < best_distance:
            best_distance = distance
            best_value = value
            best_rank = cumulative
    return best_value, best_rank
