"""Approximate Median Finding for skip graphs (AMF; paper, Section V).

Given a linked list of nodes each holding a value (DSG uses the priorities
P(x)), AMF finds an approximate median in expected ``O(log n)`` rounds:

1. build a balanced probabilistic skip list over the list members
   (:class:`repro.skiplist.BalancedSkipList`);
2. gather values towards the promoted nodes level by level ("all nodes
   x in l_d, x not in l_{d+1} forward the values they have to the nearest
   left neighbor that stepped up to level d+1");
3. from level ``ceil(log_{a/2} h) + 1`` upward each node sorts the values it
   received, keeps a uniform sample of ``a*h`` of them and attaches rank
   information accounting for the discarded values;
4. the root (left-most node) picks the value whose accounted rank is closest
   to ``n/2`` and broadcasts it.

Lemma 1 of the paper guarantees the output's rank lies within
``n/2 ± n/(2a)``; experiment E5 checks this empirically and
:func:`rank_interval` provides the exact-rank diagnostics used there.

The implementation is *structural*: it simulates the information flow of the
distributed algorithm on one process while charging rounds for every
message-bearing step (skip list construction, per-level convergecast, final
broadcast), using the same accounting as :mod:`repro.skiplist`.  The
message-level version used to validate this accounting lives in
:mod:`repro.distributed.amf_protocol`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.simulation.rng import make_rng
from repro.skiplist.balanced import BalancedSkipList

__all__ = ["AMFResult", "approximate_median", "exact_median", "rank_interval"]


@dataclass
class _Entry:
    """A surviving value with the mass of discarded values assigned to it."""

    value: float
    #: Number of discarded values known to be <= ``value`` (and above the
    #: previously kept value of the same local list).
    weight_below: int = 0


@dataclass
class AMFResult:
    """Outcome of one AMF execution.

    Attributes
    ----------
    median:
        The approximate median value selected by the root.
    rounds:
        Total rounds charged: skip list construction + per-level gathering +
        final broadcast of the median.
    n:
        Number of values aggregated.
    skiplist:
        The balanced skip list built during the run.  DSG reuses it for
        distributed counts and group-id broadcasts before destroying it.
    exact:
        ``True`` when the list was small enough (``n <= a``) that the median
        was computed exactly without building a skip list.
    rank_low, rank_high:
        1-based rank interval of ``median`` within the input multiset
        (ties make it an interval).  Provided for the Lemma 1 diagnostics.
    """

    median: float
    rounds: int
    n: int
    skiplist: Optional[BalancedSkipList] = None
    exact: bool = False
    rank_low: int = 0
    rank_high: int = 0

    @property
    def rank_error(self) -> float:
        """Distance of the rank interval from the true middle ``n/2``."""
        target = self.n / 2
        if self.rank_low <= target <= self.rank_high:
            return 0.0
        return min(abs(self.rank_low - target), abs(self.rank_high - target))

    def satisfies_lemma1(self, a: int) -> bool:
        """Whether the output rank lies within ``n/2 ± n/(2a)`` (Lemma 1)."""
        slack = self.n / (2 * a)
        low = self.n / 2 - slack
        high = self.n / 2 + slack
        return not (self.rank_high < low or self.rank_low > high)


def exact_median(values: Sequence[float]) -> float:
    """Lower median of ``values`` (used for diagnostics and tiny lists)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("cannot take the median of an empty sequence")
    return ordered[(len(ordered) - 1) // 2]


def rank_interval(values: Sequence[float], chosen: float) -> Tuple[int, int]:
    """1-based rank interval of ``chosen`` within ``values`` (ties widen it)."""
    below = sum(1 for v in values if v < chosen)
    not_above = sum(1 for v in values if v <= chosen)
    return below + 1, max(not_above, below + 1)


def approximate_median(
    values: Mapping[Any, float] | Sequence[Tuple[Any, float]],
    a: int = 4,
    rng: Optional[random.Random] = None,
) -> AMFResult:
    """Run AMF over ``values`` (mapping ``list member -> value``).

    The iteration order of ``values`` is taken as the linked-list order (for
    DSG this is key order within the linked list).
    """
    if isinstance(values, Mapping):
        items: List[Any] = list(values.keys())
        value_of: Dict[Any, float] = dict(values)
    else:
        items = [item for item, _ in values]
        value_of = {item: value for item, value in values}
    if not items:
        raise ValueError("AMF needs at least one value")
    if a < 2:
        raise ValueError("the balance parameter a must be at least 2")

    all_values = [value_of[item] for item in items]
    n = len(items)

    # Small lists: the paper's construction assumes n > a; below that the
    # nodes simply gather all values along the list and take the median.
    if n <= a:
        median = exact_median(all_values)
        low, high = rank_interval(all_values, median)
        return AMFResult(
            median=median, rounds=n, n=n, skiplist=None, exact=True, rank_low=low, rank_high=high
        )

    rng = rng or make_rng()
    skiplist = BalancedSkipList(items, a=a, rng=rng)
    rounds = skiplist.construction_rounds

    h = skiplist.height - 1  # paper's h: the top (singleton) level index
    sample_size = max(2, a * max(h, 1))
    base = max(a / 2, 1.5)
    sampling_start = math.ceil(math.log(max(h, 2), base)) + 1

    # entries held by each node, starting with its own value at the base.
    held: Dict[Any, List[_Entry]] = {item: [_Entry(value=value_of[item])] for item in items}

    for level in range(skiplist.height - 1):
        segments = skiplist.segments(level)
        next_held: Dict[Any, List[_Entry]] = {}
        level_rounds = 0
        for owner, members in segments:
            gathered: List[_Entry] = []
            forwarded_values = 0
            for member in members:
                entries = held.get(member, [])
                gathered.extend(entries)
                if member != owner:
                    forwarded_values += len(entries)
            # Pipelined forwarding along the segment: one hop per round plus
            # one round per value crossing the busiest (first) link.
            level_rounds = max(level_rounds, (len(members) - 1) + forwarded_values)
            if level + 1 >= sampling_start:
                gathered = _sample(gathered, sample_size)
            next_held[owner] = gathered
        rounds += level_rounds
        held = next_held

    root_entries = held[skiplist.root]
    median, rank_estimate = _pick_median(root_entries)
    rounds += skiplist.broadcast_rounds()

    low, high = rank_interval(all_values, median)
    return AMFResult(
        median=median,
        rounds=rounds,
        n=n,
        skiplist=skiplist,
        exact=False,
        rank_low=low,
        rank_high=high,
    )


def _sample(entries: List[_Entry], sample_size: int) -> List[_Entry]:
    """Sort ``entries`` and keep a uniform sample, folding discarded mass.

    The discarded values between two kept values are assigned to the *upper*
    kept value's ``weight_below``, so the total mass (count of original
    values) is preserved exactly.
    """
    ordered = sorted(entries, key=lambda e: e.value)
    if len(ordered) <= sample_size:
        return ordered
    last = len(ordered) - 1
    kept_indices = sorted({round(i * last / (sample_size - 1)) for i in range(sample_size)})
    kept: List[_Entry] = []
    previous_index = -1
    for index in kept_indices:
        entry = ordered[index]
        discarded = ordered[previous_index + 1 : index]
        extra = sum(1 + d.weight_below for d in discarded)
        kept.append(_Entry(value=entry.value, weight_below=entry.weight_below + extra))
        previous_index = index
    # Any trailing discarded values (there are none because the last index is
    # always kept) would otherwise be lost; assert the mass is preserved.
    return kept


def _pick_median(entries: List[_Entry]) -> Tuple[float, float]:
    """Pick the entry whose accounted rank is closest to the middle."""
    ordered = sorted(entries, key=lambda e: e.value)
    total_mass = sum(1 + e.weight_below for e in ordered)
    target = total_mass / 2
    best_value = ordered[0].value
    best_rank = 0.0
    best_distance = math.inf
    cumulative = 0
    for entry in ordered:
        cumulative += entry.weight_below + 1
        distance = abs(cumulative - target)
        if distance < best_distance:
            best_distance = distance
            best_value = entry.value
            best_rank = cumulative
    return best_value, best_rank
