"""Working set machinery (paper, Section III).

Three definitions from the paper are implemented here:

* **Working set number** ``T_i(σ_i)`` for a request ``σ_i = (u, v)``:
  build the communication graph ``G`` over the requests issued since the
  previous time ``u`` and ``v`` communicated (inclusive of time ``i``), and
  count the distinct nodes reachable in ``G`` from ``u`` or ``v``.  If the
  pair communicates for the first time, ``T_i(σ_i) = n`` by definition.

* **Working set property** for a pair ``(x, y)`` at time ``i``:
  ``d_S(x, y) <= log T_i(x, y)`` (up to the constant the analysis allows).

* **Working set bound** ``WS(σ) = Σ_i log(T_i(σ_i))`` — the lower bound on
  the amortized routing cost of *any* algorithm conforming to the paper's
  self-adjusting model (Theorem 1).

The module-level functions (:func:`working_set_number` & friends) are the
direct, window-rescanning transcription of the definitions and serve as the
executable specification.  :class:`CommunicationHistory` is the production
implementation: it maintains the *recency graph* — for every node, its
communication partners ordered by the time of their last shared request —
which turns each query into a traversal whose cost is proportional to the
answer (the working set) instead of the window length, and keeps a running
sum of ``log T_i`` so the working set bound is O(1) to read.  Both
implementations agree exactly on every sequence served over a fixed
population; a regression test asserts it.  Under churn the class is the
more faithful one: each first-contact term is evaluated at the population
size ``n`` *at request time* (the number its :meth:`record` returned),
whereas the module-level recomputation can only apply one ``total_nodes``
to the whole history.

Why the recency graph is exact: an edge ``(x, y)`` appears in the window
``[p, i]`` (where ``p`` is the pair's previous request and ``i`` the current
time) if and only if its **most recent** occurrence is at time ``>= p`` —
older occurrences are redundant for membership.  Storing, per node, the
partner map in last-occurrence order therefore lets a traversal enumerate
exactly the window-incident edges of a node and stop at the first stale one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CommunicationHistory",
    "working_set_number",
    "working_set_bound",
    "working_set_numbers",
]

Node = Hashable
Request = Tuple[Node, Node]


def _reachable(adjacency: Dict[Node, Set[Node]], sources: Sequence[Node]) -> Set[Node]:
    """Nodes reachable from any of ``sources`` in an undirected graph."""
    seen: Set[Node] = set()
    stack: List[Node] = [node for node in sources if node in adjacency]
    seen.update(node for node in sources if node in adjacency)
    while stack:
        node = stack.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


def working_set_number(history: Sequence[Request], index: int, total_nodes: int) -> int:
    """Working set number ``T_index(σ_index)`` for the request at ``index``.

    This is the reference implementation: it rescans the window between the
    pair's previous occurrence and ``index`` exactly as the definition reads.

    Parameters
    ----------
    history:
        The full request sequence; ``history[index]`` is the request whose
        working set number is computed.
    index:
        Position of the request in ``history`` (0-based).
    total_nodes:
        ``n``, returned for first-time pairs as the definition requires.
    """
    if not 0 <= index < len(history):
        raise IndexError("request index out of range")
    u, v = history[index]
    pair = frozenset((u, v))

    start: Optional[int] = None
    for t in range(index - 1, -1, -1):
        if frozenset(history[t]) == pair:
            start = t
            break
    if start is None:
        return total_nodes

    adjacency: Dict[Node, Set[Node]] = {}
    for t in range(start, index + 1):
        x, y = history[t]
        adjacency.setdefault(x, set()).add(y)
        adjacency.setdefault(y, set()).add(x)
    return len(_reachable(adjacency, [u, v]))


def working_set_numbers(history: Sequence[Request], total_nodes: int) -> List[int]:
    """Working set numbers for every request of ``history`` (convenience)."""
    tracker = CommunicationHistory(total_nodes)
    numbers = []
    for u, v in history:
        numbers.append(tracker.record(u, v))
    return numbers


def working_set_bound(history: Sequence[Request], total_nodes: int, base: float = 2.0) -> float:
    """``WS(σ) = Σ_i log(T_i(σ_i))`` (Theorem 1's lower bound), log base 2.

    Working set numbers of 1 contribute 0; the paper's ``log`` is taken to
    the base ``base`` (2 unless stated otherwise).
    """
    total = 0.0
    for number in working_set_numbers(history, total_nodes):
        total += math.log(max(number, 1), base)
    return total


@dataclass
class CommunicationHistory:
    """Incrementally maintained request log with working-set queries.

    Per request, :meth:`record` appends to the log, refreshes the recency
    graph (each endpoint's partner map is re-inserted so iteration order is
    last-occurrence order) and answers the working set number with a
    traversal over window-fresh edges only.  First-time pairs are O(1) (the
    definition returns ``n`` outright); repeated pairs pay O(working set
    edges), never O(window) — the traversal stops at the first edge whose
    last occurrence predates the window.

    A running sum of ``log T_i`` makes :meth:`working_set_bound` O(1)
    instead of a full-history recomputation.
    """

    total_nodes: int
    requests: List[Request] = field(default_factory=list)
    _last_seen: Dict[frozenset, int] = field(default_factory=dict)
    # node -> {partner -> time of their last shared request}, insertion
    # (= iteration) order kept ascending in that time by re-insertion.
    _recency: Dict[Node, Dict[Node, int]] = field(default_factory=dict)
    _log_sum: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)

    def record(self, u: Node, v: Node) -> int:
        """Append the request ``(u, v)`` and return its working set number."""
        pair = frozenset((u, v))
        previous = self._last_seen.get(pair)
        index = len(self.requests)
        self.requests.append((u, v))
        self._last_seen[pair] = index
        self._refresh_edge(u, v, index)
        if u != v:
            self._refresh_edge(v, u, index)
        if previous is None:
            number = self.total_nodes
        else:
            number = self._working_set_size(u, v, previous)
        self._log_sum += math.log(max(number, 1))
        return number

    def peek(self, u: Node, v: Node) -> int:
        """Working set number the pair *would* have if it communicated now.

        Does not mutate the history.  The hypothetical request's window
        starts at the pair's previous occurrence, whose edge is by
        construction already fresh enough, so the traversal needs no
        temporary edge insertion.
        """
        previous = self._last_seen.get(frozenset((u, v)))
        if previous is None:
            return self.total_nodes
        return self._working_set_size(u, v, previous)

    def working_set_bound(self, base: float = 2.0) -> float:
        """``WS(σ)`` of everything recorded so far (O(1), running sum).

        Each term is ``log`` of the working set number :meth:`record`
        returned at the time — so first-contact terms use the population
        size as of that request, which is what makes the bound well-defined
        when ``total_nodes`` changes under churn.  For a fixed population
        this equals ``working_set_bound(self.requests, self.total_nodes)``.
        """
        return self._log_sum / math.log(base)

    def last_time_of_pair(self, u: Node, v: Node) -> Optional[int]:
        return self._last_seen.get(frozenset((u, v)))

    # ------------------------------------------------------------- internals
    def _refresh_edge(self, node: Node, partner: Node, time: int) -> None:
        """Move ``partner`` to the most-recent end of ``node``'s partner map."""
        partners = self._recency.get(node)
        if partners is None:
            self._recency[node] = {partner: time}
            return
        if partner in partners:
            del partners[partner]
        partners[partner] = time

    def _working_set_size(self, u: Node, v: Node, window_start: int) -> int:
        """Size of the component of ``u``/``v`` over edges last seen in window.

        Iterates every visited node's partner map newest-first and stops at
        the first partner whose last shared request predates ``window_start``
        — all remaining entries are older still.
        """
        recency = self._recency
        seen = {u, v}
        stack = [u, v]
        while stack:
            partners = recency.get(stack.pop())
            if not partners:
                continue
            for partner in reversed(partners):
                if partners[partner] < window_start:
                    break
                if partner not in seen:
                    seen.add(partner)
                    stack.append(partner)
        return len(seen)
