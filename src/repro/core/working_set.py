"""Working set machinery (paper, Section III).

Three definitions from the paper are implemented here:

* **Working set number** ``T_i(σ_i)`` for a request ``σ_i = (u, v)``:
  build the communication graph ``G`` over the requests issued since the
  previous time ``u`` and ``v`` communicated (inclusive of time ``i``), and
  count the distinct nodes reachable in ``G`` from ``u`` or ``v``.  If the
  pair communicates for the first time, ``T_i(σ_i) = n`` by definition.

* **Working set property** for a pair ``(x, y)`` at time ``i``:
  ``d_S(x, y) <= log T_i(x, y)`` (up to the constant the analysis allows).

* **Working set bound** ``WS(σ) = Σ_i log(T_i(σ_i))`` — the lower bound on
  the amortized routing cost of *any* algorithm conforming to the paper's
  self-adjusting model (Theorem 1).

The :class:`CommunicationHistory` incrementally maintains the request log so
that DSG simulations can query working set numbers per request without
re-scanning the full history each time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CommunicationHistory",
    "working_set_number",
    "working_set_bound",
    "working_set_numbers",
]

Node = Hashable
Request = Tuple[Node, Node]


def _reachable(adjacency: Dict[Node, Set[Node]], sources: Sequence[Node]) -> Set[Node]:
    """Nodes reachable from any of ``sources`` in an undirected graph."""
    seen: Set[Node] = set()
    stack: List[Node] = [node for node in sources if node in adjacency]
    seen.update(node for node in sources if node in adjacency)
    while stack:
        node = stack.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


def working_set_number(history: Sequence[Request], index: int, total_nodes: int) -> int:
    """Working set number ``T_index(σ_index)`` for the request at ``index``.

    Parameters
    ----------
    history:
        The full request sequence; ``history[index]`` is the request whose
        working set number is computed.
    index:
        Position of the request in ``history`` (0-based).
    total_nodes:
        ``n``, returned for first-time pairs as the definition requires.
    """
    if not 0 <= index < len(history):
        raise IndexError("request index out of range")
    u, v = history[index]
    pair = frozenset((u, v))

    start: Optional[int] = None
    for t in range(index - 1, -1, -1):
        if frozenset(history[t]) == pair:
            start = t
            break
    if start is None:
        return total_nodes

    adjacency: Dict[Node, Set[Node]] = {}
    for t in range(start, index + 1):
        x, y = history[t]
        adjacency.setdefault(x, set()).add(y)
        adjacency.setdefault(y, set()).add(x)
    return len(_reachable(adjacency, [u, v]))


def working_set_numbers(history: Sequence[Request], total_nodes: int) -> List[int]:
    """Working set numbers for every request of ``history`` (convenience)."""
    tracker = CommunicationHistory(total_nodes)
    numbers = []
    for u, v in history:
        numbers.append(tracker.record(u, v))
    return numbers


def working_set_bound(history: Sequence[Request], total_nodes: int, base: float = 2.0) -> float:
    """``WS(σ) = Σ_i log(T_i(σ_i))`` (Theorem 1's lower bound), log base 2.

    Working set numbers of 1 contribute 0; the paper's ``log`` is taken to
    the base ``base`` (2 unless stated otherwise).
    """
    total = 0.0
    for number in working_set_numbers(history, total_nodes):
        total += math.log(max(number, 1), base)
    return total


@dataclass
class CommunicationHistory:
    """Incrementally maintained request log with working-set queries.

    The naive definition requires, per request, a scan back to the previous
    occurrence of the pair and a reachability computation over that window.
    This class keeps the full log and the last occurrence index of every
    pair, so :meth:`record` only pays for the window scan (which is what the
    definition inherently requires).
    """

    total_nodes: int
    requests: List[Request] = field(default_factory=list)
    _last_seen: Dict[frozenset, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    def record(self, u: Node, v: Node) -> int:
        """Append the request ``(u, v)`` and return its working set number."""
        pair = frozenset((u, v))
        previous = self._last_seen.get(pair)
        index = len(self.requests)
        self.requests.append((u, v))
        self._last_seen[pair] = index
        if previous is None:
            return self.total_nodes

        adjacency: Dict[Node, Set[Node]] = {}
        for t in range(previous, index + 1):
            x, y = self.requests[t]
            adjacency.setdefault(x, set()).add(y)
            adjacency.setdefault(y, set()).add(x)
        return len(_reachable(adjacency, [u, v]))

    def peek(self, u: Node, v: Node) -> int:
        """Working set number the pair *would* have if it communicated now."""
        pair = frozenset((u, v))
        previous = self._last_seen.get(pair)
        if previous is None:
            return self.total_nodes
        adjacency: Dict[Node, Set[Node]] = {}
        for t in range(previous, len(self.requests)):
            x, y = self.requests[t]
            adjacency.setdefault(x, set()).add(y)
            adjacency.setdefault(y, set()).add(x)
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
        return len(_reachable(adjacency, [u, v]))

    def working_set_bound(self, base: float = 2.0) -> float:
        """``WS(σ)`` of everything recorded so far."""
        return working_set_bound(self.requests, self.total_nodes, base=base)

    def last_time_of_pair(self, u: Node, v: Node) -> Optional[int]:
        return self._last_seen.get(frozenset((u, v)))
