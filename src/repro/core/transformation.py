"""The level-by-level topology transformation (paper, Section IV-C/IV-F).

Starting from the highest common linked list ``l_alpha`` of the
communicating pair, the transformation splits every affected linked list
into its 0-sublist and 1-sublist, level by level, until all involved nodes
are singletons.  Each split:

1. computes the approximate median ``M`` of the members' priorities (AMF);
2. assigns each member to the 0- or 1-subgraph:

   * Case 1 (``M`` positive): by direct priority comparison, which splits
     the merged group and records the *is-dominating-group* flags;
   * Case 2 (``M`` negative): if a non-communicating group ``g_s``
     straddles the median, the 1/3-2/3 rules of the paper decide whether
     ``g_s`` is split (using the dominating flags), moved wholesale to the
     lighter side, or moved wholesale to the 1-subgraph;

3. reassigns group-ids of split groups (Section IV-D);
4. re-checks the a-balance property and inserts *dummy nodes* into the
   sibling sublist to break over-long runs (Section IV-F);
5. recomputes priorities with rule P4 for the sublist that does not contain
   the communicating pair.

Round accounting: every split charges the AMF rounds (skip list
construction, convergecast, broadcast), the distributed-count rounds when
Case 2 needs ``|g_s|``/``|L_low|``/``|L_high|``, the group-id broadcast when
a group splits, the ``<= a``-round neighbour search for building the new
lists, and a constant for the chain detection.  Sibling sublists transform
in parallel, so the transformation cost of a request is the *critical path*
(max over children), while ``total_work_rounds`` accumulates everything for
message-count analyses.

Structurally, :func:`transform` is a *planner* over the local-operation
kernel (:mod:`repro.core.local_ops`): every membership write and dummy
insertion flows through an :class:`~repro.core.local_ops.OpRecorder`, and
the emitted sequence (``TransformationOutcome.ops``) is a self-contained
plan — replaying it with :func:`~repro.core.local_ops.apply_ops` on a copy
of the pre-request graph reproduces the post-request graph, which is how
the distributed protocol (:mod:`repro.distributed.dsg_protocol`) executes
the same transformation as O(log n)-bit messages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, MutableMapping, Optional, Sequence, Set, Tuple

from repro.core.amf import AMFResult, approximate_median, exact_median
from repro.core.groups import assign_group_ids_after_split, find_straddled_group
from repro.core.local_ops import LocalOp, OpRecorder
from repro.core.priorities import COMMUNICATING_PRIORITY, _require_positive_identifier
from repro.core.state import DSGNodeState
from repro.skipgraph.skipgraph import SkipGraph
from repro.skiplist.distributed_sum import distributed_sum

__all__ = ["SplitStep", "TransformationOutcome", "transform"]

Key = Hashable

#: Rounds charged for the local a-balance chain detection at each split.
CHAIN_CHECK_ROUNDS = 2
#: Rounds charged for placing one dummy node (identifier pick + linking).
DUMMY_PLACEMENT_ROUNDS = 2


@dataclass
class SplitStep:
    """Record of one linked-list split (one level of one branch)."""

    level: int                       # level whose membership bit was assigned
    members: List[Key]
    median: float
    case: str                        # "pair", "positive", "negative-*", "exact"
    zero_list: List[Key]
    one_list: List[Key]
    rounds: int
    split_group_ids: List[Key] = field(default_factory=list)
    dummies: List[Key] = field(default_factory=list)


@dataclass
class TransformationOutcome:
    """Aggregate result of one transformation.

    ``ops`` is the emitted local-operation plan (see
    :mod:`repro.core.local_ops`).  When the caller passed its own
    :class:`~repro.core.local_ops.OpRecorder` into :func:`transform` the
    list is the recorder's full sequence — including any ops the caller
    recorded before the transformation (the DSG front end records the
    dummy self-destructions of ``l_alpha`` there first).
    """

    rounds: int                      # critical-path rounds (parallel branches)
    total_work_rounds: int           # sum of the rounds of every split
    amf_calls: int
    steps: List[SplitStep]
    received_medians: Dict[Key, Dict[int, float]]
    split_levels: Dict[Key, List[int]]
    d_prime: int
    dummies_added: List[Key]
    ops: List[LocalOp] = field(default_factory=list)

    @property
    def levels_rebuilt(self) -> int:
        return len({step.level for step in self.steps})


def transform(
    graph: SkipGraph,
    states: MutableMapping[Key, DSGNodeState],
    members: Sequence[Key],
    priorities: MutableMapping[Key, float],
    u: Key,
    v: Key,
    alpha: int,
    t: int,
    a: int,
    rng: random.Random,
    use_exact_median: bool = False,
    maintain_a_balance: bool = True,
    recorder: Optional[OpRecorder] = None,
) -> TransformationOutcome:
    """Transform the subtree rooted at ``l_alpha`` so that ``u``-``v`` become adjacent.

    Every structural write goes through ``recorder`` (created over ``graph``
    when not supplied), so the outcome carries the local-op plan alongside
    the cost accounting.
    """
    members = sorted(members)
    if recorder is None:
        recorder = OpRecorder(graph)
    outcome = TransformationOutcome(
        rounds=0,
        total_work_rounds=0,
        amf_calls=0,
        steps=[],
        received_medians={key: {} for key in members},
        split_levels={},
        d_prime=alpha,
        dummies_added=[],
        ops=recorder.ops,
    )

    # The rebuilt subtree replaces whatever was below level ``alpha``: every
    # involved node forgets its deeper membership bits and re-acquires them
    # level by level ("finds their new and complete membership vectors").
    # One run: the members are sorted and share their first ``alpha`` bits,
    # so a batched recorder truncates the whole subtree in a single pass.
    recorder.demote_run(members, alpha)

    if set(members) == {u, v}:
        outcome.d_prime = alpha

    critical = _split_recursive(
        graph=graph,
        states=states,
        members=members,
        priorities=priorities,
        level=alpha + 1,
        u=u,
        v=v,
        alpha=alpha,
        t=t,
        a=a,
        rng=rng,
        use_exact_median=use_exact_median,
        maintain_a_balance=maintain_a_balance,
        outcome=outcome,
        recorder=recorder,
    )
    outcome.rounds = critical
    return outcome


# --------------------------------------------------------------------------- recursion
def _split_recursive(
    graph: SkipGraph,
    states: MutableMapping[Key, DSGNodeState],
    members: List[Key],
    priorities: MutableMapping[Key, float],
    level: int,
    u: Key,
    v: Key,
    alpha: int,
    t: int,
    a: int,
    rng: random.Random,
    use_exact_median: bool,
    maintain_a_balance: bool,
    outcome: TransformationOutcome,
    recorder: OpRecorder,
) -> int:
    """Split ``members`` (a linked list at ``level - 1``) and recurse.

    Returns the critical-path rounds of this branch.
    """
    if len(members) < 2:
        return 0

    contains_pair = u in members and v in members

    # ------------------------------------------------------------ median
    if contains_pair and set(members) == {u, v}:
        median = COMMUNICATING_PRIORITY
        amf_result: Optional[AMFResult] = None
        step_rounds = 1
        case = "pair"
        zero_list, one_list = [u], [v]
        outcome.d_prime = level - 1
    else:
        # Priorities are totally ordered as (priority, finer group-id, key)
        # triples: ties in raw priority (common when rule T2 stamped a whole
        # group with the same value) are broken first by the node's group-id
        # at the level being assigned — so members of the same finer group
        # stay contiguous in the order and are only separated when the median
        # falls inside their block — and finally by key so the order is
        # total.  This keeps the skip graph height bounded (Lemma 5) while
        # preserving the group cohesion the working set property relies on
        # (see DESIGN.md, "Simplifications").
        ordered_values = {}
        for key in members:
            state = states[key]
            group = state.group_ids.get(level, state.uid)
            if type(group) is not int:  # bool / non-int ids take the slow path
                group = _group_rank(state, level)
            ordered_values[key] = (priorities[key], group, key)
        if use_exact_median:
            median_pair = exact_median(list(ordered_values.values()))
            amf_result = None
            step_rounds = 2 * max(1, math.ceil(math.log2(len(members))))
            case = "exact"
        else:
            # Rank diagnostics (Lemma 1 instrumentation) are skipped on the
            # serving path: two O(n) scans per split that nothing reads.
            amf_result = approximate_median(ordered_values, a=a, rng=rng, diagnostics=False)
            median_pair = amf_result.median
            step_rounds = amf_result.rounds
            case = "amf"
        outcome.amf_calls += 0 if use_exact_median else 1
        median = median_pair[0]

        received_medians = outcome.received_medians
        parent_level = level - 1
        for key in members:
            per_key = received_medians.get(key)
            if per_key is None:
                received_medians[key] = {parent_level: median}
            else:
                per_key[parent_level] = median

        zero_list, one_list, case_label, extra_rounds = _assign(
            graph=graph,
            states=states,
            members=members,
            order=ordered_values,
            median_pair=median_pair,
            level=level,
            u=u,
            v=v,
            t=t,
            amf_result=amf_result,
        )
        case = case_label if case == "amf" else f"{case}-{case_label}"
        step_rounds += extra_rounds

    # ------------------------------------------------------------ apply bits
    # Each sublist is one commuting run (distinct keys, same level, same
    # bit): a batched recorder splices the new level list in one pass.
    recorder.promote_run(zero_list, level, 0)
    recorder.promote_run(one_list, level, 1)

    # Finding the new left/right neighbours costs at most ``a`` rounds thanks
    # to the a-balance property (Section IV-C).
    step_rounds += a

    # ------------------------------------------------------------ group ids
    split_group_ids = assign_group_ids_after_split(
        states=states,
        zero_list=zero_list,
        one_list=one_list,
        level=level,
        parent_level=level - 1,
        u=u,
        v=v,
    )
    if split_group_ids:
        # New group-id broadcast over the balanced skip list (Section IV-D).
        step_rounds += (
            amf_result.skiplist.broadcast_rounds()
            if amf_result is not None and amf_result.skiplist is not None
            else max(1, math.ceil(math.log2(len(members))))
        )
        split_parent_groups = set(split_group_ids)
        parent = level - 1
        uid_u = states[u].uid
        for key in members:
            state = states[key]
            gid = state.group_ids.get(parent, state.uid)
            if gid in split_parent_groups or (contains_pair and gid == uid_u):
                outcome.split_levels.setdefault(key, []).append(parent)

    # ------------------------------------------------------------ dummies
    dummies: List[Key] = []
    if maintain_a_balance:
        dummies = _break_chains(graph, members, zero_list, one_list, level, a, rng, u, v, recorder)
        if dummies:
            step_rounds += CHAIN_CHECK_ROUNDS + DUMMY_PLACEMENT_ROUNDS
        else:
            step_rounds += CHAIN_CHECK_ROUNDS
        outcome.dummies_added.extend(dummies)

    if set(zero_list) == {u, v}:
        outcome.d_prime = level

    step = SplitStep(
        level=level,
        members=list(members),
        median=median,
        case=case,
        zero_list=list(zero_list),
        one_list=list(one_list),
        rounds=step_rounds,
        split_group_ids=split_group_ids,
        dummies=dummies,
    )
    outcome.steps.append(step)
    outcome.total_work_rounds += step_rounds

    # ------------------------------------------------------------ P4 + recurse
    child_rounds = []
    for child in (zero_list, one_list):
        if len(child) < 2:
            continue
        child_has_pair = u in child and v in child
        if not child_has_pair:
            # Rule P4 inlined (see recompute_priority_p4): one dict probe per
            # member on the hottest loop of the recursion.
            next_level = level + 1
            for key in child:
                state = states[key]
                group = state.group_ids.get(level, state.uid)
                if type(group) is not int or group <= 0:
                    _require_positive_identifier(group)
                priorities[key] = float(-(group * t) + state.timestamps.get(next_level, 0))
        child_rounds.append(
            _split_recursive(
                graph=graph,
                states=states,
                members=child,
                priorities=priorities,
                level=level + 1,
                u=u,
                v=v,
                alpha=alpha,
                t=t,
                a=a,
                rng=rng,
                use_exact_median=use_exact_median,
                maintain_a_balance=maintain_a_balance,
                outcome=outcome,
                recorder=recorder,
            )
        )
    return step_rounds + (max(child_rounds) if child_rounds else 0)


def _group_rank(state: DSGNodeState, level: int) -> int:
    """Secondary sort component: the node's group-id at ``level``.

    Group-ids are positive integers uncorrelated with key order, so using
    them as a tie-break keeps members of the same (finer) group adjacent in
    the priority order without biasing which side of the median they land on.
    """
    group = state.group_ids.get(level, state.uid)
    if isinstance(group, bool) or not isinstance(group, int):
        return 0
    return group


# --------------------------------------------------------------------------- assignment
def _assign(
    graph: SkipGraph,
    states: Mapping[Key, DSGNodeState],
    members: List[Key],
    order: Mapping[Key, Tuple[float, Key]],
    median_pair: Tuple[float, Key],
    level: int,
    u: Key,
    v: Key,
    t: int,
    amf_result: Optional[AMFResult],
) -> Tuple[List[Key], List[Key], str, int]:
    """Decide which members move to the 0- and 1-subgraph.

    ``order`` maps every member to its ``(priority, key)`` pair and
    ``median_pair`` is the approximate median of those pairs; the numeric
    median (used by the Case 2 band test) is ``median_pair[0]``.

    Returns ``(zero_list, one_list, case_label, extra_rounds)``.
    """
    median = median_pair[0]
    if median >= 0:
        zero, one = _split_by_order(members, order, median_pair, u, v)
        # Case 1 records the is-dominating-group flags for this level.
        for key in zero:
            states[key].set_dominating(level, True)
        for key in one:
            states[key].set_dominating(level, False)
        return zero, one, "positive", 0

    straddled = find_straddled_group(
        states=states, members=members, level=level - 1, median=median, t=t, exclude=(u, v)
    )
    if straddled is None:
        zero, one = _split_by_order(members, order, median_pair, u, v)
        return zero, one, "negative-clean", 0

    # Case 2 proper: the distributed counts |g_s|, |L_low|, |L_high| cost one
    # aggregation over the balanced skip list built by AMF (Appendix D).
    extra_rounds = _count_rounds(amf_result, members)
    gs = set(straddled)
    size_gs = len(gs)
    size_list = len(members)

    if size_gs * 3 > 2 * size_list:  # |g_s| > 2/3 |l_d|
        one = [key for key in members if key in gs and states[key].is_dominating(level)]
        one_set = set(one)
        zero = [key for key in members if key not in one_set]
        if not one:
            # No member of g_s carries a dominating flag (the group was never
            # formed by a positive median).  Fall back to halving the group
            # so the height bound of Lemma 5 still holds.
            zero, one = _fallback_split(graph, members, gs, level, u, v)
        return sorted(zero), sorted(one), "negative-split-dominating", extra_rounds

    if size_gs * 3 < size_list:  # |g_s| < 1/3 |l_d|
        low_count = sum(1 for key in members if order[key] < median_pair)
        high_count = size_list - low_count
        zero = [key for key in members if key not in gs and order[key] >= median_pair]
        one = [key for key in members if key not in gs and order[key] < median_pair]
        if high_count < low_count:
            zero.extend(straddled)
        else:
            one.extend(straddled)
        return sorted(zero), sorted(one), "negative-small-gs", extra_rounds

    # 1/3 |l_d| <= |g_s| <= 2/3 |l_d|
    one = list(straddled)
    zero = [key for key in members if key not in gs]
    return sorted(zero), sorted(one), "negative-move-gs", extra_rounds


def _split_by_order(
    members: List[Key],
    order: Mapping[Key, Tuple[float, Key]],
    median_pair: Tuple[float, Key],
    u: Key,
    v: Key,
) -> Tuple[List[Key], List[Key]]:
    """Direct comparison split with a progress guarantee.

    The paper's rule sends ``P(x) >= M`` to the 0-subgraph and the rest to
    the 1-subgraph; with the (priority, key) order the comparison is strict
    enough that both sides are non-empty except when the approximate median
    happens to be the minimum, in which case the member holding it is
    demoted (progress guarantee).
    """
    zero = [key for key in members if order[key] >= median_pair]
    one = [key for key in members if order[key] < median_pair]
    if not one:
        demote = [key for key in members if order[key] == median_pair and key not in (u, v)]
        if demote:
            demote_set = set(demote)
            zero = [key for key in members if key not in demote_set]
            one = demote
        else:
            # Everyone is a communicating node or strictly above the median;
            # the caller handles the {u, v} pair case before reaching here.
            keep = [key for key in members if key in (u, v)]
            rest = [key for key in members if key not in (u, v)]
            half = len(rest) // 2
            zero = keep + rest[:half]
            one = rest[half:]
    elif not zero:
        # Degenerate case for P4-only lists (no communicating member).
        promote = [key for key in members if order[key] == median_pair]
        promote_set = set(promote)
        zero = promote
        one = [key for key in members if key not in promote_set]
        if not one:
            half = max(1, len(members) // 2)
            zero, one = members[:half], members[half:]
    return sorted(zero), sorted(one)


def _fallback_split(
    graph: SkipGraph,
    members: List[Key],
    gs: Set[Key],
    level: int,
    u: Key,
    v: Key,
) -> Tuple[List[Key], List[Key]]:
    """Split a dominating group with no usable dominating flags (see _assign)."""
    gs_members = [key for key in members if key in gs]
    others = [key for key in members if key not in gs]
    half = max(1, len(gs_members) // 2)
    zero = others + gs_members[:half]
    one = gs_members[half:]
    if not one:
        last = gs_members[-1]
        one = [last]
        zero = [key for key in members if key != last]
    return zero, one


def _count_rounds(amf_result: Optional[AMFResult], members: Sequence[Key]) -> int:
    """Rounds to compute |g_s|, |L_low|, |L_high| with the AMF skip list."""
    if amf_result is not None and amf_result.skiplist is not None:
        ones = {key: 1.0 for key in amf_result.skiplist.levels[0]}
        return distributed_sum(amf_result.skiplist, ones).rounds
    return max(1, math.ceil(math.log2(max(2, len(members)))))


# --------------------------------------------------------------------------- dummies
def _break_chains(
    graph: SkipGraph,
    members: List[Key],
    zero_list: List[Key],
    one_list: List[Key],
    level: int,
    a: int,
    rng: random.Random,
    u: Key,
    v: Key,
    recorder: OpRecorder,
) -> List[Key]:
    """Insert dummy nodes to break runs longer than ``a`` (Section IV-F).

    A run of more than ``a`` consecutive members of the parent list moving to
    the same sublist violates the a-balance property; a dummy node with the
    sibling bit is inserted between the ``a``-th and ``a+1``-th node of the
    run.  The dummy's key is chosen strictly between its neighbours so the
    base-level order stays sorted; its membership vector is the parent-list
    prefix plus the sibling bit (it never descends further and never
    participates in transformations).  A dummy is never placed in a key
    interval containing ``u`` or ``v``: the sibling sublist is where the
    communicating pair lives, and a dummy keyed between them would deny them
    the direct link the model requires.

    The run detection walks the *actual* parent list — real members with
    their freshly assigned bits plus any dummy node already living in that
    list (whose bit, or absence of one, also affects the runs).
    """
    zero_set = set(zero_list)
    one_set = set(one_list)
    dummies: List[Key] = []
    # The placements are collected and landed in one batch at the end of the
    # pass: ``ordered`` is a snapshot, a dummy never changes another node's
    # membership, and the key draws consult ``dummies`` for keys this pass
    # already claimed — so the batch is byte-identical (ops, RNG stream,
    # dirty marks) to inserting at each detection point.
    pending: List[Tuple[Key, Tuple[int, ...]]] = []
    parent_prefix = graph.membership(members[0]).prefix(level - 1)
    ordered = graph.list_members(level - 1, parent_prefix) if level >= 1 else sorted(members)
    run_bit: Optional[int] = None
    run_length = 0
    for index, key in enumerate(ordered):
        if key in zero_set:
            bit: Optional[int] = 0
        elif key in one_set:
            bit = 1
        else:
            membership = graph.membership(key)
            bit = membership.bit(level) if len(membership) >= level else None
        if bit is None:
            run_bit = None
            run_length = 0
            continue
        if bit == run_bit:
            run_length += 1
        else:
            run_bit = bit
            run_length = 1
        if run_length > a:
            previous_key = ordered[index - 1]
            sibling_bit = 1 - bit
            if sibling_bit == 0 and set(zero_list) == {u, v}:
                # The dummy would join the size-two sublist that realises the
                # pair's direct link; if its key could land between u and v
                # it would deny them that link, so the chain is left alone
                # here (documented deviation, see DESIGN.md).
                low_uv, high_uv = (u, v) if u < v else (v, u)
                if not (key <= low_uv or previous_key >= high_uv):
                    continue
            dummy_key = _pick_dummy_key(graph, previous_key, key, rng, taken=dummies)
            if dummy_key is None:
                continue
            prefix = graph.membership(previous_key).prefix(level - 1)
            pending.append((dummy_key, prefix.bits + (1 - bit,)))
            dummies.append(dummy_key)
            run_length = 1
    recorder.insert_dummy_run(pending)
    return dummies


def _pick_dummy_key(
    graph: SkipGraph,
    lower: Key,
    upper: Key,
    rng: random.Random,
    taken: Sequence[Key] = (),
) -> Optional[Key]:
    """A fresh key strictly between ``lower`` and ``upper`` (float interpolation).

    ``taken`` holds keys claimed by not-yet-landed placements of the same
    batch; rejecting them reproduces the ``has_node`` answer an immediate
    insertion would have given.
    """
    try:
        low = float(lower)
        high = float(upper)
    except (TypeError, ValueError):
        return None
    if not low < high:
        return None
    for _ in range(16):
        fraction = 0.25 + 0.5 * rng.random()
        candidate = low + (high - low) * fraction
        if (
            candidate != low
            and candidate != high
            and candidate not in taken
            and not graph.has_node(candidate)
        ):
            return candidate
    return None
