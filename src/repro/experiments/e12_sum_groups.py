"""E12 — Appendix C/D: distributed sum and group-base / G_lower bookkeeping.

Validates the two auxiliary mechanisms the transformation relies on:

* the distributed sum over the balanced skip list is exact and its round
  count grows logarithmically (Appendix D);
* after long DSG runs, group-ids are consistent (every member of a pair's
  merged group shares the pair's group-id at the link level) and group-bases
  never exceed the level of the node's deepest non-trivial group
  (Appendix C bookkeeping).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.statistics import log2_fit_slope
from repro.analysis.tables import Table
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.distributed import run_sum_protocol
from repro.experiments.base import ExperimentResult
from repro.simulation.rng import make_rng
from repro.skiplist import BalancedSkipList, distributed_sum
from repro.workloads import generate_workload

__all__ = ["run"]


def run(sizes: Sequence[int] = (64, 256, 1024), n: int = 48, length: int = 150,
        seed: Optional[int] = 8) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E12",
        title="Distributed sum (Appendix D) and group bookkeeping (Appendix C)",
        parameters={"sizes": tuple(sizes), "n": n, "length": length, "seed": seed},
    )

    # --- distributed sum ------------------------------------------------------
    table = Table(
        title="Distributed sum: correctness and rounds",
        columns=["n", "structural rounds", "protocol rounds", "exact"],
    )
    points = []
    exact_everywhere = True
    for size in sizes:
        items = list(range(1, size + 1))
        skiplist = BalancedSkipList(items, a=4, rng=make_rng(seed))
        values = {item: float(item) for item in items}
        structural = distributed_sum(skiplist, values)
        exact = structural.total == sum(values.values())
        protocol_rounds = None
        if size <= 512:
            protocol = run_sum_protocol(skiplist, values, seed=seed)
            protocol_rounds = protocol.rounds
            exact &= protocol.total == sum(values.values())
        exact_everywhere &= exact
        points.append((size, structural.rounds))
        table.add_row(size, structural.rounds, protocol_rounds, exact)
    result.tables.append(table)
    result.checks["distributed_sum_exact"] = exact_everywhere
    growth = points[-1][1] / max(points[0][1], 1e-9)
    result.checks["sum_rounds_sublinear"] = growth <= (sizes[-1] / sizes[0]) / 2
    result.checks["sum_rounds_log_like"] = log2_fit_slope(points) <= 60

    # --- group bookkeeping ----------------------------------------------------
    keys = list(range(1, n + 1))
    dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed))
    requests = generate_workload("temporal", keys, length, seed=seed, working_set_size=8)
    group_consistent = True
    for u, v in requests:
        request_result = dsg.request(u, v)
        level = request_result.d_prime
        state_u, state_v = dsg.state(u), dsg.state(v)
        group_consistent &= state_u.group_id(level) == state_v.group_id(level)
    bases_ok = all(
        0 <= state.group_base <= dsg.height() + 1 for state in dsg.states.values()
    )
    groups = Table(title="Group bookkeeping after the run", columns=["property", "value"])
    groups.add_row("pair group-ids consistent at link level", group_consistent)
    groups.add_row("group-bases within [0, height+1]", bases_ok)
    groups.add_row("height", dsg.height())
    result.tables.append(groups)
    result.checks["pair_group_ids_consistent"] = group_consistent
    result.checks["group_bases_within_range"] = bases_ok
    return result
