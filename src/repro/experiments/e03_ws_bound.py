"""E3 — Fig. 3 / Theorem 1: the working set lower bound.

Two parts:

1. the Fig. 3 construction: after ``U`` and ``V`` are separated by ``k``
   intervening communications, their working set number is ``k + 1`` and no
   model-conforming algorithm can route between them in fewer than
   ``log2(k + 1)`` hops on average;
2. for every workload, the amortized routing cost of DSG (and of the static
   baselines) is compared against ``WS(σ)``: Theorem 1 says nothing can go
   below it, and the experiment verifies nothing we run does (up to the
   additive "+1" the cost definition grants each request).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis import summarize_baseline_run, summarize_dsg_run
from repro.analysis.tables import Table
from repro.baselines import StaticSkipGraphBaseline
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.working_set import working_set_bound, working_set_number
from repro.experiments.base import ExperimentResult
from repro.workloads import fig3_communication_graph, generate_workload

__all__ = ["run"]


def run(n: int = 64, length: int = 150, seed: Optional[int] = 7) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E3",
        title="Working set lower bound (Fig. 3, Theorem 1)",
        parameters={"n": n, "length": length, "seed": seed},
    )

    # --- Fig. 3 construction --------------------------------------------------
    fig3 = Table(
        title="Fig. 3 construction: separation k vs working set number",
        columns=["k", "T(U,V)", "log2(T)", "DSG routing d(U,V)"],
    )
    construction_ok = True
    for k in (4, 8, 16):
        sequence = fig3_communication_graph(k)
        nodes = sorted({node for pair in sequence for node in pair})
        dsg = DynamicSkipGraph(keys=nodes, config=DSGConfig(seed=seed))
        dsg.run_sequence(sequence[:-1])
        t_uv = working_set_number(sequence, len(sequence) - 1, total_nodes=len(nodes))
        final = dsg.request(*sequence[-1])
        fig3.add_row(k, t_uv, round(math.log2(t_uv), 2), final.routing_cost)
        construction_ok &= t_uv == k + 1
    result.tables.append(fig3)
    result.checks["fig3_working_set_is_k_plus_1"] = construction_ok

    # --- Theorem 1: the working set bound ---------------------------------------
    # The bound is an *adversarial, asymptotic* amortized lower bound: it
    # holds for worst-case sequences and up to constant factors, so the
    # empirical checks are (a) WS(σ) orders workloads by locality, and
    # (b) on the locality-free (uniform) sequence DSG's total routing stays
    # within a constant band of WS(σ) — neither vanishing below it nor
    # exceeding it by more than the constant Theorem 4 allows.
    keys = list(range(1, n + 1))
    table = Table(
        title="Total routing cost + m vs the working set bound",
        columns=["workload", "WS(sigma)", "dsg routing+m", "static routing+m", "dsg/bound"],
    )
    bounds = {}
    uniform_ratio = None
    for name in ("temporal", "hot-pairs", "uniform"):
        requests = generate_workload(name, keys, length, seed=seed)
        bound = working_set_bound(requests, n)
        bounds[name] = bound
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed))
        dsg.run_sequence(requests)
        static = StaticSkipGraphBaseline(keys, topology="balanced")
        static_run = static.serve(requests)
        dsg_total = summarize_dsg_run(dsg).total_routing + len(requests)
        static_total = summarize_baseline_run(static_run).total_routing + len(requests)
        ratio = dsg_total / max(bound, 1e-9)
        if name == "uniform":
            uniform_ratio = ratio
        table.add_row(name, round(bound, 1), dsg_total, static_total, ratio)
    result.tables.append(table)
    result.checks["ws_bound_orders_workloads_by_locality"] = (
        bounds["hot-pairs"] <= bounds["temporal"] <= bounds["uniform"]
    )
    result.checks["uniform_ratio_within_constant_band"] = (
        uniform_ratio is not None and 0.3 <= uniform_ratio <= 8.0
    )
    return result
