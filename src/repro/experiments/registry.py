"""Registry of all experiments (DESIGN.md index E1-E12, plus E13 scale)."""

from __future__ import annotations

from typing import Dict

from repro.experiments import (
    e01_structure,
    e02_working_set,
    e03_ws_bound,
    e04_fig4,
    e05_amf_accuracy,
    e06_amf_rounds,
    e07_height_bounds,
    e08_ws_property,
    e09_comparison,
    e10_dummy_abalance,
    e11_congest,
    e12_sum_groups,
    e13_scale,
)
from repro.experiments.base import ExperimentResult, ExperimentSpec

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "E1": ExperimentSpec("E1", "Skip graph structure and tree view", "Fig. 1", e01_structure.run),
    "E2": ExperimentSpec("E2", "Working set number", "Fig. 2", e02_working_set.run),
    "E3": ExperimentSpec("E3", "Working set lower bound", "Fig. 3, Theorem 1", e03_ws_bound.run),
    "E4": ExperimentSpec("E4", "S8 -> S9 transformation", "Fig. 4", e04_fig4.run),
    "E5": ExperimentSpec("E5", "AMF rank accuracy", "Lemma 1", e05_amf_accuracy.run),
    "E6": ExperimentSpec("E6", "AMF round complexity", "Section V, Theorem 3", e06_amf_rounds.run),
    "E7": ExperimentSpec("E7", "Height bounds under adjustment", "Lemmas 4-5", e07_height_bounds.run),
    "E8": ExperimentSpec("E8", "Working set property", "Theorem 2", e08_ws_property.run),
    "E9": ExperimentSpec("E9", "DSG vs baselines vs WS bound", "Theorems 4-5", e09_comparison.run),
    "E10": ExperimentSpec("E10", "Dummy nodes and a-balance", "Section IV-F", e10_dummy_abalance.run),
    "E11": ExperimentSpec("E11", "CONGEST conformance and memory", "Section III (model)", e11_congest.run),
    "E12": ExperimentSpec("E12", "Distributed sum and group bookkeeping", "Appendices C-D", e12_sum_groups.run),
    "E13": ExperimentSpec("E13", "Scale and churn: hot path at large n", "Section VI (model), IV-G", e13_scale.run),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by its (case-insensitive) identifier."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def run_experiment(experiment_id: str, **params) -> ExperimentResult:
    """Run one experiment with optional parameter overrides."""
    return get_experiment(experiment_id).runner(**params)
