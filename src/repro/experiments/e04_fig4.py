"""E4 — Fig. 4: the S8 -> S9 transformation example.

Rebuilds the 10-node skip graph S8 with the groups and timestamps shown in
Fig. 4(b), serves the (U, V) request of time 8, and checks the structural
properties the paper's walk-through derives for S9 (Fig. 4(c)):

* the priorities computed by P1/P2 are exactly the values the paper lists
  (P(U)=P(V)=inf, P(E)=5, P(B)=P(G)=P(D)=2),
* the merged group {U, V, E, B, G, D} moves to the 0-subgraph at level 1 and
  {F, I, H, J} stays together in the 1-subgraph,
* U and V end up directly linked and stamped with time 8,
* the merged group carries U's identifier at level 1.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import Table
from repro.core.priorities import COMMUNICATING_PRIORITY, compute_priorities
from repro.experiments.base import ExperimentResult
from repro.workloads.paper_examples import FIG4_KEYS, fig4_setup

__all__ = ["run"]


def run(seed: Optional[int] = 8) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E4",
        title="Fig. 4 transformation (S8 -> S9)",
        parameters={"seed": seed},
    )
    K = FIG4_KEYS
    letters = {value: letter for letter, value in K.items()}

    dsg = fig4_setup(seed=seed)
    members = dsg.graph.keys
    priorities = compute_priorities(
        dsg.states, members, u=K["U"], v=K["V"], alpha=0, t=8, height=dsg.height()
    )
    priority_table = Table(title="Priorities at t=8 (rules P1-P3)", columns=["node", "priority"])
    for key in sorted(priorities, key=lambda k: letters[k]):
        value = priorities[key]
        priority_table.add_row(letters[key], "inf" if value == COMMUNICATING_PRIORITY else value)
    result.tables.append(priority_table)

    expected = {"U": COMMUNICATING_PRIORITY, "V": COMMUNICATING_PRIORITY, "E": 5.0, "B": 2.0, "G": 2.0, "D": 2.0}
    result.checks["paper_priorities_match"] = all(
        priorities[K[letter]] == value for letter, value in expected.items()
    )
    result.checks["other_groups_negative"] = all(
        priorities[K[letter]] < 0 for letter in ("F", "I", "H", "J")
    )

    request_result = dsg.request(K["U"], K["V"])
    zero_side = sorted(
        letters[k] for k in dsg.graph.list_of(K["U"], 1) if not dsg.graph.node(k).is_dummy
    )
    one_side = sorted(
        letters[k] for k in dsg.graph.list_of(K["H"], 1) if not dsg.graph.node(k).is_dummy
    )
    outcome = Table(title="S9 level-1 split", columns=["subgraph", "members"])
    outcome.add_row("0-subgraph", ", ".join(zero_side))
    outcome.add_row("1-subgraph", ", ".join(one_side))
    result.tables.append(outcome)

    result.checks["merged_group_moves_to_0_subgraph"] = zero_side == sorted(["U", "V", "E", "B", "G", "D"])
    result.checks["non_communicating_groups_stay_together"] = one_side == sorted(["F", "I", "H", "J"])
    result.checks["pair_directly_linked"] = dsg.are_adjacent(K["U"], K["V"])
    result.checks["pair_stamped_with_t8"] = (
        dsg.state(K["U"]).timestamp(request_result.d_prime) == 8
        and dsg.state(K["V"]).timestamp(request_result.d_prime) == 8
    )
    result.checks["merged_group_id_is_u"] = all(
        dsg.state(K[letter]).group_id(1) == dsg.state(K["U"]).uid
        for letter in ("U", "V", "E", "B", "G", "D")
    )

    timestamps = Table(title="Timestamps after the request (levels 0-3)", columns=["node", "T0", "T1", "T2", "T3"])
    for letter in sorted(K):
        state = dsg.state(K[letter])
        timestamps.add_row(letter, state.timestamp(0), state.timestamp(1), state.timestamp(2), state.timestamp(3))
    result.tables.append(timestamps)
    return result
