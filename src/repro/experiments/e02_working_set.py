"""E2 — Fig. 2: the working set number of an access pattern.

Replays the exact access pattern of Fig. 2(a) and recomputes the working set
number of the final (u, v) request — the paper's worked value is 5.  The
experiment additionally sweeps synthetic patterns with known working-set
structure to show the definition behaves as intended (unrelated traffic is
not counted, connected traffic is).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import Table
from repro.core.working_set import working_set_number, working_set_numbers
from repro.experiments.base import ExperimentResult
from repro.workloads import fig2_access_pattern, generate_workload

__all__ = ["run"]


def run(n: int = 64, length: int = 200, seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E2",
        title="Working set number (Fig. 2)",
        parameters={"n": n, "length": length, "seed": seed},
    )

    pattern = fig2_access_pattern()
    table = Table(title="Fig. 2 access pattern", columns=["index", "request", "working set number"])
    numbers = working_set_numbers(pattern, total_nodes=n)
    for index, (request, number) in enumerate(zip(pattern, numbers)):
        table.add_row(index + 1, f"{request[0]}->{request[1]}", number)
    result.tables.append(table)
    final = working_set_number(pattern, len(pattern) - 1, total_nodes=n)
    result.checks["fig2_final_working_set_is_5"] = final == 5

    # Synthetic sanity sweeps.
    sweep = Table(
        title="Working set numbers per workload (mean over the sequence)",
        columns=["workload", "mean T_i", "max T_i"],
    )
    keys = list(range(1, n + 1))
    ordered_ok = True
    means = {}
    for name in ("repeated-pair", "temporal", "uniform"):
        requests = generate_workload(name, keys, length, seed=seed)
        numbers = working_set_numbers(requests, total_nodes=n)
        mean = sum(numbers) / len(numbers)
        means[name] = mean
        sweep.add_row(name, mean, max(numbers))
    result.tables.append(sweep)
    # More local traffic => smaller working sets.
    ordered_ok = means["repeated-pair"] <= means["temporal"] <= means["uniform"]
    result.checks["locality_orders_working_sets"] = ordered_ok
    return result
