"""E6 — Section V / Theorem 3: AMF runs in expected O(log n) rounds.

Measures the rounds charged by the structural AMF and the rounds taken by
the message-level protocol as the list size grows, and fits the growth
against ``log2 n``: for a logarithmic quantity the per-doubling increment is
a constant, so the ratio between the largest and smallest measurement must
stay far below the linear ratio of the sizes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.tables import Table
from repro.core.amf import approximate_median
from repro.distributed import run_amf_protocol
from repro.experiments.base import ExperimentResult
from repro.simulation.rng import make_rng
from repro.skiplist import BalancedSkipList

__all__ = ["run"]


def run(
    sizes: Sequence[int] = (32, 64, 128, 256, 512),
    a: int = 4,
    trials: int = 3,
    seed: Optional[int] = 2,
    protocol_limit: int = 4096,
) -> ExperimentResult:
    """``protocol_limit`` caps the sizes the message-level protocol runs at.

    The active-set engine makes the protocol measurable up to 4096 nodes
    (the bench arena's scale); pass a smaller cap to trim quick runs.
    """
    result = ExperimentResult(
        experiment_id="E6",
        title="AMF round complexity (expected O(log n))",
        parameters={"sizes": tuple(sizes), "a": a, "trials": trials, "seed": seed},
    )
    table = Table(
        title="AMF rounds vs n",
        columns=["n", "skip list height", "structural rounds", "protocol rounds"],
    )
    structural_points = []
    protocol_points = []
    for n in sizes:
        structural_rounds = []
        protocol_rounds = []
        heights = []
        for trial in range(trials):
            rng = make_rng((seed or 0) + trial * 101 + n)
            values = {i: float(rng.random()) for i in range(n)}
            amf = approximate_median(values, a=a, rng=make_rng(trial + n))
            structural_rounds.append(amf.rounds)
            heights.append(amf.skiplist.height if amf.skiplist else 1)
            if trial == 0 and n <= protocol_limit:
                protocol_rounds.append(run_amf_protocol(values, a=a, seed=trial + n).rounds)
        structural_mean = sum(structural_rounds) / len(structural_rounds)
        protocol_mean = sum(protocol_rounds) / len(protocol_rounds) if protocol_rounds else None
        table.add_row(n, sum(heights) / len(heights), structural_mean, protocol_mean)
        structural_points.append((n, structural_mean))
        if protocol_mean is not None:
            protocol_points.append((n, protocol_mean))
    result.tables.append(table)

    growth = structural_points[-1][1] / max(structural_points[0][1], 1e-9)
    linear_growth = sizes[-1] / sizes[0]
    result.checks["structural_rounds_sublinear"] = growth <= 0.75 * linear_growth
    # The structural accounting streams values one word per round (CONGEST),
    # so the observed rounds grow like a * log^2 n rather than the idealised
    # log n; check against the polylog envelope (see EXPERIMENTS.md).
    result.checks["structural_rounds_polylog"] = all(
        rounds <= 4 * a * (math.log2(size) ** 2) for size, rounds in structural_points
    )
    if len(protocol_points) >= 2:
        protocol_growth = protocol_points[-1][1] / max(protocol_points[0][1], 1e-9)
        result.checks["protocol_rounds_sublinear"] = protocol_growth <= 0.75 * linear_growth

    # Construction rounds of the balanced skip list alone (the dominant term).
    construction = Table(title="Balanced skip list construction rounds", columns=["n", "rounds", "height"])
    for n in sizes:
        skiplist = BalancedSkipList(list(range(n)), a=a, rng=make_rng(n))
        construction.add_row(n, skiplist.construction_rounds, skiplist.height)
    result.tables.append(construction)
    return result
