"""E11 — CONGEST conformance and memory audit (Section III model).

Runs the message-level protocols (routing, list broadcast, distributed sum,
AMF) on growing instances and records:

* the maximum message size in bits versus a ``c * log2 n`` budget,
* per-link per-round congestion violations (must be zero),
* the peak protocol state per node in words,
* the DSG per-node state in words versus ``O(height)`` (the structural
  engine's memory audit).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.tables import Table
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.distributed import (
    run_amf_protocol,
    run_list_broadcast,
    run_routing_protocol,
    run_sum_protocol,
)
from repro.experiments.base import ExperimentResult
from repro.simulation.message import congest_budget_bits
from repro.simulation.rng import make_rng
from repro.skipgraph import build_balanced_skip_graph
from repro.skiplist import BalancedSkipList
from repro.workloads import generate_workload

__all__ = ["run"]

_budget_bits = congest_budget_bits


def run(sizes: Sequence[int] = (32, 64, 128), a: int = 4, seed: Optional[int] = 7) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E11",
        title="CONGEST conformance and memory audit",
        parameters={"sizes": tuple(sizes), "a": a, "seed": seed},
    )
    table = Table(
        title="Message sizes, congestion and drops per protocol",
        columns=["protocol", "n", "max message bits", "budget bits", "congestion violations", "drops"],
    )
    all_ok = True
    no_drops = True
    for n in sizes:
        budget = _budget_bits(n)
        graph = build_balanced_skip_graph(range(1, n + 1))
        routing = run_routing_protocol(graph, 1, n, seed=seed)
        table.add_row("routing", n, routing.max_message_bits, budget,
                      routing.congestion_violations, routing.dropped_messages)
        all_ok &= routing.max_message_bits <= budget and routing.congestion_violations == 0
        no_drops &= routing.dropped_messages == 0

        broadcast = run_list_broadcast(list(range(1, n + 1)), initiator=1, seed=seed)
        table.add_row("broadcast", n, broadcast.max_message_bits, budget,
                      broadcast.congestion_violations, broadcast.dropped_messages)
        all_ok &= broadcast.max_message_bits <= budget and broadcast.congestion_violations == 0
        no_drops &= broadcast.dropped_messages == 0

        skiplist = BalancedSkipList(list(range(1, n + 1)), a=a, rng=make_rng(seed))
        sum_result = run_sum_protocol(skiplist, {i: 1.0 for i in range(1, n + 1)}, seed=seed)
        table.add_row("distributed sum", n, sum_result.max_message_bits, budget,
                      sum_result.congestion_violations, sum_result.dropped_messages)
        all_ok &= sum_result.max_message_bits <= budget and sum_result.congestion_violations == 0
        no_drops &= sum_result.dropped_messages == 0

        rng = make_rng(seed)
        values = {i: float(rng.random()) for i in range(1, n + 1)}
        amf = run_amf_protocol(values, a=a, seed=seed)
        table.add_row("AMF", n, amf.max_message_bits, budget,
                      amf.congestion_violations, amf.dropped_messages)
        all_ok &= amf.max_message_bits <= budget and amf.congestion_violations == 0
        no_drops &= amf.dropped_messages == 0
    result.tables.append(table)
    result.checks["all_messages_within_congest_budget"] = all_ok
    # Drops are counted separately from violations; on these churn-free
    # instances every message must arrive.
    result.checks["no_message_drops_without_churn"] = no_drops

    # DSG per-node memory audit.
    memory = Table(
        title="DSG per-node state (words) vs height",
        columns=["n", "height", "max words per node", "3*(height+1)+2"],
    )
    memory_ok = True
    for n in sizes:
        keys = list(range(1, n + 1))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed, a=a))
        dsg.run_sequence(generate_workload("temporal", keys, 60, seed=seed))
        words = max(dsg.memory_words_per_node().values())
        height = dsg.height()
        bound = 3 * (height + 1) + 2
        memory.add_row(n, height, words, bound)
        memory_ok &= words <= bound
    result.tables.append(memory)
    result.checks["node_memory_logarithmic"] = memory_ok
    return result
