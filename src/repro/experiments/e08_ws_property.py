"""E8 — Theorem 2: the working set property of DSG.

For workloads with temporal locality, every repeated request's routing
distance is compared against ``log2`` of its working set number.  Theorem 2
states ``d_{S_t}(u, v) = O(log T_t(u, v))``; the experiment reports the
distribution of the per-request ratio ``d / max(1, log2 T)`` and checks that
its 95th percentile stays below the constant allowed by the a-balance
parameter.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.statistics import describe, percentile
from repro.analysis.tables import Table
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.experiments.base import ExperimentResult
from repro.workloads import generate_workload

__all__ = ["run"]


def run(n: int = 64, length: int = 250, a: int = 4, seed: Optional[int] = 4) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E8",
        title="Working set property (Theorem 2)",
        parameters={"n": n, "length": length, "a": a, "seed": seed},
    )
    keys = list(range(1, n + 1))
    table = Table(
        title="Routing distance vs log2(working set number), repeated pairs only",
        columns=["workload", "requests", "mean ratio", "p95 ratio", "max ratio", "within constant"],
    )
    all_ok = True
    # The constant allowed by the analysis is a * log_{3/2}(.)-ish; we use a
    # generous but fixed threshold so regressions are caught.
    threshold = 3.0 * a
    for name in ("temporal", "hot-pairs", "community"):
        requests = generate_workload(name, keys, length, seed=seed)
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed, a=a))
        ratios = []
        for u, v in requests:
            request_result = dsg.request(u, v)
            t_number = request_result.working_set_number or n
            if t_number >= n:  # first contact: the theorem says nothing
                continue
            denominator = max(1.0, math.log2(t_number))
            ratios.append(request_result.routing_cost / denominator)
        stats = describe(ratios)
        p95 = percentile(ratios, 95) if ratios else 0.0
        ok = p95 <= threshold
        all_ok &= ok
        table.add_row(name, len(ratios), stats["mean"], p95, stats["max"], ok)
    result.tables.append(table)
    result.checks["theorem2_ratio_bounded"] = all_ok
    return result
