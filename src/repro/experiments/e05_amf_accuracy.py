"""E5 — Lemma 1: AMF rank accuracy.

For list sizes ``n`` and balance parameters ``a``, runs AMF on random value
assignments and reports the empirical distribution of the output's rank
error together with the Lemma 1 tolerance ``n / (2a)``.  Also compares the
structural AMF against the message-level protocol and against the exact
median (ablation).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.statistics import describe
from repro.analysis.tables import Table
from repro.core.amf import approximate_median
from repro.distributed import run_amf_protocol
from repro.experiments.base import ExperimentResult
from repro.simulation.rng import make_rng

__all__ = ["run"]


def run(
    sizes: Sequence[int] = (64, 256, 1024),
    a_values: Sequence[int] = (3, 4, 8),
    trials: int = 5,
    seed: Optional[int] = 1,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E5",
        title="AMF rank accuracy (Lemma 1)",
        parameters={"sizes": tuple(sizes), "a_values": tuple(a_values), "trials": trials, "seed": seed},
    )
    table = Table(
        title="AMF rank error vs the Lemma 1 tolerance n/(2a)",
        columns=["n", "a", "mean rank error", "max rank error", "tolerance", "all within"],
    )
    all_within_everywhere = True
    for n in sizes:
        for a in a_values:
            errors = []
            within = True
            for trial in range(trials):
                rng = make_rng((seed or 0) * 1000 + n + a * 7 + trial)
                values = {i: float(rng.randrange(10 * n)) for i in range(n)}
                amf = approximate_median(values, a=a, rng=make_rng(trial * 31 + n + a))
                errors.append(amf.rank_error)
                within &= amf.satisfies_lemma1(a)
            stats = describe(errors)
            tolerance = n / (2 * a)
            table.add_row(n, a, stats["mean"], stats["max"], tolerance, within)
            all_within_everywhere &= within
    result.tables.append(table)
    result.checks["lemma1_rank_bound_holds"] = all_within_everywhere

    # Structural vs message-level vs exact (single configuration).
    n, a = sizes[0], a_values[1] if len(a_values) > 1 else a_values[0]
    rng = make_rng(seed)
    values = {i: float(rng.randrange(10 * n)) for i in range(1, n + 1)}
    structural = approximate_median(values, a=a, rng=make_rng(seed))
    protocol = run_amf_protocol(values, a=a, seed=seed)
    comparison = Table(
        title=f"Structural vs message-level AMF (n={n}, a={a})",
        columns=["variant", "median", "rounds", "within Lemma 1"],
    )
    comparison.add_row("structural", structural.median, structural.rounds, structural.satisfies_lemma1(a))
    comparison.add_row(
        "message-level", protocol.median, protocol.rounds,
        protocol.satisfies_lemma1(list(values.values()), a),
    )
    result.tables.append(comparison)
    result.checks["protocol_agrees_with_lemma1"] = protocol.satisfies_lemma1(list(values.values()), a)
    return result
