"""E10 — Section IV-F: a-balance maintenance and dummy-node overhead.

Tracks, over a long DSG run and for several values of the balance parameter
``a``:

* the number of live dummy nodes (the paper bounds the number of *useful*
  dummies by ``n/a``; stale dummies awaiting lazy cleanup add a small
  constant factor),
* the residual a-balance violations and the worst observed run length
  (the reproduction guarantees runs never exceed ``2a`` — see DESIGN.md for
  the documented deviation),
* the same run with maintenance disabled, as the ablation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.tables import Table
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.experiments.base import ExperimentResult
from repro.skipgraph.balance import a_balance_violations
from repro.workloads import generate_workload

__all__ = ["run"]


def run(
    n: int = 64,
    length: int = 200,
    a_values: Sequence[int] = (2, 4, 8),
    seed: Optional[int] = 6,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E10",
        title="Dummy nodes and the a-balance property (Section IV-F)",
        parameters={"n": n, "length": length, "a_values": tuple(a_values), "seed": seed},
    )
    keys = list(range(1, n + 1))
    requests = generate_workload("uniform", keys, length, seed=seed)

    table = Table(
        title="Dummy-node overhead and residual violations vs a",
        columns=["a", "dummies", "n/a", "violations", "max run", "2a+2", "max height"],
    )
    runs_bounded = True
    dummies_moderate = True
    for a in a_values:
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed, a=a))
        max_height = 0
        for u, v in requests:
            max_height = max(max_height, dsg.request(u, v).height_after)
        violations = a_balance_violations(dsg.graph, a)
        max_run = max((len(v.run_keys) for v in violations), default=0)
        table.add_row(a, dsg.dummy_count(), n // a, len(violations), max_run, 2 * a + 2, max_height)
        runs_bounded &= max_run <= 2 * a + 2
        dummies_moderate &= dsg.dummy_count() <= 5 * max(1, n // a) + 8
    result.tables.append(table)
    result.checks["runs_bounded_by_2a_plus_2"] = runs_bounded
    result.checks["dummy_count_moderate"] = dummies_moderate

    # Ablation: maintenance off.
    ablation = Table(
        title="Ablation: a-balance maintenance on/off (a=4)",
        columns=["maintenance", "dummies", "violations", "max run"],
    )
    for maintain in (True, False):
        dsg = DynamicSkipGraph(
            keys=keys, config=DSGConfig(seed=seed, a=4, maintain_a_balance=maintain)
        )
        dsg.run_sequence(requests)
        violations = a_balance_violations(dsg.graph, 4)
        max_run = max((len(v.run_keys) for v in violations), default=0)
        ablation.add_row("on" if maintain else "off", dsg.dummy_count(), len(violations), max_run)
    result.tables.append(ablation)
    return result
