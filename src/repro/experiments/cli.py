"""Command-line entry point: ``dsg-experiments``.

Examples
--------
Run one experiment::

    dsg-experiments run E5

Run everything with smaller, faster parameters and write CSVs::

    dsg-experiments run all --quick --csv-dir results/

Archive structured run artifacts (CI uploads these)::

    dsg-experiments run E1 --quick --artifact-dir bench-artifacts/

Render the cross-algorithm markdown report from ``BENCH_*.json`` artifacts
(written by ``--artifact-dir`` runs and the benchmark suite)::

    dsg-experiments compare bench-artifacts/ --output comparison.md

List what is available::

    dsg-experiments list
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.artifacts import (
    BenchmarkArtifact,
    load_artifacts,
    render_comparison,
    write_artifact,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main", "build_parser"]

#: Reduced parameters used by ``--quick`` (keyed by experiment id).
#:
#: Semantics: when ``dsg-experiments run <id> --quick`` is given, the entry
#: for ``<id>`` is passed as keyword arguments to the experiment's ``run()``
#: in place of its (paper-sized) defaults — the experiment code itself has
#: no notion of a quick mode.  The values shrink the *sizes* (node counts,
#: sequence lengths, trial counts), never the logic: every check an
#: experiment performs still runs, so a quick pass is a faithful smoke test
#: of the full pipeline (CI runs ``run E1 --quick``), just on instances
#: small enough to finish in seconds.  ``--seed`` composes with these: an
#: explicit seed is merged into the same parameter dict.  Experiments
#: without an entry (e.g. E4, which replays the fixed Fig. 4 example) run
#: identically in both modes.
QUICK_PARAMS = {
    "E1": {"sizes": (16, 64)},
    "E2": {"n": 32, "length": 80},
    "E3": {"n": 32, "length": 80},
    "E4": {},
    "E5": {"sizes": (64, 256), "a_values": (3, 4), "trials": 3},
    "E6": {"sizes": (32, 64, 128), "trials": 2},
    "E7": {"n": 32, "length": 80},
    "E8": {"n": 32, "length": 100},
    "E9": {"n": 32, "length": 100, "workloads": ("repeated-pair", "hot-pairs", "temporal", "uniform", "churn")},
    "E10": {"n": 32, "length": 80, "a_values": (2, 4)},
    "E11": {"sizes": (32, 64)},
    "E12": {"sizes": (64, 256), "n": 32, "length": 80},
    "E13": {
        "n": 128,
        "length": 400,
        "zipf_n": 48,
        "zipf_length": 150,
        "consistency_n": 48,
        "consistency_length": 120,
    },
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dsg-experiments",
        description="Reproduction experiments for 'Locally Self-Adjusting Skip Graphs' (ICDCS 2017).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list available experiments")
    list_parser.set_defaults(command="list")

    run_parser = subparsers.add_parser("run", help="run one experiment or 'all'")
    run_parser.add_argument("experiment", help="experiment id (e.g. E5) or 'all'")
    run_parser.add_argument("--quick", action="store_true", help="use reduced sizes for a fast pass")
    run_parser.add_argument("--seed", type=int, default=None, help="override the experiment seed")
    run_parser.add_argument("--csv-dir", type=Path, default=None, help="write every table as CSV into this directory")
    run_parser.add_argument(
        "--artifact-dir",
        type=Path,
        default=None,
        help="write a structured BENCH_<id>.json artifact per experiment into this directory",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="render a markdown comparison report from BENCH_*.json artifacts"
    )
    compare_parser.add_argument("directory", type=Path, help="directory holding BENCH_*.json files")
    compare_parser.add_argument(
        "--output", type=Path, default=None, help="also write the markdown report to this file"
    )
    return parser


def _run_one(
    experiment_id: str,
    quick: bool,
    seed: Optional[int],
    csv_dir: Optional[Path],
    artifact_dir: Optional[Path] = None,
) -> ExperimentResult:
    params = dict(QUICK_PARAMS.get(experiment_id, {})) if quick else {}
    if seed is not None:
        params["seed"] = seed
    started = time.time()
    result = run_experiment(experiment_id, **params)
    elapsed = time.time() - started
    print(result.render())
    print(f"[{experiment_id}] finished in {elapsed:.1f}s, checks passed: {result.all_passed}")
    print()
    if csv_dir is not None:
        for index, table in enumerate(result.tables):
            path = csv_dir / f"{experiment_id.lower()}_{index}.csv"
            table.write_csv(path)
    if artifact_dir is not None:
        artifact = BenchmarkArtifact(
            benchmark=experiment_id,
            config={**result.parameters, "quick": quick},
            wall_seconds=elapsed,
            checks=dict(result.checks),
        )
        write_artifact(artifact, artifact_dir)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in sorted(EXPERIMENTS, key=lambda e: int(e[1:])):
            spec = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:>4}  {spec.title}  [{spec.paper_artifact}]")
        return 0

    if args.command == "compare":
        if not args.directory.is_dir():
            print(f"no such artifact directory: {args.directory}", file=sys.stderr)
            return 1
        report = render_comparison(load_artifacts(args.directory))
        print(report)
        if args.output is not None:
            args.output.parent.mkdir(parents=True, exist_ok=True)
            args.output.write_text(report)
        return 0

    targets = sorted(EXPERIMENTS, key=lambda e: int(e[1:])) if args.experiment.lower() == "all" else [args.experiment.upper()]
    failures: List[str] = []
    for experiment_id in targets:
        result = _run_one(
            experiment_id,
            quick=args.quick,
            seed=args.seed,
            csv_dir=args.csv_dir,
            artifact_dir=args.artifact_dir,
        )
        if not result.all_passed:
            failures.append(experiment_id)
    if failures:
        print(f"experiments with failed checks: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
