"""E13 — scale and churn: the hot path at large n under live scenarios.

Not a reproduction of a specific paper artefact: E13 validates that the
*reproduction machinery itself* scales — that the optimised request pipeline
(level-indexed routing caches, incremental working-set counters, batched
``run_requests``) computes exactly what the reference implementations
compute while serving workloads orders of magnitude beyond the paper's
evaluation sizes, including node churn (Section IV-G) and drifting/flash
traffic.

Checks
------
``batch_equals_sequential``
    :meth:`~repro.core.dsg.DynamicSkipGraph.run_requests` produces per-request
    Equation 1 costs identical to a sequential ``request()`` loop on the same
    seed.
``routing_fastpath_exact``
    The cached, early-exit :func:`~repro.skipgraph.routing.route` returns
    paths identical to the scan-based
    :func:`~repro.skipgraph.routing.route_reference` on the *adjusted* (mid-
    scenario) graph.
``working_set_incremental_exact``
    The incremental :class:`~repro.core.working_set.CommunicationHistory`
    matches the window-rescanning :func:`~repro.core.working_set
    .working_set_number` on the served prefix.
``churn_scenario_completes``
    A join/leave schedule executes to completion with the expected final
    population and the a-balance property maintained.
``throughput_positive``
    Every workload sustains a positive request rate (the recorded rates are
    reported in the tables).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.tables import Table
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.working_set import working_set_number
from repro.experiments.base import ExperimentResult
from repro.simulation.rng import make_rng
from repro.skipgraph.routing import route, route_reference
from repro.workloads import churn_scenario, generate_workload, run_scenario, scale_scenario

__all__ = ["run"]


def run(
    n: int = 1024,
    length: int = 4000,
    seed: int = 17,
    workloads: Sequence[str] = ("hot-pairs", "temporal", "flash-crowd", "zipf-drift"),
    zipf_n: int = 192,
    zipf_length: int = 800,
    consistency_n: int = 96,
    consistency_length: int = 300,
    scale_length: Optional[int] = None,
) -> ExperimentResult:
    """Run the scale/churn experiment.

    Parameters
    ----------
    n, length:
        Population and request count for the per-workload throughput runs.
    seed:
        Base seed (each sub-run derives its own).
    workloads:
        Workload generators to sweep.  ``zipf-drift`` is inherently
        transformation-heavy (popularity keeps migrating), so it runs at
        the reduced ``zipf_n`` / ``zipf_length`` shape.
    consistency_n, consistency_length:
        Shape of the batch-vs-sequential / fast-path / working-set
        consistency replicas.
    scale_length:
        Length of the mixed scale scenario (hot pairs + far pairs + flash
        crowds + churn); defaults to ``length``.
    """
    checks = {}
    rows = []
    keys = list(range(1, n + 1))

    for name in workloads:
        if name == "zipf-drift":
            wl_keys = list(range(1, zipf_n + 1))
            requests = generate_workload(name, wl_keys, zipf_length, seed=seed)
        else:
            wl_keys = keys
            requests = generate_workload(name, wl_keys, length, seed=seed)
        dsg = DynamicSkipGraph(keys=wl_keys, config=DSGConfig(seed=seed))
        outcome = dsg.run_requests(requests, keep_results=False)
        rows.append(
            [
                name,
                len(wl_keys),
                outcome.served,
                round(outcome.elapsed_seconds, 2),
                int(outcome.requests_per_second),
                round(outcome.average_cost, 1),
                outcome.max_height,
                dsg.dummy_count(),
            ]
        )

    # Mixed scale scenario with churn.
    scenario = scale_scenario(
        n=n,
        length=scale_length if scale_length is not None else length,
        seed=seed + 1,
        hot_pair_count=max(8, n // 64),
        cross_pair_count=2,
        flash_count=2,
        crowd_size=8,
        churn_rate=0.001,
    )
    report = run_scenario(scenario, DSGConfig(seed=seed + 2))
    rows.append(
        [
            report.scenario,
            report.final_nodes,
            report.requests,
            round(report.elapsed_seconds, 2),
            int(report.requests_per_second),
            round(report.average_cost, 1),
            report.max_height,
            report.dummy_count,
        ]
    )
    checks["throughput_positive"] = all(row[4] > 0 for row in rows)

    # Churn schedule: population accounting and a-balance maintenance.
    churn = churn_scenario(
        n=max(64, n // 8),
        length=max(400, length // 8),
        seed=seed + 3,
        base="temporal",
        churn_rate=0.02,
    )
    churn_report = run_scenario(churn, DSGConfig(seed=seed + 4))
    checks["churn_scenario_completes"] = (
        churn_report.final_nodes
        == churn_report.initial_nodes + churn_report.joins - churn_report.leaves
        and churn_report.requests == churn.request_count
    )
    churn_rows = [
        [
            churn.name,
            churn_report.initial_nodes,
            churn_report.final_nodes,
            churn_report.joins,
            churn_report.leaves,
            int(churn_report.requests_per_second),
            round(churn_report.average_cost, 1),
        ]
    ]

    # Consistency replicas: batched vs sequential, fast path vs reference,
    # incremental working set vs window rescan.
    rng = make_rng(seed + 5)
    replica_keys = list(range(1, consistency_n + 1))
    replica_requests = generate_workload(
        "temporal", replica_keys, consistency_length, seed=seed + 6, working_set_size=8
    )
    sequential = DynamicSkipGraph(keys=replica_keys, config=DSGConfig(seed=seed + 7))
    sequential_costs = [sequential.request(u, v).cost for u, v in replica_requests]
    batched = DynamicSkipGraph(keys=replica_keys, config=DSGConfig(seed=seed + 7))
    batch_outcome = batched.run_requests(replica_requests, keep_results=False)
    checks["batch_equals_sequential"] = batch_outcome.costs == sequential_costs

    fastpath_ok = True
    for _ in range(200):
        u, v = rng.sample(replica_keys, 2)
        fast = route(sequential.graph, u, v)
        reference = route_reference(sequential.graph, u, v)
        if fast.path != reference.path or fast.hop_levels != reference.hop_levels:
            fastpath_ok = False
            break
    checks["routing_fastpath_exact"] = fastpath_ok

    served = sequential.history.requests
    numbers = [r.working_set_number for r in sequential.results]
    sample = range(0, len(served), max(1, len(served) // 64))
    checks["working_set_incremental_exact"] = all(
        numbers[i] == working_set_number(served, i, sequential.history.total_nodes)
        for i in sample
    )

    tables = [
        Table(
            title="E13a: throughput by workload (adjusting DSG, batched pipeline)",
            columns=[
                "workload",
                "n",
                "requests",
                "seconds",
                "req/s",
                "avg cost (Eq. 1)",
                "max height",
                "dummies",
            ],
            rows=rows,
        ),
        Table(
            title="E13b: churn schedule accounting",
            columns=["scenario", "n0", "n_final", "joins", "leaves", "req/s", "avg cost"],
            rows=churn_rows,
        ),
    ]
    return ExperimentResult(
        experiment_id="E13",
        title="Scale and churn: hot path at large n",
        tables=tables,
        checks=checks,
        parameters={
            "n": n,
            "length": length,
            "seed": seed,
            "workloads": tuple(workloads),
            "consistency_n": consistency_n,
        },
    )
