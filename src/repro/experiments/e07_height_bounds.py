"""E7 — Lemmas 4-5: height bounds under continuous adjustment.

Runs DSG under uniform (worst case for locality) and skewed traffic and
tracks, after every request:

* the total height of the skip graph (Lemma 5 bounds the post-transformation
  height by ``log_{3/2} n``),
* the level at which the communicating pair obtained its direct link
  (Lemma 4 bounds it by ``log_{2a/(a+1)} n``).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.statistics import describe
from repro.analysis.tables import Table
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.experiments.base import ExperimentResult
from repro.workloads import generate_workload

__all__ = ["run"]


def run(n: int = 64, length: int = 200, a: int = 4, seed: Optional[int] = 3) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E7",
        title="Height bounds under adjustment (Lemmas 4-5)",
        parameters={"n": n, "length": length, "a": a, "seed": seed},
    )
    lemma5_bound = math.log(n, 1.5) + 1
    lemma4_bound = math.log(n, (2 * a) / (a + 1)) + 1

    table = Table(
        title="Observed heights and direct-link levels",
        columns=["workload", "max height", "lemma 5 bound", "max link level", "lemma 4 bound"],
    )
    heights_ok = True
    link_ok = True
    for name in ("uniform", "temporal", "hot-pairs"):
        keys = list(range(1, n + 1))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed, a=a))
        requests = generate_workload(name, keys, length, seed=seed)
        max_height = 0
        max_link_level = 0
        for u, v in requests:
            request_result = dsg.request(u, v)
            max_height = max(max_height, request_result.height_after)
            max_link_level = max(max_link_level, request_result.d_prime)
        table.add_row(name, max_height, round(lemma5_bound, 2), max_link_level, round(lemma4_bound, 2))
        heights_ok &= max_height <= lemma5_bound + 1
        link_ok &= max_link_level <= lemma4_bound + 1
    result.tables.append(table)
    result.checks["lemma5_height_bound"] = heights_ok
    result.checks["lemma4_link_level_bound"] = link_ok

    # Height trajectory statistics for the uniform run (most stressful case).
    keys = list(range(1, n + 1))
    dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed, a=a))
    heights = [dsg.request(u, v).height_after for u, v in generate_workload("uniform", keys, length, seed=seed)]
    stats = describe(heights)
    trajectory = Table(title="Height trajectory (uniform workload)", columns=["statistic", "value"])
    for key in ("mean", "median", "p95", "max"):
        trajectory.add_row(key, stats[key])
    trajectory.add_row("ceil(log2 n)+1", math.ceil(math.log2(n)) + 1)
    result.tables.append(trajectory)
    return result
