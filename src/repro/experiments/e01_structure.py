"""E1 — Fig. 1: skip graph <-> binary tree of linked lists.

Rebuilds the paper's 6-node example (nodes A, G, J, M, R, W over 3 shown
levels), prints every linked list and the equivalent binary-tree view, and
verifies that the mapping is one-to-one and the height logarithmic.  Also
reports the same structural statistics for larger random and balanced skip
graphs so the ``O(log n)`` height claim is exercised beyond the toy example.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.simulation.rng import make_rng
from repro.skipgraph import (
    build_balanced_skip_graph,
    build_skip_graph,
    build_skip_graph_from_membership,
    tree_view,
)

__all__ = ["run"]

FIG1_MEMBERSHIP = {
    "A": "00", "J": "00", "M": "01",
    "G": "10", "W": "10", "R": "11",
}


def run(sizes=(16, 64, 256), seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E1",
        title="Skip graph structure and binary-tree view (Fig. 1)",
        parameters={"sizes": tuple(sizes), "seed": seed},
    )

    # --- the exact Fig. 1 example ------------------------------------------
    graph = build_skip_graph_from_membership(FIG1_MEMBERSHIP)
    root = tree_view(graph)
    fig1 = Table(title="Fig. 1 example: linked lists per level", columns=["level", "prefix", "members"])
    for node in root.all_lists():
        fig1.add_row(node.level, node.prefix_string, ", ".join(map(str, node.keys)))
    result.tables.append(fig1)

    result.checks["fig1_level1_split"] = (
        root.zero_child.keys == ["A", "J", "M"] and root.one_child.keys == ["G", "R", "W"]
    )
    result.checks["fig1_level2_lists"] = (
        root.zero_child.zero_child.keys == ["A", "J"]
        and root.zero_child.one_child.keys == ["M"]
        and root.one_child.zero_child.keys == ["G", "W"]
        and root.one_child.one_child.keys == ["R"]
    )
    result.checks["fig1_tree_covers_all_nodes"] = sorted(root.keys) == sorted(FIG1_MEMBERSHIP)

    # --- height scaling ------------------------------------------------------
    heights = Table(
        title="Skip graph heights vs n",
        columns=["n", "balanced height", "ceil(log2 n)+1", "random height", "3*ceil(log2 n)+2"],
    )
    rng = make_rng(seed)
    all_within = True
    for n in sizes:
        balanced = build_balanced_skip_graph(range(1, n + 1))
        random_graph = build_skip_graph(range(1, n + 1), rng=rng)
        balanced_bound = math.ceil(math.log2(n)) + 1
        random_bound = 3 * math.ceil(math.log2(n)) + 2
        heights.add_row(n, balanced.height(), balanced_bound, random_graph.height(), random_bound)
        all_within &= balanced.height() <= balanced_bound and random_graph.height() <= random_bound
        tree = tree_view(balanced)
        all_within &= tree.depth() == balanced.height()
    result.tables.append(heights)
    result.checks["heights_logarithmic"] = all_within
    return result
