"""Experiment harness: one module per reproduced figure/claim (E1-E13).

The paper has no empirical tables; the experiments regenerate its worked
figures and empirically validate each lemma/theorem (see DESIGN.md for the
index and EXPERIMENTS.md for recorded outcomes); E13 additionally validates
the reproduction's own scale machinery (batched pipeline, routing fast
path, incremental working-set counters, churn).  Every experiment returns
an :class:`ExperimentResult` holding one or more
:class:`repro.analysis.Table` objects plus a dictionary of named boolean
*checks* (the claims the experiment verifies).  The CLI
(``dsg-experiments``) and the pytest-benchmark targets both go through
:func:`run_experiment`.
"""

from repro.experiments.base import ExperimentResult, ExperimentSpec
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "get_experiment",
    "run_experiment",
]
