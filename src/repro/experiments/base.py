"""Common experiment result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.analysis.tables import Table

__all__ = ["ExperimentResult", "ExperimentSpec"]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Identifier from the DESIGN.md index (e.g. ``"E5"``).
    title:
        Human-readable description (which paper artefact is regenerated).
    tables:
        The rows/series the experiment reports.
    checks:
        Named boolean outcomes of the claims the experiment validates
        (e.g. ``{"lemma1_rank_bound": True}``).  ``all_passed`` summarises
        them.
    parameters:
        The parameters the experiment ran with (sizes, seeds, workloads).
    """

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def render(self) -> str:
        lines = [f"{self.experiment_id}: {self.title}", ""]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.checks:
            lines.append("checks:")
            for name, passed in sorted(self.checks.items()):
                lines.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        if self.parameters:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(self.parameters.items()))
            lines.append(f"parameters: {rendered}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: identifier, description and runner."""

    experiment_id: str
    title: str
    paper_artifact: str
    runner: Callable[..., ExperimentResult]
