"""E9 — Theorems 4-5: DSG vs baselines vs the working set bound.

The headline comparison the paper's claims imply: for every workload, the
average routing cost (and total cost) of

* DSG,
* a static skip graph (random membership vectors),
* the frequency-optimal static skip graph built offline,
* SplayNet (the closest self-adjusting comparator),
* the direct-link oracle (per-request floor),

together with the working set bound ``WS(σ)/m`` (the amortized lower bound
of Theorem 1).  The "shape" the paper predicts: on skewed traffic DSG's
routing cost is far below the static skip graph and within a constant
factor of the working-set bound; on uniform traffic nothing beats the
static skip graph and DSG stays within the same order.

Every algorithm is driven through the unified adapter layer
(:mod:`repro.baselines.adapter`): each workload is lifted into a
:class:`~repro.workloads.scenarios.Scenario` and replayed, event by event,
on all five algorithms with :func:`~repro.baselines.adapter.play_scenario`.
Because the adapters also implement ``join``/``leave``, the comparison is
churn-capable: the ``churn`` workload interleaves node joins and leaves
with temporal-locality traffic (Section IV-G) and runs through the *same*
pipeline — the scenario-scale version of this experiment is
``benchmarks/bench_e09_comparison.py`` (4096 nodes, 50k+ requests).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import CostSummary, competitive_report, summarize_baseline_run
from repro.analysis.tables import Table
from repro.baselines import make_comparison_algorithms, play_scenario
from repro.core.working_set import working_set_bound
from repro.experiments.base import ExperimentResult
from repro.workloads.scenarios import (
    Scenario,
    churn_scenario,
    scenario_requests,
    workload_scenario,
)

__all__ = ["run"]

DEFAULT_WORKLOADS = (
    "repeated-pair",
    "hot-pairs",
    "temporal",
    "community",
    "zipf",
    "uniform",
    "churn",
)

#: Workloads whose working sets are much smaller than n (log T << log n) —
#: the regime where the paper's claims imply DSG must beat the oblivious
#: static skip graph.  Community and Zipf traffic are reported for the shape
#: of the comparison but not asserted: with the moderate n used here their
#: working sets are only a small constant factor below n, where DSG's
#: constants do not guarantee a win (see docs/EXPERIMENTS.md).
SKEW_WORKLOADS = frozenset({"repeated-pair", "hot-pairs", "temporal", "churn"})


def _build_scenario(
    name: str, n: int, length: int, seed: Optional[int], churn_rate: float
) -> Scenario:
    """One comparison workload as a scenario (requests, or requests+churn)."""
    keys = list(range(1, n + 1))
    if name == "churn":
        return churn_scenario(
            n=n, length=length, seed=seed, base="temporal", churn_rate=churn_rate
        )
    return workload_scenario(name, keys, length, seed=seed)


def run(
    n: int = 64,
    length: int = 250,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    seed: Optional[int] = 5,
    a: int = 4,
    churn_rate: float = 0.02,
) -> ExperimentResult:
    """Compare the five algorithms over ``workloads`` (see module docstring).

    Parameters
    ----------
    n:
        Node population (keys ``1..n``; the ``churn`` workload lets peers
        join above ``n`` and leave).
    length:
        Schedule length per workload (requests, or requests+churn slots).
    workloads:
        Workload names; any :func:`~repro.workloads.generate_workload` name
        plus the special ``"churn"`` schedule.
    seed:
        Master seed: workload generation and every algorithm's randomness
        derive from it.
    a:
        DSG balance parameter.
    churn_rate:
        Per-slot probability of a join/leave in the ``churn`` workload.
    """
    result = ExperimentResult(
        experiment_id="E9",
        title="Average cost: DSG vs baselines vs the working set bound (Theorems 4-5)",
        parameters={
            "n": n,
            "length": length,
            "workloads": tuple(workloads),
            "seed": seed,
            "a": a,
            "churn_rate": churn_rate,
        },
    )

    routing_table = Table(
        title="Average routing cost per request",
        columns=["workload", "WS/m", "oracle", "dsg", "dsg (tail)", "offline-static", "splaynet", "static-random"],
    )
    cost_table = Table(
        title="Average total cost per request (Equation 1: routing + adjustment + 1)",
        columns=["workload", "dsg", "splaynet", "static-random", "dsg routing ratio vs WS"],
    )
    churn_table = Table(
        title="Churn absorbed per workload (joins/leaves handled by every algorithm)",
        columns=["workload", "requests", "joins", "leaves"],
    )

    skewed_wins = True
    ratios_ok = True

    for name in workloads:
        scenario = _build_scenario(name, n, length, seed, churn_rate)
        requests = scenario_requests(scenario)
        bound = working_set_bound(requests, n)

        summaries: Dict[str, CostSummary] = {}
        for algorithm in make_comparison_algorithms(
            scenario.initial_keys, requests, seed=seed, a=a
        ):
            run_record = play_scenario(algorithm, scenario, keep_costs=True)
            summaries[algorithm.name] = summarize_baseline_run(run_record)

        dsg_summary = summaries["dsg"]
        static_summary = summaries["static-random"]
        report = competitive_report(dsg_summary, requests, n, precomputed_bound=bound)

        routing_table.add_row(
            name,
            bound / len(requests) if requests else 0.0,
            summaries["oracle-direct-link"].average_routing,
            dsg_summary.average_routing,
            dsg_summary.routing_tail(0.5),
            summaries["offline-static"].average_routing,
            summaries["splaynet"].average_routing,
            static_summary.average_routing,
        )
        cost_table.add_row(
            name,
            dsg_summary.average_cost,
            summaries["splaynet"].average_cost,
            static_summary.average_cost,
            report.routing_ratio,
        )
        churn_table.add_row(name, len(requests), scenario.join_count, scenario.leave_count)

        if name in SKEW_WORKLOADS:
            # Steady-state DSG routing should beat the oblivious static graph.
            skewed_wins &= dsg_summary.routing_tail(0.5) <= static_summary.average_routing
        ratios_ok &= report.routing_within_constant or name == "uniform"

    result.tables.append(routing_table)
    result.tables.append(cost_table)
    result.tables.append(churn_table)
    result.checks["dsg_beats_static_on_skewed_traffic"] = skewed_wins
    result.checks["dsg_routing_within_constant_of_ws_bound"] = ratios_ok
    return result
