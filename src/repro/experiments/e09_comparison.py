"""E9 — Theorems 4-5: DSG vs baselines vs the working set bound.

The headline comparison the paper's claims imply: for every workload, the
average routing cost (and total cost) of

* DSG,
* a static skip graph (random membership vectors),
* the frequency-optimal static skip graph built offline,
* SplayNet (the closest self-adjusting comparator),
* the direct-link oracle (per-request floor),

together with the working set bound ``WS(σ)/m`` (the amortized lower bound
of Theorem 1).  The "shape" the paper predicts: on skewed traffic DSG's
routing cost is far below the static skip graph and within a constant
factor of the working-set bound; on uniform traffic nothing beats the
static skip graph and DSG stays within the same order.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis import competitive_report, summarize_baseline_run, summarize_dsg_run
from repro.analysis.tables import Table
from repro.baselines import (
    DirectLinkOracle,
    OfflineStaticBaseline,
    SplayNetBaseline,
    StaticSkipGraphBaseline,
)
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.working_set import working_set_bound
from repro.experiments.base import ExperimentResult
from repro.simulation.rng import make_rng
from repro.workloads import generate_workload

__all__ = ["run"]

DEFAULT_WORKLOADS = ("repeated-pair", "hot-pairs", "temporal", "community", "zipf", "uniform")


def run(
    n: int = 64,
    length: int = 250,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    seed: Optional[int] = 5,
    a: int = 4,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E9",
        title="Average cost: DSG vs baselines vs the working set bound (Theorems 4-5)",
        parameters={"n": n, "length": length, "workloads": tuple(workloads), "seed": seed, "a": a},
    )
    keys = list(range(1, n + 1))

    routing_table = Table(
        title="Average routing cost per request",
        columns=["workload", "WS/m", "oracle", "dsg", "dsg (tail)", "offline-static", "splaynet", "static-random"],
    )
    cost_table = Table(
        title="Average total cost per request (Equation 1: routing + adjustment + 1)",
        columns=["workload", "dsg", "splaynet", "static-random", "dsg routing ratio vs WS"],
    )

    skewed_wins = True
    ratios_ok = True
    # The asserted "DSG wins" workloads are the ones whose working sets are
    # much smaller than n (log T << log n).  Community and Zipf traffic are
    # reported for the shape of the comparison but not asserted: with the
    # moderate n used here their working sets are only a small constant
    # factor below n, where DSG's constants do not guarantee a win (see
    # EXPERIMENTS.md).
    skew_names = {"repeated-pair", "hot-pairs", "temporal"}

    for name in workloads:
        requests = generate_workload(name, keys, length, seed=seed)
        bound = working_set_bound(requests, n)

        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed, a=a))
        dsg.run_sequence(requests)
        dsg_summary = summarize_dsg_run(dsg, name="dsg")

        static = StaticSkipGraphBaseline(keys, topology="random", rng=make_rng(seed))
        static_summary = summarize_baseline_run(static.serve(requests))

        offline = OfflineStaticBaseline(keys, requests, rng=make_rng(seed))
        offline_summary = summarize_baseline_run(offline.serve(requests))

        splaynet = SplayNetBaseline(keys)
        splay_summary = summarize_baseline_run(splaynet.serve(requests))

        oracle_summary = summarize_baseline_run(DirectLinkOracle().serve(requests))

        report = competitive_report(dsg_summary, requests, n, precomputed_bound=bound)

        routing_table.add_row(
            name,
            bound / length,
            oracle_summary.average_routing,
            dsg_summary.average_routing,
            dsg_summary.routing_tail(0.5),
            offline_summary.average_routing,
            splay_summary.average_routing,
            static_summary.average_routing,
        )
        cost_table.add_row(
            name,
            dsg_summary.average_cost,
            splay_summary.average_cost,
            static_summary.average_cost,
            report.routing_ratio,
        )

        if name in skew_names:
            # Steady-state DSG routing should beat the oblivious static graph.
            skewed_wins &= dsg_summary.routing_tail(0.5) <= static_summary.average_routing
        ratios_ok &= report.routing_within_constant or name == "uniform"

    result.tables.append(routing_table)
    result.tables.append(cost_table)
    result.checks["dsg_beats_static_on_skewed_traffic"] = skewed_wins
    result.checks["dsg_routing_within_constant_of_ws_bound"] = ratios_ok
    return result
