"""Common result types for baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Tuple

__all__ = ["BaselineRun", "RequestCost"]

Key = Hashable


@dataclass(frozen=True)
class RequestCost:
    """Cost breakdown of one request under some algorithm.

    ``routing`` is the number of intermediate nodes (the paper's ``d_S``),
    ``adjustment`` the rounds spent reorganising the topology (0 for static
    baselines), and ``total`` follows Equation 1:
    ``routing + adjustment + 1``.
    """

    source: Key
    destination: Key
    routing: int
    adjustment: int = 0

    @property
    def total(self) -> int:
        return self.routing + self.adjustment + 1


@dataclass
class BaselineRun:
    """Aggregate outcome of serving a request sequence."""

    name: str
    costs: List[RequestCost] = field(default_factory=list)

    def record(self, cost: RequestCost) -> None:
        self.costs.append(cost)

    @property
    def requests(self) -> int:
        return len(self.costs)

    @property
    def total_routing(self) -> int:
        return sum(cost.routing for cost in self.costs)

    @property
    def total_adjustment(self) -> int:
        return sum(cost.adjustment for cost in self.costs)

    @property
    def total_cost(self) -> int:
        return sum(cost.total for cost in self.costs)

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.requests if self.costs else 0.0

    @property
    def average_cost(self) -> float:
        return self.total_cost / self.requests if self.costs else 0.0

    def routing_series(self) -> List[int]:
        return [cost.routing for cost in self.costs]
