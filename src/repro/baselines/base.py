"""Common result types for baselines (Equation 1 cost accounting).

Every comparison algorithm in this subpackage reports its costs in the
paper's model (Section III): serving request ``σ_t = (u, v)`` on structure
``S_t`` costs ``d_{S_t}(σ_t) + ρ(A, S_t, σ_t) + 1`` — routing distance plus
adjustment rounds plus one (**Equation 1**).  :class:`RequestCost` is one
request's breakdown; :class:`BaselineRun` aggregates a sequence of them.

``BaselineRun`` maintains every aggregate (request count, routing /
adjustment / total cost, max routing) as a *running counter* updated in
:meth:`BaselineRun.record`, so reading an aggregate is O(1) no matter how
long the run is.  The per-request :class:`RequestCost` list is only
retained when ``keep_costs=True`` (the default, used by the experiments for
tail/percentile analysis); large benchmark runs pass ``keep_costs=False``
and stream millions of requests through the same accounting without
per-request retention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List

__all__ = ["BaselineRun", "RequestCost"]

Key = Hashable


@dataclass(frozen=True)
class RequestCost:
    """Cost breakdown of one request under some algorithm.

    Parameters
    ----------
    source, destination:
        Endpoint keys of the request ``σ_t = (source, destination)``.
    routing:
        Number of intermediate nodes on the communication path (the paper's
        routing distance ``d_S``).
    adjustment:
        Rounds spent reorganising the topology after the request
        (``ρ(A, S_t, σ_t)``; 0 for static baselines).
    """

    source: Key
    destination: Key
    routing: int
    adjustment: int = 0

    @property
    def total(self) -> int:
        """Equation 1: ``routing + adjustment + 1``."""
        return self.routing + self.adjustment + 1


@dataclass
class BaselineRun:
    """Aggregate outcome of serving a request sequence.

    Parameters
    ----------
    name:
        Algorithm label the run belongs to (used in tables and artifacts).
    keep_costs:
        When ``True`` every recorded :class:`RequestCost` is retained in
        :attr:`costs` (needed for tail averages and per-request series);
        when ``False`` only the running aggregates are kept and
        :attr:`costs` stays empty — the streaming mode used by the
        large-scale benchmarks.
    costs:
        The retained per-request breakdowns (empty in streaming mode).

    The aggregate properties (:attr:`requests`, :attr:`total_routing`,
    :attr:`total_adjustment`, :attr:`total_cost`, :attr:`max_routing` and
    the averages) read running counters updated by :meth:`record`, so they
    are O(1) and — by construction — identical between a retained and a
    streaming run over the same sequence (property-tested in
    ``tests/baselines/test_adapter.py``).
    """

    name: str
    keep_costs: bool = True
    costs: List[RequestCost] = field(default_factory=list)
    _requests: int = field(default=0, repr=False)
    _total_routing: int = field(default=0, repr=False)
    _total_adjustment: int = field(default=0, repr=False)
    _max_routing: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        # Support construction from a pre-filled cost list: seed the running
        # counters so the aggregates stay consistent.
        for cost in self.costs:
            self._requests += 1
            self._total_routing += cost.routing
            self._total_adjustment += cost.adjustment
            if cost.routing > self._max_routing:
                self._max_routing = cost.routing

    def record(self, cost: RequestCost) -> None:
        """Fold one request into the running aggregates (O(1))."""
        self._requests += 1
        self._total_routing += cost.routing
        self._total_adjustment += cost.adjustment
        if cost.routing > self._max_routing:
            self._max_routing = cost.routing
        if self.keep_costs:
            self.costs.append(cost)

    def record_batch(
        self, requests: int, total_routing: int, total_adjustment: int, max_routing: int
    ) -> None:
        """Fold a pre-aggregated batch into the running counters.

        Used by batch-serving pipelines (``DSGAdapter.request_batch``) whose
        per-request breakdowns were already reduced to totals; keeps every
        aggregate — including ``max_routing`` — consistent with what
        :meth:`record`-ing the individual costs would have produced.
        Per-request retention is not possible from totals, so this is only
        valid on streaming (``keep_costs=False``) runs.
        """
        if self.keep_costs:
            raise ValueError("record_batch requires a streaming (keep_costs=False) run")
        self._requests += requests
        self._total_routing += total_routing
        self._total_adjustment += total_adjustment
        if max_routing > self._max_routing:
            self._max_routing = max_routing

    @property
    def requests(self) -> int:
        return self._requests

    @property
    def total_routing(self) -> int:
        return self._total_routing

    @property
    def total_adjustment(self) -> int:
        return self._total_adjustment

    @property
    def total_cost(self) -> int:
        """Equation 1 sum: every request pays routing + adjustment + 1."""
        return self._total_routing + self._total_adjustment + self._requests

    @property
    def max_routing(self) -> int:
        return self._max_routing

    @property
    def average_routing(self) -> float:
        return self._total_routing / self._requests if self._requests else 0.0

    @property
    def average_adjustment(self) -> float:
        return self._total_adjustment / self._requests if self._requests else 0.0

    @property
    def average_cost(self) -> float:
        return self.total_cost / self._requests if self._requests else 0.0

    def routing_series(self) -> List[int]:
        """Per-request routing distances (empty when ``keep_costs=False``)."""
        return [cost.routing for cost in self.costs]
