"""Frequency-aware *static* skip graph built offline.

DSG adapts online to an unknown request sequence (Theorem 2's working set
property).  A natural yardstick is the best a *static* topology could do
when the full sequence (equivalently, the pairwise communication
frequencies) is known in advance: frequently communicating nodes should
share deep linked lists so their routes are short.

This baseline builds such a topology by recursive balanced bisection of the
weighted communication graph: at every level, the current linked list is
split into two equally sized sublists so that the total frequency of pairs
separated by the split is (locally) minimised — Kernighan–Lin bisection,
via networkx.  Balanced halves keep the height at ``ceil(log2 n) + 1``, so
the baseline stays inside the family ``S`` of valid skip graphs (the class
Theorem 1's lower bound quantifies over).

This is a heuristic optimum (the exact problem is NP-hard, being a
recursive minimum-bisection), which is the standard choice for "offline
static" comparators in the self-adjusting data-structure literature.

Serving and churn come from
:class:`~repro.baselines.static_skipgraph.CachedStaticGraphAlgorithm`:
per-pair routing distances are cached between churn events, and late
joiners receive a *random* membership vector — the offline optimisation
covers exactly the population and frequencies it was built with; peers the
oracle did not foresee get no placement help, which is the honest reading
of "offline" under churn.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.baselines.static_skipgraph import CachedStaticGraphAlgorithm
from repro.simulation.rng import make_rng
from repro.skipgraph.build import build_skip_graph_from_membership
from repro.skipgraph.node import Key

__all__ = ["OfflineStaticBaseline"]


class OfflineStaticBaseline(CachedStaticGraphAlgorithm):
    """Best-effort static skip graph for a known request distribution.

    Parameters
    ----------
    keys:
        Node population the topology is optimised for.
    requests:
        The full request sequence (or any sequence with the same pair
        frequencies); only the pairwise counts matter.  Pairs mentioning
        keys outside ``keys`` (e.g. peers that join later in a churn
        scenario) contribute nothing to the placement.
    rng:
        Seed source for the Kernighan–Lin refinement and join vectors.
    """

    name = "offline-static"

    def __init__(
        self,
        keys: Iterable[Key],
        requests: Sequence[Tuple[Key, Key]],
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        self.keys = sorted(set(keys))
        self._rng = rng or make_rng()
        self._weights = Counter()
        for u, v in requests:
            if u != v:
                self._weights[frozenset((u, v))] += 1
        membership = self._build_membership()
        self.graph = build_skip_graph_from_membership(membership)

    # ------------------------------------------------------------------ build
    def _build_membership(self) -> Dict[Key, List[int]]:
        """Assign membership bits by recursive balanced min-cut bisection."""
        membership: Dict[Key, List[int]] = {key: [] for key in self.keys}

        def bisect(members: List[Key]) -> None:
            if len(members) <= 1:
                return
            zero_side, one_side = self._bisect_once(members)
            for key in zero_side:
                membership[key].append(0)
            for key in one_side:
                membership[key].append(1)
            bisect(zero_side)
            bisect(one_side)

        bisect(list(self.keys))
        return membership

    def _bisect_once(self, members: List[Key]) -> Tuple[List[Key], List[Key]]:
        """Split ``members`` into two balanced halves with a small cut."""
        if len(members) == 2:
            return [members[0]], [members[1]]
        graph = nx.Graph()
        graph.add_nodes_from(members)
        member_set = set(members)
        for pair, weight in self._weights.items():
            u, v = tuple(pair)
            if u in member_set and v in member_set:
                graph.add_edge(u, v, weight=weight)
        half = len(members) // 2
        seed_partition = (set(members[:half]), set(members[half:]))
        try:
            zero_side, one_side = nx.algorithms.community.kernighan_lin_bisection(
                graph,
                partition=seed_partition,
                weight="weight",
                seed=self._rng.randint(0, 2**31 - 1),
            )
        except nx.NetworkXError:
            zero_side, one_side = seed_partition
        return sorted(zero_side), sorted(one_side)
