"""Comparison baselines and the unified algorithm adapter.

The paper evaluates DSG analytically against the class of algorithms that
conform to its self-adjusting model (Theorem 1's working-set lower bound).
For the empirical comparison (experiment E9) this subpackage provides the
comparators the paper positions itself against:

``StaticSkipGraphBaseline``
    A standard skip graph (random or balanced membership vectors) that never
    adjusts — the "worst-case optimised, oblivious to skew" design DSG
    improves on.
``OfflineStaticBaseline``
    The best *static* skip graph built with full knowledge of the request
    frequencies (recursive balanced min-cut partitioning of the
    communication graph).  An upper bound on what any static topology can
    achieve, hence a strong yardstick for the benefit of self-adjustment.
``SplayNetBaseline``
    SplayNet (Avin et al. 2013), the self-adjusting binary search tree
    network the paper cites as the closest prior work.
``DirectLinkOracle``
    The trivial per-request lower bound of the model: every pair is already
    adjacent (routing distance 0), i.e. cost 1 per request.

All of them — and DSG itself, through :class:`DSGAdapter` — implement the
:class:`ServingAlgorithm` protocol (:mod:`repro.baselines.adapter`):
``request``/``request_batch`` for traffic, ``join``/``leave`` for
membership churn (Section IV-G), ``serve(requests)`` returning a
:class:`BaselineRun` for plain sequences, and O(1) streaming cost counters.
The scenario layer (:func:`repro.workloads.scenarios.run_scenario`) and
:func:`play_scenario` drive any of them through any event schedule
interchangeably; see ``docs/BASELINES.md``.
"""

from repro.baselines.base import BaselineRun, RequestCost
from repro.baselines.adapter import (
    BatchServeOutcome,
    DSGAdapter,
    ServingAlgorithm,
    make_comparison_algorithms,
    play_scenario,
)
from repro.baselines.static_skipgraph import StaticSkipGraphBaseline
from repro.baselines.offline_static import OfflineStaticBaseline
from repro.baselines.splaynet import SplayNetBaseline
from repro.baselines.oracle import DirectLinkOracle

__all__ = [
    "BaselineRun",
    "BatchServeOutcome",
    "DSGAdapter",
    "DirectLinkOracle",
    "OfflineStaticBaseline",
    "RequestCost",
    "ServingAlgorithm",
    "SplayNetBaseline",
    "StaticSkipGraphBaseline",
    "make_comparison_algorithms",
    "play_scenario",
]
