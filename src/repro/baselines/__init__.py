"""Comparison baselines.

The paper evaluates DSG analytically against the class of algorithms that
conform to its self-adjusting model (Theorem 1's working-set lower bound).
For the empirical comparison (experiment E9) this subpackage provides the
comparators the paper positions itself against:

``StaticSkipGraphBaseline``
    A standard skip graph (random or balanced membership vectors) that never
    adjusts — the "worst-case optimised, oblivious to skew" design DSG
    improves on.
``OfflineStaticBaseline``
    The best *static* skip graph built with full knowledge of the request
    frequencies (recursive balanced min-cut partitioning of the
    communication graph).  An upper bound on what any static topology can
    achieve, hence a strong yardstick for the benefit of self-adjustment.
``SplayNetBaseline``
    SplayNet (Avin et al. 2013), the self-adjusting binary search tree
    network the paper cites as the closest prior work.
``DirectLinkOracle``
    The trivial per-request lower bound of the model: every pair is already
    adjacent (routing distance 0), i.e. cost 1 per request.

All baselines implement ``serve(requests)`` returning a
:class:`BaselineRun` so the analysis layer can tabulate them uniformly.
"""

from repro.baselines.base import BaselineRun, RequestCost
from repro.baselines.static_skipgraph import StaticSkipGraphBaseline
from repro.baselines.offline_static import OfflineStaticBaseline
from repro.baselines.splaynet import SplayNetBaseline
from repro.baselines.oracle import DirectLinkOracle

__all__ = [
    "BaselineRun",
    "DirectLinkOracle",
    "OfflineStaticBaseline",
    "RequestCost",
    "SplayNetBaseline",
    "StaticSkipGraphBaseline",
]
