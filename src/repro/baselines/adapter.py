"""Unified algorithm adapter: one driving interface for DSG and baselines.

Experiment E9 compares DSG against four comparators (Theorems 4-5), and the
scenario layer (:mod:`repro.workloads.scenarios`) replays event schedules —
requests interleaved with node joins and leaves (Section IV-G) — against a
live structure.  This module is the seam between the two:
:class:`ServingAlgorithm` is the protocol every comparison algorithm
implements, so a single runner can drive *any* of them through *any*
scenario (churn, scale mixes, zipf drift, flash crowds) interchangeably.

The protocol is deliberately small:

``request(u, v) -> RequestCost``
    Serve one communication request and return its Equation 1 breakdown.
``request_batch(pairs, keep_costs) -> BatchServeOutcome``
    Serve a churn-free stretch; the default implementation loops
    ``request``, :class:`DSGAdapter` overrides it with the amortized
    batched pipeline of :meth:`repro.core.dsg.DynamicSkipGraph.run_requests`.
``join(key)`` / ``leave(key)``
    Membership churn.  Every implementation accepts joins of fresh keys and
    leaves of current members; static structures patch their topology
    (random membership vector for the newcomer), SplayNet performs a BST
    insert/delete, DSG runs the Section IV-G operations.
``serve(requests, keep_costs=True) -> BaselineRun``
    Convenience wrapper for plain (churn-free) request sequences — the
    historical baseline API, now shared by every algorithm.

Streaming accounting: every adapter carries a lifetime
:class:`~repro.baselines.base.BaselineRun` in streaming mode
(``keep_costs=False``), so ``requests_served`` / ``total_routing`` /
``total_adjustment`` / ``total_cost`` are O(1) running counters regardless
of run length — a 100k-request benchmark run retains nothing per-request.

:func:`play_scenario` drives one algorithm through one scenario via the
per-request path and returns the retained :class:`BaselineRun` (what E9
uses for tail/percentile analysis); the throughput-oriented batched runner
is :func:`repro.workloads.scenarios.run_scenario`, which accepts any
:class:`ServingAlgorithm` via its ``algorithm=`` parameter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineRun, Key, RequestCost
from repro.core.dsg import DSGConfig, DynamicSkipGraph

__all__ = [
    "BatchServeOutcome",
    "DSGAdapter",
    "ServingAlgorithm",
    "make_comparison_algorithms",
    "play_scenario",
]

Request = Tuple[Key, Key]


@dataclass
class BatchServeOutcome:
    """Result of one :meth:`ServingAlgorithm.request_batch` call.

    Attributes
    ----------
    served:
        Number of requests in the batch.
    costs:
        Per-request Equation 1 totals, present only when the batch was
        served with ``keep_costs=True``.
    max_height:
        Largest structure height observed (at batch granularity for the
        generic loop, at request granularity for :class:`DSGAdapter`).
    """

    served: int
    costs: Optional[List[int]]
    max_height: int


class ServingAlgorithm:
    """Base class / protocol for every algorithm E9 and the runners drive.

    Subclasses implement :meth:`_request` (serve one request, return its
    :class:`RequestCost`) plus :meth:`join` / :meth:`leave`, and inherit the
    streaming accounting: the public :meth:`request` records every cost into
    the lifetime counters before returning it.
    """

    #: Algorithm label used in tables, reports and artifacts.
    name: str = "algorithm"

    def __init__(self, name: Optional[str] = None) -> None:
        if name is not None:
            self.name = name
        self._lifetime = BaselineRun(name=self.name, keep_costs=False)

    # ------------------------------------------------------------- protocol
    def _request(self, source: Key, destination: Key) -> RequestCost:
        raise NotImplementedError

    def join(self, key: Key) -> None:
        """A new peer with ``key`` enters the structure."""
        raise NotImplementedError

    def leave(self, key: Key) -> None:
        """The peer with ``key`` departs the structure."""
        raise NotImplementedError

    def height(self) -> int:
        """Current height of the structure (1 for the flat oracle)."""
        return 1

    def population(self) -> int:
        """Number of (real) peers currently in the structure."""
        raise NotImplementedError

    def working_set_bound(self) -> float:
        """``WS(σ)`` of the stream served so far, when the algorithm tracks
        it (only DSG does); 0.0 otherwise."""
        return 0.0

    def dummy_count(self) -> int:
        """Auxiliary nodes currently held (DSG's a-balance dummies)."""
        return 0

    def plan_size_histogram(self) -> dict:
        """Distribution of restructuring-plan sizes (``len(ops) -> count``).

        Only DSG emits local-op plans; every other algorithm reports an
        empty histogram, which the artifact pipeline skips.
        """
        return {}

    def phase_seconds(self) -> Dict[str, float]:
        """Wall-clock breakdown of serving time by phase.

        DSG reports ``route`` / ``plan`` / ``apply`` / ``repair`` seconds
        (:attr:`repro.core.dsg.DynamicSkipGraph.phase_seconds`); algorithms
        without instrumentation report an empty mapping, which the artifact
        pipeline records as-is.
        """
        return {}

    # -------------------------------------------------------------- serving
    def request(self, source: Key, destination: Key) -> RequestCost:
        """Serve one request; fold its cost into the lifetime counters."""
        cost = self._request(source, destination)
        self._lifetime.record(cost)
        return cost

    def request_batch(self, pairs: Sequence[Request], keep_costs: bool = False) -> BatchServeOutcome:
        """Serve a churn-free run of requests.

        The generic implementation loops :meth:`request`; structures with a
        cheaper amortized pipeline (DSG) override it.  ``max_height`` is
        sampled once per batch here because deriving the height of a
        pointer structure per request would dominate the serve cost.
        """
        costs: Optional[List[int]] = [] if keep_costs else None
        for source, destination in pairs:
            cost = self.request(source, destination)
            if costs is not None:
                costs.append(cost.total)
        return BatchServeOutcome(served=len(pairs), costs=costs, max_height=self.height())

    def serve(self, requests: Iterable[Request], keep_costs: bool = True) -> BaselineRun:
        """Serve a plain request sequence and return its own run accounting.

        The returned :class:`BaselineRun` covers exactly this call (the
        lifetime counters keep accumulating across calls); pass
        ``keep_costs=False`` to stream arbitrarily long sequences through
        O(1) aggregates.
        """
        run = BaselineRun(name=self.name, keep_costs=keep_costs)
        for source, destination in requests:
            run.record(self.request(source, destination))
        return run

    # ------------------------------------------------------------- counters
    @property
    def requests_served(self) -> int:
        return self._lifetime.requests

    @property
    def total_routing(self) -> int:
        return self._lifetime.total_routing

    @property
    def total_adjustment(self) -> int:
        return self._lifetime.total_adjustment

    @property
    def total_cost(self) -> int:
        return self._lifetime.total_cost

    @property
    def average_cost(self) -> float:
        return self._lifetime.average_cost


class DSGAdapter(ServingAlgorithm):
    """Drive a :class:`~repro.core.dsg.DynamicSkipGraph` through the
    adapter protocol.

    Translation is one-to-one: ``routing`` is the request's routing
    distance ``d_{S_t}``, ``adjustment`` its transformation rounds
    ``ρ(A, S_t, σ_t)`` (so ``RequestCost.total`` equals
    ``RequestResult.cost``, Equation 1), joins/leaves map to the
    Section IV-G node operations, and :meth:`request_batch` rides the
    amortized :meth:`~repro.core.dsg.DynamicSkipGraph.run_requests`
    pipeline — per-request costs identical to the sequential path.
    """

    name = "dsg"

    def __init__(
        self,
        keys: Optional[Iterable[Key]] = None,
        config: Optional[DSGConfig] = None,
        dsg: Optional[DynamicSkipGraph] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        if dsg is None:
            dsg = DynamicSkipGraph(keys=keys, config=config)
        self.dsg = dsg

    def _request(self, source: Key, destination: Key) -> RequestCost:
        result = self.dsg.request(source, destination, keep_result=False)
        return RequestCost(
            source=source,
            destination=destination,
            routing=result.routing_cost,
            adjustment=result.transformation_rounds,
        )

    def request_batch(self, pairs: Sequence[Request], keep_costs: bool = False) -> BatchServeOutcome:
        outcome = self.dsg.run_requests(pairs, keep_results=False)
        # run_requests maintains the DSG's own running counters; mirror the
        # batch into the adapter's lifetime run so both accountings agree.
        routing = outcome.total_routing_cost
        adjustment = outcome.total_cost - routing - outcome.served
        self._lifetime.record_batch(
            requests=outcome.served,
            total_routing=routing,
            total_adjustment=adjustment,
            max_routing=outcome.max_routing,
        )
        return BatchServeOutcome(
            served=outcome.served,
            costs=outcome.costs if keep_costs else None,
            max_height=outcome.max_height,
        )

    def join(self, key: Key) -> None:
        self.dsg.add_node(key)

    def leave(self, key: Key) -> None:
        self.dsg.remove_node(key)

    def height(self) -> int:
        return self.dsg.height()

    def population(self) -> int:
        return self.dsg.n

    def working_set_bound(self) -> float:
        if not self.dsg.config.track_working_set:
            return 0.0
        return self.dsg.working_set_bound()

    def dummy_count(self) -> int:
        return self.dsg.dummy_count()

    def plan_size_histogram(self) -> dict:
        return self.dsg.plan_size_histogram()

    def phase_seconds(self) -> Dict[str, float]:
        return dict(self.dsg.phase_seconds)


def make_comparison_algorithms(
    keys: Sequence[Key],
    requests: Sequence[Request],
    seed: Optional[int] = None,
    a: int = 4,
    rng: Optional[random.Random] = None,
    dsg_config: Optional[DSGConfig] = None,
) -> List[ServingAlgorithm]:
    """Instantiate the five E9 comparison algorithms over one population.

    ``requests`` is the full request sequence the offline-static baseline
    optimises for (its defining premise: the frequencies are known in
    advance).  Returns, in reporting order: the direct-link oracle, DSG,
    the offline-optimal static skip graph, SplayNet, and the random static
    skip graph.
    """
    from repro.baselines.offline_static import OfflineStaticBaseline
    from repro.baselines.oracle import DirectLinkOracle
    from repro.baselines.splaynet import SplayNetBaseline
    from repro.baselines.static_skipgraph import StaticSkipGraphBaseline
    from repro.simulation.rng import make_rng

    rng = rng or make_rng(seed)
    return [
        DirectLinkOracle(keys),
        DSGAdapter(keys=keys, config=dsg_config or DSGConfig(seed=seed, a=a)),
        OfflineStaticBaseline(keys, requests, rng=random.Random(rng.getrandbits(64))),
        SplayNetBaseline(keys),
        StaticSkipGraphBaseline(keys, topology="random", rng=random.Random(rng.getrandbits(64))),
    ]


def play_scenario(algorithm: ServingAlgorithm, scenario, keep_costs: bool = True) -> BaselineRun:
    """Replay a :class:`~repro.workloads.scenarios.Scenario` per-request.

    Requests go through :meth:`ServingAlgorithm.request` (full
    :class:`RequestCost` retention when ``keep_costs``), joins and leaves
    through :meth:`join` / :meth:`leave`.  Returns the run covering exactly
    this scenario.  Use :func:`repro.workloads.scenarios.run_scenario` when
    throughput matters more than per-request detail — for DSG both paths
    produce identical per-request costs on the same seed.
    """
    # Imported here to keep baselines free of a package-level dependency on
    # the workloads layer (which imports baselines.adapter).
    from repro.workloads.scenarios import JoinEvent, RequestEvent

    run = BaselineRun(name=algorithm.name, keep_costs=keep_costs)
    for event in scenario.events:
        if isinstance(event, RequestEvent):
            run.record(algorithm.request(event.source, event.destination))
        elif isinstance(event, JoinEvent):
            algorithm.join(event.key)
        else:
            algorithm.leave(event.key)
    return run
