"""Direct-link oracle.

The self-adjusting model charges ``d + ρ + 1`` per request; an omniscient
adversary-free oracle that always happens to have the communicating pair
directly linked pays ``0 + 0 + 1 = 1``.  This is the trivial per-request
floor of the cost model and is reported alongside the working set bound
(the *meaningful* lower bound, Theorem 1) in the comparison tables.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.baselines.base import BaselineRun, RequestCost
from repro.skipgraph.node import Key

__all__ = ["DirectLinkOracle"]


class DirectLinkOracle:
    """Every request costs exactly one round."""

    name = "oracle-direct-link"

    def serve(self, requests: Sequence[Tuple[Key, Key]]) -> BaselineRun:
        run = BaselineRun(name=self.name)
        for source, destination in requests:
            run.record(RequestCost(source=source, destination=destination, routing=0))
        return run
