"""Direct-link oracle.

The self-adjusting model charges ``d + ρ + 1`` per request (Equation 1); an
omniscient adversary-free oracle that always happens to have the
communicating pair directly linked pays ``0 + 0 + 1 = 1``.  This is the
trivial per-request floor of the cost model and is reported alongside the
working set bound (the *meaningful* lower bound, Theorem 1) in the
comparison tables.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.baselines.adapter import ServingAlgorithm
from repro.baselines.base import RequestCost
from repro.skipgraph.node import Key

__all__ = ["DirectLinkOracle"]


class DirectLinkOracle(ServingAlgorithm):
    """Every request costs exactly one round.

    Parameters
    ----------
    keys:
        Optional initial population.  The oracle does not need one to serve
        (every pair is adjacent by fiat); tracking it makes the churn
        accounting (``population()``, join/leave validity) uniform with the
        other adapters.
    """

    name = "oracle-direct-link"

    def __init__(self, keys: Optional[Iterable[Key]] = None) -> None:
        super().__init__()
        self._members: Set[Key] = set(keys) if keys is not None else set()

    def _request(self, source: Key, destination: Key) -> RequestCost:
        return RequestCost(source=source, destination=destination, routing=0)

    def join(self, key: Key) -> None:
        if key in self._members:
            raise ValueError(f"key {key!r} already present")
        self._members.add(key)

    def leave(self, key: Key) -> None:
        if key not in self._members:
            raise KeyError(f"no node with key {key!r}")
        self._members.discard(key)

    def height(self) -> int:
        """A clique of direct links is flat."""
        return 1

    def population(self) -> int:
        return len(self._members)
