"""Static skip graph baseline (no self-adjustment).

This is exactly what DSG degenerates to with ``adjust=False``: requests are
routed with the standard skip graph routing over a fixed topology.  Provided
as a standalone class so that experiments do not need to instantiate the DSG
machinery to measure the baseline.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, Tuple

from repro.baselines.base import BaselineRun, RequestCost
from repro.simulation.rng import make_rng
from repro.skipgraph.build import build_balanced_skip_graph, build_skip_graph
from repro.skipgraph.node import Key
from repro.skipgraph.routing import route

__all__ = ["StaticSkipGraphBaseline"]


class StaticSkipGraphBaseline:
    """A fixed skip graph: every request pays the full routing distance."""

    def __init__(
        self,
        keys: Iterable[Key],
        topology: str = "random",
        rng: Optional[random.Random] = None,
        name: Optional[str] = None,
    ) -> None:
        if topology not in ("random", "balanced"):
            raise ValueError("topology must be 'random' or 'balanced'")
        rng = rng or make_rng()
        keys = list(keys)
        if topology == "random":
            self.graph = build_skip_graph(keys, rng=rng)
        else:
            self.graph = build_balanced_skip_graph(keys)
        self.topology = topology
        self.name = name or f"static-{topology}"

    def routing_cost(self, source: Key, destination: Key) -> int:
        return route(self.graph, source, destination).distance

    def serve(self, requests: Sequence[Tuple[Key, Key]]) -> BaselineRun:
        run = BaselineRun(name=self.name)
        for source, destination in requests:
            run.record(
                RequestCost(
                    source=source,
                    destination=destination,
                    routing=self.routing_cost(source, destination),
                )
            )
        return run

    def height(self) -> int:
        return self.graph.height()
