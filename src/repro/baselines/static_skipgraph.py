"""Static skip graph baselines (no self-adjustment) and their shared base.

:class:`CachedStaticGraphAlgorithm` is the common machinery for every
baseline that routes over a skip graph which only changes on membership
churn: because the topology is fixed between churn events, the per-pair
routing distance is a pure function of the endpoints, so it is cached per
ordered pair (mirroring the level-list/position-map caching of the skip
graph itself) and the cache is invalidated on ``join``/``leave``.  Skewed
workloads — where a handful of pairs carry almost all traffic — therefore
route repeat requests in O(1) dict lookups instead of re-walking the
levels.  Joins draw a random membership vector (the classical rule,
:func:`~repro.skipgraph.build.draw_membership_bits`); leaves remove the
node and let the level lists close up.

:class:`StaticSkipGraphBaseline` is exactly what DSG degenerates to with
``adjust=False``: requests are routed with the standard skip graph routing
(paper, Appendix B) over a topology that never reacts to traffic — the
"worst-case optimised, oblivious to skew" design the paper improves on.
Provided as a standalone class so that experiments do not need to
instantiate the DSG machinery to measure the baseline.  The
frequency-optimised variant is
:class:`~repro.baselines.offline_static.OfflineStaticBaseline`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional, Tuple

from repro.baselines.adapter import ServingAlgorithm
from repro.baselines.base import RequestCost
from repro.simulation.rng import make_rng
from repro.skipgraph.build import build_balanced_skip_graph, build_skip_graph, draw_membership_bits
from repro.skipgraph.membership import MembershipVector
from repro.skipgraph.node import Key, SkipGraphNode
from repro.skipgraph.routing import route
from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["CachedStaticGraphAlgorithm", "StaticSkipGraphBaseline"]


class CachedStaticGraphAlgorithm(ServingAlgorithm):
    """Adapter base for algorithms serving over a churn-only-mutable skip graph.

    Subclasses must assign :attr:`graph` (the :class:`SkipGraph` routed
    over) and :attr:`_rng` (the source for join membership vectors) during
    construction; everything else — cached routing, churn, structure
    accessors — is shared here.
    """

    graph: SkipGraph
    _rng: random.Random

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self._distances: Dict[Tuple[Key, Key], int] = {}

    # -------------------------------------------------------------- routing
    def routing_cost(self, source: Key, destination: Key) -> int:
        """Routing distance of ``(source, destination)``, cached per pair.

        The cache is exact: it is cleared whenever the topology changes
        (:meth:`join` / :meth:`leave`) and the graph is static otherwise —
        property-tested against the scan-based ``route_reference``.
        """
        pair = (source, destination)
        cached = self._distances.get(pair)
        if cached is None:
            cached = route(self.graph, source, destination).distance
            self._distances[pair] = cached
        return cached

    def _request(self, source: Key, destination: Key) -> RequestCost:
        return RequestCost(
            source=source,
            destination=destination,
            routing=self.routing_cost(source, destination),
        )

    # ---------------------------------------------------------------- churn
    def join(self, key: Key) -> None:
        """Add a peer with a random membership vector (classical join)."""
        if self.graph.has_node(key):
            raise ValueError(f"key {key!r} already present")
        bits = draw_membership_bits(self.graph, key, self._rng)
        self.graph.add_node(SkipGraphNode(key=key, membership=MembershipVector(bits)))
        self._distances.clear()

    def leave(self, key: Key) -> None:
        """Remove a peer; neighbouring links close up over it."""
        if not self.graph.has_node(key):
            raise KeyError(f"no node with key {key!r}")
        self.graph.remove_node(key)
        self._distances.clear()

    # ------------------------------------------------------------ structure
    def height(self) -> int:
        return self.graph.height()

    def population(self) -> int:
        return len(self.graph.real_keys)


class StaticSkipGraphBaseline(CachedStaticGraphAlgorithm):
    """A fixed skip graph: every request pays the full routing distance.

    Parameters
    ----------
    keys:
        Initial node population.
    topology:
        ``"random"`` membership vectors (the classical construction, what
        E9 reports as *static-random*) or the deterministic ``"balanced"``
        construction of height ``ceil(log2 n) + 1``.
    rng:
        Random source for the membership vectors (random topology and
        joins); defaults to the seeded reproduction RNG.
    name:
        Label used in tables and artifacts; defaults to
        ``static-<topology>``.
    """

    def __init__(
        self,
        keys: Iterable[Key],
        topology: str = "random",
        rng: Optional[random.Random] = None,
        name: Optional[str] = None,
    ) -> None:
        if topology not in ("random", "balanced"):
            raise ValueError("topology must be 'random' or 'balanced'")
        super().__init__(name=name or f"static-{topology}")
        self._rng = rng or make_rng()
        keys = list(keys)
        if topology == "random":
            self.graph = build_skip_graph(keys, rng=self._rng)
        else:
            self.graph = build_balanced_skip_graph(keys)
        self.topology = topology
