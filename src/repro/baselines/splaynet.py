"""SplayNet baseline (Avin, Haeupler, Lotker, Scheideler, Schmid 2013).

SplayNet generalises splay trees to communication networks: the nodes form a
binary search tree; a request ``(u, v)`` costs the length of the tree path
between ``u`` and ``v``; afterwards the tree is locally adjusted by a
*double splay*: ``u`` is splayed to the root of the lowest subtree
containing both endpoints, then ``v`` is splayed to become ``u``'s child.
Frequently communicating pairs therefore end up adjacent, just as in DSG —
but within a single BST rather than a skip graph, which is exactly the
comparison the paper draws in its related-work discussion.

The implementation below is a self-contained pointer-based BST with
bottom-up splaying restricted to a subtree root, plus the cost accounting
needed by experiment E9.  Costs follow the same convention as the other
baselines: ``routing`` is the number of intermediate nodes on the
communication path (tree-path length minus one), and the adjustment cost is
the number of rotations performed (each rotation is a local, constant-round
operation in the distributed implementation of SplayNets).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.base import BaselineRun, RequestCost
from repro.skipgraph.node import Key

__all__ = ["SplayNetBaseline"]


class _Node:
    __slots__ = ("key", "parent", "left", "right")

    def __init__(self, key: Key) -> None:
        self.key = key
        self.parent: Optional["_Node"] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class SplayNetBaseline:
    """A SplayNet over a fixed node population."""

    def __init__(self, keys: Iterable[Key], adjust: bool = True, name: Optional[str] = None) -> None:
        keys = sorted(set(keys))
        if not keys:
            raise ValueError("SplayNet needs at least one node")
        self._nodes: Dict[Key, _Node] = {key: _Node(key) for key in keys}
        self.root = self._build_balanced(keys, parent=None)
        self.adjust = adjust
        self.name = name or ("splaynet" if adjust else "static-bst")
        self.rotations = 0

    # ------------------------------------------------------------------ build
    def _build_balanced(self, keys: Sequence[Key], parent: Optional[_Node]) -> Optional[_Node]:
        if not keys:
            return None
        middle = len(keys) // 2
        node = self._nodes[keys[middle]]
        node.parent = parent
        node.left = self._build_balanced(keys[:middle], node)
        node.right = self._build_balanced(keys[middle + 1 :], node)
        return node

    # ------------------------------------------------------------- structure
    def depth(self, key: Key) -> int:
        node = self._nodes[key]
        depth = 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def height(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    def _path_to_root(self, key: Key) -> List[Key]:
        node = self._nodes[key]
        path = [node.key]
        while node.parent is not None:
            node = node.parent
            path.append(node.key)
        return path

    def lowest_common_ancestor(self, u: Key, v: Key) -> Key:
        ancestors_u = self._path_to_root(u)
        ancestors_v = set(self._path_to_root(v))
        for key in ancestors_u:
            if key in ancestors_v:
                return key
        return self.root.key  # pragma: no cover - the root is always common

    def tree_distance(self, u: Key, v: Key) -> int:
        """Number of edges on the tree path between ``u`` and ``v``."""
        if u == v:
            return 0
        lca = self.lowest_common_ancestor(u, v)
        return (self.depth(u) - self.depth(lca)) + (self.depth(v) - self.depth(lca))

    def in_order(self) -> List[Key]:
        result: List[Key] = []

        def walk(node: Optional[_Node]) -> None:
            if node is None:
                return
            walk(node.left)
            result.append(node.key)
            walk(node.right)

        walk(self.root)
        return result

    def is_valid_bst(self) -> bool:
        keys = self.in_order()
        return keys == sorted(keys)

    # --------------------------------------------------------------- splaying
    def _rotate_up(self, node: _Node) -> None:
        parent = node.parent
        if parent is None:
            return
        grand = parent.parent
        if parent.left is node:
            parent.left = node.right
            if node.right is not None:
                node.right.parent = parent
            node.right = parent
        else:
            parent.right = node.left
            if node.left is not None:
                node.left.parent = parent
            node.left = parent
        parent.parent = node
        node.parent = grand
        if grand is None:
            self.root = node
        elif grand.left is parent:
            grand.left = node
        else:
            grand.right = node
        self.rotations += 1

    def _splay_until(self, node: _Node, stop_parent: Optional[_Node]) -> None:
        """Splay ``node`` upward until its parent is ``stop_parent``."""
        while node.parent is not stop_parent and node.parent is not None:
            parent = node.parent
            grand = parent.parent
            if grand is stop_parent or grand is None:
                self._rotate_up(node)  # zig
            elif (grand.left is parent) == (parent.left is node):
                self._rotate_up(parent)  # zig-zig
                self._rotate_up(node)
            else:
                self._rotate_up(node)  # zig-zag
                self._rotate_up(node)

    # ---------------------------------------------------------------- serving
    def request(self, source: Key, destination: Key) -> RequestCost:
        """Serve one request: measure the path, then double-splay."""
        if source not in self._nodes or destination not in self._nodes:
            raise KeyError(f"unknown endpoint in request ({source!r}, {destination!r})")
        distance = self.tree_distance(source, destination)
        routing = max(0, distance - 1)  # intermediate nodes on the path
        adjustment = 0
        if self.adjust and source != destination:
            before = self.rotations
            lca_key = self.lowest_common_ancestor(source, destination)
            lca_parent = self._nodes[lca_key].parent
            self._splay_until(self._nodes[source], lca_parent)
            # Splay the destination below the source, on the side it belongs.
            self._splay_until(self._nodes[destination], self._nodes[source])
            adjustment = self.rotations - before
        return RequestCost(source=source, destination=destination, routing=routing, adjustment=adjustment)

    def serve(self, requests: Sequence[Tuple[Key, Key]]) -> BaselineRun:
        run = BaselineRun(name=self.name)
        for source, destination in requests:
            run.record(self.request(source, destination))
        return run
