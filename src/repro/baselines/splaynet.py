"""SplayNet baseline (Avin, Haeupler, Lotker, Scheideler, Schmid 2013).

SplayNet generalises splay trees to communication networks: the nodes form a
binary search tree; a request ``(u, v)`` costs the length of the tree path
between ``u`` and ``v``; afterwards the tree is locally adjusted by a
*double splay*: ``u`` is splayed to the root of the lowest subtree
containing both endpoints, then ``v`` is splayed to become ``u``'s child.
Frequently communicating pairs therefore end up adjacent, just as in DSG —
but within a single BST rather than a skip graph, which is exactly the
comparison the paper draws in its related-work discussion (and the closest
self-adjusting comparator in experiment E9).

The implementation below is a self-contained pointer-based BST with
bottom-up splaying restricted to a subtree root, plus the cost accounting
needed by experiment E9.  Costs follow the same convention as the other
baselines: ``routing`` is the number of intermediate nodes on the
communication path (tree-path length minus one), and the adjustment cost is
the number of rotations performed (each rotation is a local, constant-round
operation in the distributed implementation of SplayNets).

Serving fast path: :meth:`SplayNetBaseline.request` derives the LCA, both
depths and the path length from **one upward walk per endpoint** (instead
of repeated root walks for depth/LCA/distance).  Combined with splaying —
which keeps hot pairs near their subtree root — a repeat request costs O(1)
walk steps amortized, so 100k-request streams over skewed traffic serve at
cache speed.  The single-walk path is exact, not approximate: the reference
helpers (:meth:`depth`, :meth:`lowest_common_ancestor`,
:meth:`tree_distance`) are kept and the tests assert agreement.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines.adapter import ServingAlgorithm
from repro.baselines.base import RequestCost
from repro.skipgraph.node import Key

__all__ = ["SplayNetBaseline"]


class _Node:
    __slots__ = ("key", "parent", "left", "right")

    def __init__(self, key: Key) -> None:
        self.key = key
        self.parent: Optional["_Node"] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class SplayNetBaseline(ServingAlgorithm):
    """A SplayNet over a dynamic node population.

    Parameters
    ----------
    keys:
        Initial population; the starting tree is the balanced BST over it.
    adjust:
        When ``False`` requests are only measured, never splayed — the
        static-BST ablation (reported as ``static-bst``).
    name:
        Label override for tables and artifacts.
    """

    def __init__(self, keys: Iterable[Key], adjust: bool = True, name: Optional[str] = None) -> None:
        super().__init__(name=name or ("splaynet" if adjust else "static-bst"))
        keys = sorted(set(keys))
        if not keys:
            raise ValueError("SplayNet needs at least one node")
        self._nodes: Dict[Key, _Node] = {key: _Node(key) for key in keys}
        self.root = self._build_balanced(keys, parent=None)
        self.adjust = adjust
        self.rotations = 0

    # ------------------------------------------------------------------ build
    def _build_balanced(self, keys: Sequence[Key], parent: Optional[_Node]) -> Optional[_Node]:
        if not keys:
            return None
        middle = len(keys) // 2
        node = self._nodes[keys[middle]]
        node.parent = parent
        node.left = self._build_balanced(keys[:middle], node)
        node.right = self._build_balanced(keys[middle + 1 :], node)
        return node

    # ------------------------------------------------------------- structure
    def depth(self, key: Key) -> int:
        """Edges between ``key``'s node and the root (reference helper)."""
        node = self._nodes[key]
        depth = 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def height(self) -> int:
        # Iterative: splay trees can degenerate to Θ(n)-deep spines (e.g.
        # under sorted access patterns), which would blow the recursion
        # limit at the populations the scale benchmarks use.
        height = 0
        stack = [(self.root, 1)] if self.root is not None else []
        while stack:
            node, depth = stack.pop()
            if depth > height:
                height = depth
            if node.left is not None:
                stack.append((node.left, depth + 1))
            if node.right is not None:
                stack.append((node.right, depth + 1))
        return height

    def population(self) -> int:
        return len(self._nodes)

    def _node_path_to_root(self, key: Key) -> List[_Node]:
        node = self._nodes[key]
        path = [node]
        while node.parent is not None:
            node = node.parent
            path.append(node)
        return path

    def _path_to_root(self, key: Key) -> List[Key]:
        return [node.key for node in self._node_path_to_root(key)]

    def lowest_common_ancestor(self, u: Key, v: Key) -> Key:
        """Reference LCA (root-path intersection); see :meth:`request` for
        the single-walk serving path."""
        ancestors_u = self._path_to_root(u)
        ancestors_v = set(self._path_to_root(v))
        for key in ancestors_u:
            if key in ancestors_v:
                return key
        return self.root.key  # pragma: no cover - the root is always common

    def tree_distance(self, u: Key, v: Key) -> int:
        """Number of edges on the tree path between ``u`` and ``v``."""
        if u == v:
            return 0
        lca = self.lowest_common_ancestor(u, v)
        return (self.depth(u) - self.depth(lca)) + (self.depth(v) - self.depth(lca))

    def in_order(self) -> List[Key]:
        # Iterative for the same deep-spine reason as :meth:`height`.
        result: List[Key] = []
        stack: List[_Node] = []
        node = self.root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            result.append(node.key)
            node = node.right
        return result

    def is_valid_bst(self) -> bool:
        keys = self.in_order()
        return keys == sorted(keys)

    # --------------------------------------------------------------- splaying
    def _rotate_up(self, node: _Node) -> None:
        parent = node.parent
        if parent is None:
            return
        grand = parent.parent
        if parent.left is node:
            parent.left = node.right
            if node.right is not None:
                node.right.parent = parent
            node.right = parent
        else:
            parent.right = node.left
            if node.left is not None:
                node.left.parent = parent
            node.left = parent
        parent.parent = node
        node.parent = grand
        if grand is None:
            self.root = node
        elif grand.left is parent:
            grand.left = node
        else:
            grand.right = node
        self.rotations += 1

    def _splay_until(self, node: _Node, stop_parent: Optional[_Node]) -> None:
        """Splay ``node`` upward until its parent is ``stop_parent``."""
        while node.parent is not stop_parent and node.parent is not None:
            parent = node.parent
            grand = parent.parent
            if grand is stop_parent or grand is None:
                self._rotate_up(node)  # zig
            elif (grand.left is parent) == (parent.left is node):
                self._rotate_up(parent)  # zig-zig
                self._rotate_up(node)
            else:
                self._rotate_up(node)  # zig-zag
                self._rotate_up(node)

    # ---------------------------------------------------------------- serving
    def _request(self, source: Key, destination: Key) -> RequestCost:
        """Serve one request: measure the path, then double-splay.

        One upward walk per endpoint yields both root paths; the LCA is the
        deepest node where they merge, and the path length falls out of the
        two walk prefixes — no separate depth or LCA traversals.  Splaying
        keeps recently communicating pairs near their subtree root, so
        repeat requests walk (and rotate) O(1) nodes amortized.
        """
        if source not in self._nodes or destination not in self._nodes:
            raise KeyError(f"unknown endpoint in request ({source!r}, {destination!r})")
        if source == destination:
            return RequestCost(source=source, destination=destination, routing=0, adjustment=0)

        path_u = self._node_path_to_root(source)
        path_v = self._node_path_to_root(destination)
        # The root paths share a common suffix ending at the root; the LCA is
        # the deepest shared node.  i/j end on the last indices *below* it.
        i, j = len(path_u) - 1, len(path_v) - 1
        while i >= 0 and j >= 0 and path_u[i] is path_v[j]:
            i -= 1
            j -= 1
        lca = path_u[i + 1]
        distance = (i + 1) + (j + 1)  # edges from u down... up to lca, and lca to v
        routing = max(0, distance - 1)  # intermediate nodes on the path

        adjustment = 0
        if self.adjust:
            before = self.rotations
            lca_parent = lca.parent
            self._splay_until(path_u[0], lca_parent)
            # Splay the destination below the source, on the side it belongs.
            self._splay_until(path_v[0], path_u[0])
            adjustment = self.rotations - before
        return RequestCost(source=source, destination=destination, routing=routing, adjustment=adjustment)

    # ------------------------------------------------------------------ churn
    def join(self, key: Key) -> None:
        """Insert ``key`` as a BST leaf (standard search-tree insertion)."""
        if key in self._nodes:
            raise ValueError(f"key {key!r} already present")
        node = _Node(key)
        self._nodes[key] = node
        current = self.root
        if current is None:  # pragma: no cover - population never empties
            self.root = node
            return
        while True:
            if key < current.key:
                if current.left is None:
                    current.left = node
                    node.parent = current
                    return
                current = current.left
            else:
                if current.right is None:
                    current.right = node
                    node.parent = current
                    return
                current = current.right

    def leave(self, key: Key) -> None:
        """Delete ``key`` with standard BST deletion.

        A node with two children swaps payload with its in-order successor
        (the minimum of the right subtree, which has at most one child) and
        the successor's node is spliced out — the usual pointer-structure
        deletion, kept deliberately splay-free so departures do not perturb
        the adjustment accounting.
        """
        if key not in self._nodes:
            raise KeyError(f"no node with key {key!r}")
        if len(self._nodes) == 1:
            raise ValueError("SplayNet needs at least one node")
        node = self._nodes[key]
        if node.left is not None and node.right is not None:
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key = successor.key
            self._nodes[successor.key] = node
            node = successor  # splice the successor's (≤1-child) node out
        child = node.left if node.left is not None else node.right
        parent = node.parent
        if child is not None:
            child.parent = parent
        if parent is None:
            self.root = child
        elif parent.left is node:
            parent.left = child
        else:
            parent.right = child
        del self._nodes[key]
