"""Cost summaries (Equation 1 of the paper).

The cost of serving request ``σ_t`` is ``d_{S_t}(σ_t) + ρ(A, S_t, σ_t) + 1``
(routing distance + transformation rounds + 1); the average cost of a
sequence is the mean of those per-request costs.  A :class:`CostSummary`
captures both the total/average decomposition and the routing-only view
(what Theorem 4 bounds), for either a DSG run or a baseline run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.base import BaselineRun
from repro.core.dsg import DynamicSkipGraph, RequestResult

__all__ = ["CostSummary", "summarize_dsg_run", "summarize_baseline_run"]


@dataclass
class CostSummary:
    """Totals and averages for one algorithm over one request sequence."""

    name: str
    requests: int
    total_routing: int
    total_adjustment: int
    average_routing: float
    average_adjustment: float
    average_cost: float
    max_routing: int
    routing_series: List[int]

    @property
    def total_cost(self) -> int:
        return self.total_routing + self.total_adjustment + self.requests

    def routing_tail(self, fraction: float = 0.5) -> float:
        """Average routing cost of the last ``fraction`` of the sequence.

        Self-adjusting algorithms pay a warm-up; comparisons of the steady
        state use the tail average.
        """
        if not self.routing_series:
            return 0.0
        start = int(len(self.routing_series) * (1 - fraction))
        tail = self.routing_series[start:]
        return sum(tail) / len(tail) if tail else 0.0


def summarize_dsg_run(dsg: DynamicSkipGraph, name: str = "dsg",
                      results: Optional[Sequence[RequestResult]] = None) -> CostSummary:
    """Summarise a served DSG request sequence."""
    results = list(results if results is not None else dsg.results)
    routing = [result.routing_cost for result in results]
    adjustment = [result.transformation_rounds for result in results]
    count = len(results)
    return CostSummary(
        name=name,
        requests=count,
        total_routing=sum(routing),
        total_adjustment=sum(adjustment),
        average_routing=sum(routing) / count if count else 0.0,
        average_adjustment=sum(adjustment) / count if count else 0.0,
        average_cost=(sum(routing) + sum(adjustment) + count) / count if count else 0.0,
        max_routing=max(routing, default=0),
        routing_series=routing,
    )


def summarize_baseline_run(run: BaselineRun) -> CostSummary:
    """Summarise a :class:`BaselineRun` (any algorithm behind the adapter).

    Reads the run's O(1) running counters, so it works identically for
    retained runs and streaming (``keep_costs=False``) runs; only
    ``routing_series`` — and hence :meth:`CostSummary.routing_tail` — needs
    retention (it is empty, and the tail 0.0, for streaming runs).
    """
    count = run.requests
    return CostSummary(
        name=run.name,
        requests=count,
        total_routing=run.total_routing,
        total_adjustment=run.total_adjustment,
        average_routing=run.average_routing,
        average_adjustment=run.average_adjustment,
        average_cost=run.average_cost,
        max_routing=run.max_routing,
        routing_series=run.routing_series(),
    )
