"""Benchmark artifacts: structured ``BENCH_*.json`` files and comparison reports.

The benchmark suite (``benchmarks/``) regenerates the paper's comparisons at
scale; this module gives those runs a durable, machine-readable output so CI
can archive them and humans can diff them across commits:

* :class:`AlgorithmResult` — one algorithm's aggregate outcome on one
  benchmark: request count, routing / adjustment / total cost (Equation 1),
  wall time, throughput and the ratio of its routing cost to the working
  set bound ``WS(σ)`` of Theorem 1 (the amortized lower bound every
  model-conforming algorithm is subject to).
* :class:`ProtocolResult` — one message-passing protocol's outcome on the
  CONGEST simulator (Section III): rounds, messages, bits, the maximum
  message size against the ``c * log2 n`` budget, congestion violations
  (must be zero for conformance) and churn-induced drops, which are
  accounted separately.  Emitted by ``bench_e11_congest`` /
  ``bench_e06_amf_rounds``.
* :class:`BenchmarkArtifact` — a benchmark run: configuration, total wall
  time, the sequence's working set bound, per-algorithm and per-protocol
  results and check outcomes.  Serialised to ``BENCH_<name>.json`` by
  :func:`write_artifact` and read back by :func:`load_artifact` /
  :func:`load_artifacts`.
* :class:`PlanSizeStats` — the distribution of local-operation plan sizes
  (``RequestResult.ops``) DSG emitted for one workload: percentiles of how
  many ops a request's restructuring took.  This is the empirical face of
  the paper's locality claim — under steady skewed traffic most requests
  emit tiny (often empty) plans.  Emitted by ``bench_e09_comparison`` and
  ``bench_e15_100k``.
* :func:`render_comparison` — a cross-algorithm markdown report over one or
  more artifacts (what ``dsg-experiments compare`` prints).

The JSON schema is flat and versioned (``schema_version``); artifacts are
self-describing so the ``compare`` CLI needs nothing but the files.
Version 2 added the ``protocols`` section, version 3 the ``plan_sizes``
section, version 4 the ``failures`` section (:class:`FailureResult`, the
crash-stop arena rows of ``bench_e16_failures``), version 5 the
``pipelines`` section (:class:`PipelineResult`, the conflict-aware
pipelined-serving rows of ``bench_e17_pipeline``), version 6 the optional
per-algorithm ``phases`` breakdown (wall-clock seconds spent routing,
planning, applying plans and repairing indexes — the batched-kernel
profile), version 7 the recovery / mid-wave failure counters on
``failures`` rows (``recoveries``, ``mid_wave_crashes``, ``retried``,
``retried_delivered``, ``rejoin_links``) with the conservation law
widened to ``delivered + failed + retried_delivered == requests``; older
files load as artifacts without the newer rows / counters.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

__all__ = [
    "AlgorithmResult",
    "BenchmarkArtifact",
    "FailureResult",
    "PipelineResult",
    "PlanSizeStats",
    "ProtocolResult",
    "load_artifact",
    "load_artifacts",
    "render_comparison",
    "write_artifact",
]

SCHEMA_VERSION = 7


@dataclass
class AlgorithmResult:
    """Aggregate outcome of one algorithm on one benchmark workload.

    Parameters
    ----------
    name:
        Algorithm label (``dsg``, ``splaynet``, ``static-random``, ...).
    requests:
        Requests served.
    total_routing, total_adjustment, total_cost:
        Summed Equation 1 components (``total_cost`` includes the ``+1``
        per request).
    wall_seconds:
        Wall-clock serving time for this algorithm alone.
    ws_bound_ratio:
        ``total_routing / WS(σ)`` against Theorem 1's bound for the served
        sequence, when the artifact carries one (``None`` otherwise).
    final_height:
        Structure height after the run (``None`` where meaningless).
    joins, leaves:
        Churn events absorbed during the run.
    phases:
        Optional wall-clock breakdown of ``wall_seconds`` by serving phase
        (``route`` / ``plan`` / ``apply`` / ``repair`` for DSG — see
        :attr:`repro.core.dsg.DynamicSkipGraph.phase_seconds`).  Empty for
        algorithms that do not report one and for pre-v6 artifacts.
    """

    name: str
    requests: int
    total_routing: int
    total_adjustment: int
    total_cost: int
    wall_seconds: float
    ws_bound_ratio: Optional[float] = None
    final_height: Optional[int] = None
    joins: int = 0
    leaves: int = 0
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.requests if self.requests else 0.0

    @property
    def average_adjustment(self) -> float:
        return self.total_adjustment / self.requests if self.requests else 0.0

    @property
    def average_cost(self) -> float:
        return self.total_cost / self.requests if self.requests else 0.0

    @property
    def requests_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.requests / self.wall_seconds


@dataclass
class ProtocolResult:
    """One message-passing protocol's outcome on the CONGEST simulator.

    Parameters
    ----------
    name:
        Protocol label (``routing``, ``broadcast``, ``sum``, ``amf``).
    n:
        Population the protocol ran over (at install time; churn may move
        it during the run).
    rounds, messages, total_bits:
        Synchronous rounds executed and traffic delivered.
    max_message_bits, budget_bits:
        Largest message observed versus the ``c * log2 n`` CONGEST budget
        it must stay within.
    congestion_violations:
        Per-link per-round violations — zero for a conforming protocol.
    dropped_messages:
        Messages lost to churn (links or receivers that disappeared);
        accounted separately from violations.
    joins, leaves:
        Churn events replayed while the protocol ran.
    wall_seconds:
        Wall-clock simulation time for this protocol alone.
    """

    name: str
    n: int
    rounds: int
    messages: int
    total_bits: int
    max_message_bits: int
    budget_bits: int
    congestion_violations: int
    dropped_messages: int = 0
    joins: int = 0
    leaves: int = 0
    wall_seconds: float = 0.0

    @property
    def within_budget(self) -> bool:
        return self.max_message_bits <= self.budget_bits

    @property
    def conformant(self) -> bool:
        """CONGEST conformance: within the bit budget, zero violations."""
        return self.within_budget and self.congestion_violations == 0


@dataclass
class PlanSizeStats:
    """Distribution of restructuring-plan sizes over one workload.

    Computed from the O(1)-per-request histogram DSG maintains
    (:meth:`~repro.core.dsg.DynamicSkipGraph.plan_size_histogram`): one row
    summarises how many local ops (:mod:`repro.core.local_ops`) each
    request's plan carried.  ``empty_fraction`` is the share of requests
    that restructured nothing beyond the already-adjacent pair — the
    steady-state regime the working set property predicts.
    """

    workload: str
    requests: int
    mean_ops: float
    p50_ops: int
    p90_ops: int
    p99_ops: int
    max_ops: int
    empty_fraction: float

    @classmethod
    def from_histogram(cls, workload: str, histogram: Mapping[int, int]) -> "PlanSizeStats":
        """Summarise a ``plan size -> request count`` histogram."""
        total = sum(histogram.values())
        if not total:
            return cls(
                workload=workload, requests=0, mean_ops=0.0,
                p50_ops=0, p90_ops=0, p99_ops=0, max_ops=0, empty_fraction=0.0,
            )
        sizes = sorted(histogram)
        weighted = sum(size * count for size, count in histogram.items())

        def percentile(fraction: float) -> int:
            threshold = fraction * total
            cumulative = 0
            for size in sizes:
                cumulative += histogram[size]
                if cumulative >= threshold:
                    return size
            return sizes[-1]

        return cls(
            workload=workload,
            requests=total,
            mean_ops=weighted / total,
            p50_ops=percentile(0.50),
            p90_ops=percentile(0.90),
            p99_ops=percentile(0.99),
            max_ops=sizes[-1],
            empty_fraction=histogram.get(0, 0) / total,
        )


@dataclass
class FailureResult:
    """One crash-stop failure arena's outcome (``bench_e16_failures``).

    Parameters
    ----------
    name:
        Failure shape label (``independent``, ``racks``, ``flash``).
    n, k:
        Initial population and the redundancy the network/tables ran with.
    waves:
        Crash-burst/dark-window/repair cycles executed.
    crashes, requests:
        Nodes killed and requests injected across all waves.
    delivered, failed:
        Requests that reached their destination on the first pass versus
        requests counted as ``failed_requests`` (stale destinations
        stranding at a hole's edge, or retries exhausted).
        ``delivered + failed + retried_delivered == requests`` for a
        conserving run (schema v7 widened the law to absorb mid-wave
        in-flight casualties that a later retry delivered).
    route_arounds:
        Hops re-forwarded through a k-redundant table because the primary
        neighbour was dark.
    repair_links, tables_refreshed:
        Links added closing lists over the holes, and surviving routers
        whose neighbour tables were rebuilt — the repair cost.
    rounds, messages:
        Synchronous rounds and messages over the whole arena.
    congestion_violations, dropped_messages:
        ``congestion_violations`` must be zero always.
        ``dropped_messages`` must be zero for quiescent-boundary shapes;
        mid-wave shapes legitimately count in-flight messages absorbed by
        a crash here (every one is ledger-accounted and retried).
    integrity_clean:
        Every post-repair integrity sweep came back clean.
    wall_seconds:
        Wall-clock simulation time for this arena alone.
    recoveries, rejoin_links:
        Crashed keys that rejoined as fresh identities, and the links
        added splicing them back into every level list (v7).
    mid_wave_crashes:
        Crashes fired while requests were in flight (v7).
    retried, retried_delivered:
        In-flight casualties re-injected after the repair wave, and how
        many of those eventually reached their destination (v7).
    """

    name: str
    n: int
    k: int
    waves: int
    crashes: int
    requests: int
    delivered: int
    failed: int
    route_arounds: int
    repair_links: int
    tables_refreshed: int
    rounds: int
    messages: int
    congestion_violations: int
    dropped_messages: int = 0
    integrity_clean: bool = True
    wall_seconds: float = 0.0
    recoveries: int = 0
    mid_wave_crashes: int = 0
    retried: int = 0
    retried_delivered: int = 0
    rejoin_links: int = 0

    @property
    def conserved(self) -> bool:
        return self.delivered + self.failed + self.retried_delivered == self.requests

    @property
    def delivery_fraction(self) -> float:
        return self.delivered / self.requests if self.requests else 0.0


@dataclass
class PipelineResult:
    """One pipelined-serving arena outcome (``bench_e17_pipeline``).

    Parameters
    ----------
    name:
        Row label (``sequential``, ``window-1``, ``window-8``, ...).
    n:
        Initial population of the arena.
    window:
        Configured in-flight depth (1 for the sequential reference).
    requests:
        Requests served (K of rounds-to-serve-K).
    rounds:
        Synchronous rounds to serve the whole schedule.
    sequential_rounds:
        The sequential driver's rounds on the same schedule — the
        denominator of :attr:`speedup`.
    max_in_flight:
        Deepest overlap the conflict detector actually admitted.
    conflict_stalls:
        Head-of-line admissions refused because of a conflict-set overlap
        (each stalled event counted once).
    messages, congestion_violations, dropped_messages:
        Traffic and the two must-be-zero safety counters.
    total_cost:
        Total Equation-1 cost charged by the pipelined execution.
    matches_sequential:
        Final topology AND total cost equal to the sequential reference.
    wall_seconds:
        Wall-clock simulation time for this row alone.
    """

    name: str
    n: int
    window: int
    requests: int
    rounds: int
    sequential_rounds: int
    max_in_flight: int
    conflict_stalls: int
    messages: int
    congestion_violations: int
    dropped_messages: int = 0
    total_cost: int = 0
    matches_sequential: bool = True
    wall_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Sequential rounds over this row's rounds (higher is better)."""
        return self.sequential_rounds / self.rounds if self.rounds else 0.0

    @property
    def rounds_per_request(self) -> float:
        """Rounds per served request — the rounds-to-serve-K headline."""
        return self.rounds / self.requests if self.requests else 0.0


@dataclass
class BenchmarkArtifact:
    """One benchmark run: config, timings, per-algorithm/protocol results, checks."""

    benchmark: str
    config: Dict[str, object] = field(default_factory=dict)
    wall_seconds: float = 0.0
    working_set_bound: Optional[float] = None
    algorithms: List[AlgorithmResult] = field(default_factory=list)
    protocols: List[ProtocolResult] = field(default_factory=list)
    plan_sizes: List[PlanSizeStats] = field(default_factory=list)
    failures: List[FailureResult] = field(default_factory=list)
    pipelines: List[PipelineResult] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def algorithm(self, name: str) -> AlgorithmResult:
        """Look up one algorithm's result by label."""
        for result in self.algorithms:
            if result.name == name:
                return result
        raise KeyError(f"no algorithm {name!r} in artifact {self.benchmark!r}")

    def protocol(self, name: str) -> ProtocolResult:
        """Look up one protocol's result by label (first match)."""
        for result in self.protocols:
            if result.name == name:
                return result
        raise KeyError(f"no protocol {name!r} in artifact {self.benchmark!r}")

    def failure(self, name: str) -> FailureResult:
        """Look up one failure arena's result by label."""
        for result in self.failures:
            if result.name == name:
                return result
        raise KeyError(f"no failure arena {name!r} in artifact {self.benchmark!r}")

    def pipeline(self, name: str) -> PipelineResult:
        """Look up one pipelined-serving row by label."""
        for result in self.pipelines:
            if result.name == name:
                return result
        raise KeyError(f"no pipeline row {name!r} in artifact {self.benchmark!r}")

    @property
    def all_checks_passed(self) -> bool:
        return all(self.checks.values()) if self.checks else True


def _artifact_filename(benchmark: str) -> str:
    slug = "".join(ch if (ch.isalnum() or ch in "-_") else "_" for ch in benchmark)
    return f"BENCH_{slug}.json"


def write_artifact(artifact: BenchmarkArtifact, directory: Union[str, Path]) -> Path:
    """Serialise ``artifact`` to ``<directory>/BENCH_<benchmark>.json``.

    The directory is created if needed; an existing artifact of the same
    benchmark is overwritten (one file per benchmark, newest run wins).
    Returns the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / _artifact_filename(artifact.benchmark)
    path.write_text(json.dumps(asdict(artifact), indent=2, sort_keys=True, default=str) + "\n")
    return path


def load_artifact(path: Union[str, Path]) -> BenchmarkArtifact:
    """Read one ``BENCH_*.json`` file back into a :class:`BenchmarkArtifact`."""
    data = json.loads(Path(path).read_text())
    version = data.get("schema_version", 0)
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"artifact {path} has schema version {version}; this reader supports <= {SCHEMA_VERSION}"
        )
    algorithms = [AlgorithmResult(**entry) for entry in data.get("algorithms", [])]
    protocols = [ProtocolResult(**entry) for entry in data.get("protocols", [])]
    plan_sizes = [PlanSizeStats(**entry) for entry in data.get("plan_sizes", [])]
    failures = [FailureResult(**entry) for entry in data.get("failures", [])]
    pipelines = [PipelineResult(**entry) for entry in data.get("pipelines", [])]
    return BenchmarkArtifact(
        benchmark=data["benchmark"],
        config=data.get("config", {}),
        wall_seconds=data.get("wall_seconds", 0.0),
        working_set_bound=data.get("working_set_bound"),
        algorithms=algorithms,
        protocols=protocols,
        plan_sizes=plan_sizes,
        failures=failures,
        pipelines=pipelines,
        checks=data.get("checks", {}),
        schema_version=version,
    )


def load_artifacts(directory: Union[str, Path]) -> List[BenchmarkArtifact]:
    """Load every ``BENCH_*.json`` under ``directory``, sorted by benchmark."""
    directory = Path(directory)
    artifacts = [load_artifact(path) for path in sorted(directory.glob("BENCH_*.json"))]
    return sorted(artifacts, key=lambda artifact: artifact.benchmark)


def _format(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_comparison(artifacts: Sequence[BenchmarkArtifact]) -> str:
    """Render a cross-algorithm markdown report over ``artifacts``.

    One section per benchmark: the configuration, a table with one row per
    algorithm (averages per request, throughput, WS-bound ratio) and the
    check outcomes.  Algorithms are ordered by average total cost, so the
    winner reads first.
    """
    lines: List[str] = ["# Benchmark comparison", ""]
    if not artifacts:
        lines.append("_No BENCH_*.json artifacts found._")
        return "\n".join(lines) + "\n"
    for artifact in artifacts:
        lines.append(f"## {artifact.benchmark}")
        lines.append("")
        if artifact.config:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(artifact.config.items()))
            lines.append(f"- config: {rendered}")
        lines.append(f"- wall time: {artifact.wall_seconds:.2f}s")
        if artifact.working_set_bound is not None:
            lines.append(f"- working set bound WS(σ): {artifact.working_set_bound:.1f} (Theorem 1)")
        lines.append("")
        if artifact.algorithms:
            lines.append(
                "| algorithm | requests | avg routing | avg adjustment | avg cost (Eq. 1) "
                "| req/s | routing / WS | height | churn |"
            )
            lines.append("|---|---:|---:|---:|---:|---:|---:|---:|---:|")
            for result in sorted(artifact.algorithms, key=lambda r: r.average_cost):
                churn = f"+{result.joins}/-{result.leaves}" if (result.joins or result.leaves) else "-"
                lines.append(
                    f"| {result.name} | {result.requests} | {_format(result.average_routing)} "
                    f"| {_format(result.average_adjustment)} | {_format(result.average_cost)} "
                    f"| {_format(result.requests_per_second, 0)} | {_format(result.ws_bound_ratio)} "
                    f"| {_format(result.final_height)} | {churn} |"
                )
            lines.append("")
            phased = [result for result in artifact.algorithms if result.phases]
            if phased:
                phase_names: List[str] = []
                for result in phased:
                    for name in result.phases:
                        if name not in phase_names:
                            phase_names.append(name)
                header = " | ".join(f"{name} s" for name in phase_names)
                lines.append(f"| phase breakdown | {header} | accounted |")
                lines.append("|---|" + "---:|" * (len(phase_names) + 1))
                for result in phased:
                    cells = " | ".join(
                        _format(result.phases.get(name, 0.0), 1) for name in phase_names
                    )
                    accounted = sum(result.phases.values())
                    share = accounted / result.wall_seconds if result.wall_seconds else 0.0
                    lines.append(
                        f"| {result.name} | {cells} | {accounted:.1f} ({share * 100:.0f}%) |"
                    )
                lines.append("")
        if artifact.protocols:
            lines.append(
                "| protocol | n | rounds | messages | max bits | budget bits "
                "| violations | drops | churn |"
            )
            lines.append("|---|---:|---:|---:|---:|---:|---:|---:|---:|")
            for result in artifact.protocols:
                churn = f"+{result.joins}/-{result.leaves}" if (result.joins or result.leaves) else "-"
                lines.append(
                    f"| {result.name} | {result.n} | {result.rounds} | {result.messages} "
                    f"| {result.max_message_bits} | {result.budget_bits} "
                    f"| {result.congestion_violations} | {result.dropped_messages} | {churn} |"
                )
            lines.append("")
        if artifact.failures:
            lines.append(
                "| failures | n | k | waves | crashes | mid-wave | recoveries | requests "
                "| delivered | failed | retried (ok) | route-arounds | repair links "
                "| rejoin links | integrity |"
            )
            lines.append("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
            for result in artifact.failures:
                lines.append(
                    f"| {result.name} | {result.n} | {result.k} | {result.waves} "
                    f"| {result.crashes} | {result.mid_wave_crashes} | {result.recoveries} "
                    f"| {result.requests} | {result.delivered} | {result.failed} "
                    f"| {result.retried} ({result.retried_delivered}) "
                    f"| {result.route_arounds} | {result.repair_links} "
                    f"| {result.rejoin_links} "
                    f"| {'clean' if result.integrity_clean else 'VIOLATED'} |"
                )
            lines.append("")
        if artifact.pipelines:
            lines.append(
                "| pipeline | n | window | requests | rounds | rounds/req | speedup "
                "| max in-flight | stalls | violations | drops | equivalent |"
            )
            lines.append("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
            for result in artifact.pipelines:
                lines.append(
                    f"| {result.name} | {result.n} | {result.window} | {result.requests} "
                    f"| {result.rounds} | {_format(result.rounds_per_request, 1)} "
                    f"| {_format(result.speedup, 2)}x | {result.max_in_flight} "
                    f"| {result.conflict_stalls} | {result.congestion_violations} "
                    f"| {result.dropped_messages} "
                    f"| {'yes' if result.matches_sequential else 'NO'} |"
                )
            lines.append("")
        if artifact.plan_sizes:
            lines.append(
                "| plan sizes (workload) | requests | mean ops | p50 | p90 | p99 | max "
                "| empty plans |"
            )
            lines.append("|---|---:|---:|---:|---:|---:|---:|---:|")
            for stats in artifact.plan_sizes:
                lines.append(
                    f"| {stats.workload} | {stats.requests} | {_format(stats.mean_ops)} "
                    f"| {stats.p50_ops} | {stats.p90_ops} | {stats.p99_ops} | {stats.max_ops} "
                    f"| {stats.empty_fraction * 100:.1f}% |"
                )
            lines.append("")
        if artifact.checks:
            lines.append("checks:")
            for name, passed in sorted(artifact.checks.items()):
                lines.append(f"- [{'PASS' if passed else 'FAIL'}] {name}")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"
