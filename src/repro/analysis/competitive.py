"""Competitive ratios against the working set bound (Theorems 1, 4 and 5).

Theorem 1 lower-bounds the amortized cost of *any* model-conforming
algorithm by ``WS(σ)``; Theorem 4 states DSG's routing cost is within a
constant factor of it and Theorem 5 that the total cost (including
transformations) is within a logarithmic factor.  The report computed here
makes those three quantities, and their ratios, explicit for one run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

from repro.analysis.costs import CostSummary
from repro.core.working_set import working_set_bound

__all__ = ["CompetitiveReport", "competitive_report"]

Request = Tuple[Hashable, Hashable]


@dataclass
class CompetitiveReport:
    """Ratios of an algorithm's cost to the working set bound."""

    name: str
    requests: int
    working_set_bound: float
    total_routing: int
    total_cost: int
    routing_ratio: float
    cost_ratio: float
    #: ``log2(n)`` of the instance, for judging the Theorem 5 factor.
    log_n: float

    @property
    def routing_within_constant(self) -> bool:
        """Whether routing is within a (generous) constant of the bound."""
        return self.routing_ratio <= 8.0

    @property
    def cost_within_log_factor(self) -> bool:
        """Whether total cost is within ``O(log n)`` of the bound (Theorem 5)."""
        return self.cost_ratio <= 16.0 * max(self.log_n, 1.0)


def competitive_report(
    summary: CostSummary,
    requests: Sequence[Request],
    total_nodes: int,
    precomputed_bound: Optional[float] = None,
) -> CompetitiveReport:
    """Build a :class:`CompetitiveReport` for ``summary`` over ``requests``."""
    bound = precomputed_bound if precomputed_bound is not None else working_set_bound(requests, total_nodes)
    bound = max(bound, 1e-9)
    return CompetitiveReport(
        name=summary.name,
        requests=summary.requests,
        working_set_bound=bound,
        total_routing=summary.total_routing,
        total_cost=summary.total_cost,
        routing_ratio=summary.total_routing / bound,
        cost_ratio=summary.total_cost / bound,
        log_n=math.log2(max(total_nodes, 2)),
    )
