"""Plain-text tables and CSV export for experiment results.

The experiment harness prints the same rows/series the paper's claims are
about; this module owns the formatting so every experiment reports results
uniformly (and tests can assert on the structured form rather than on
strings).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Union

__all__ = ["Table", "render_table", "to_csv"]

Cell = Union[str, int, float, bool, None]


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        return render_table(self)

    def write_csv(self, path: Union[str, Path]) -> None:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(to_csv(self))


def render_table(table: Table) -> str:
    """Monospace rendering with a title, header rule and aligned columns."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in table.rows]
    headers = [str(column) for column in table.columns]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [table.title, "=" * max(len(table.title), 1)]
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in formatted_rows)
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def to_csv(table: Table) -> str:
    """CSV form of the table (title and notes are omitted)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue()
