"""Cost bookkeeping, competitive ratios and result rendering.

The experiments (E1-E12) produce structured results; this subpackage turns
them into the numbers the paper's claims are stated in:

* per-sequence average / amortized cost (Equation 1),
* the working set bound ``WS(σ)`` and competitive ratios against it
  (Theorems 1, 4, 5),
* summary statistics (means, percentiles, log-fit slopes for the
  ``O(log n)`` scaling claims),
* plain-text tables and CSV export used by the benchmark harness and the
  CLI,
* benchmark artifacts: structured ``BENCH_*.json`` files and the
  cross-algorithm markdown comparison the ``dsg-experiments compare``
  subcommand renders from them (:mod:`repro.analysis.artifacts`).
"""

from repro.analysis.costs import CostSummary, summarize_baseline_run, summarize_dsg_run
from repro.analysis.competitive import CompetitiveReport, competitive_report
from repro.analysis.statistics import describe, log2_fit_slope, percentile
from repro.analysis.tables import Table, render_table, to_csv
from repro.analysis.artifacts import (
    AlgorithmResult,
    BenchmarkArtifact,
    FailureResult,
    PlanSizeStats,
    load_artifact,
    load_artifacts,
    render_comparison,
    write_artifact,
)

__all__ = [
    "AlgorithmResult",
    "BenchmarkArtifact",
    "CompetitiveReport",
    "CostSummary",
    "FailureResult",
    "PlanSizeStats",
    "Table",
    "competitive_report",
    "describe",
    "load_artifact",
    "load_artifacts",
    "log2_fit_slope",
    "percentile",
    "render_comparison",
    "render_table",
    "summarize_baseline_run",
    "summarize_dsg_run",
    "to_csv",
    "write_artifact",
]
