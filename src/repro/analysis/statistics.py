"""Small statistics helpers used across the experiments.

Dependency-free implementations of the three summaries the experiment
harness needs: percentiles with linear interpolation (tail costs of
self-adjusting runs warm-up analysis, E9/E13), five-number ``describe``
summaries (tables throughout), and the least-squares slope of ``y`` against
``log2 x`` — the empirical check behind every ``O(log n)`` claim the paper
makes (heights, Lemmas 4-5; AMF rounds, Theorem 3; routing distances).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

__all__ = ["describe", "percentile", "log2_fit_slope"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    weight = position - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Mean / min / max / median / p95 summary of ``values``."""
    if not values:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "median": 0.0, "p95": 0.0}
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "min": float(min(values)),
        "max": float(max(values)),
        "median": percentile(values, 50),
        "p95": percentile(values, 95),
    }


def log2_fit_slope(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of ``y`` against ``log2(x)``.

    Used to check ``O(log n)`` scaling claims empirically: if ``y`` grows
    logarithmically in ``x``, the points ``(x, y)`` lie on a line in
    ``(log2 x, y)`` space and the slope is the constant in front of the log.
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    xs = [math.log2(x) for x, _ in points]
    ys = [y for _, y in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        raise ValueError("x values must not be all equal")
    return numerator / denominator
