"""Flat array-backed storage of membership bits.

The dict/list skip graph keeps each node's membership vector as a Python
tuple on the node object; every scan that walks a list therefore pays a
dict lookup, an attribute chain and a tuple index per (node, level) probe.
This module mirrors the same information into flat arrays:

* ``rows``  — an int-key map ``key -> row`` into the matrices below;
* ``bits``  — an ``int8`` matrix, ``bits[row, i]`` is membership bit ``i``;
* ``lengths`` — vector lengths; entries of ``bits`` beyond a row's length
  are garbage and must be masked through ``lengths``.

The store is a *mirror*, not the source of truth: :class:`SkipGraph`
updates it alongside its own structures (``attach_array_store``), the bulk
kernel entry points update whole runs with one slice assignment, and the
a-balance scans (:mod:`repro.skipgraph.balance`) read bit columns through
:meth:`ArrayBitStore.bit_column` — one vectorised gather instead of a
Python probe per member.  Everything remains answerable by the dict/list
path, which stays the executable reference (results are property-tested
identical with the store attached and absent).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

__all__ = ["ArrayBitStore"]

Key = Hashable
Bits = Tuple[int, ...]

#: Bit value marking "this row has no bit at that level" in gathered columns.
NO_BIT = -1

_INITIAL_ROWS = 256
_INITIAL_DEPTH = 24


class ArrayBitStore:
    """Membership bits of a node population as one ``int8`` matrix."""

    __slots__ = ("_rows", "_free", "_bits", "_lengths", "_capacity", "_depth")

    def __init__(self, nodes: Sequence[Tuple[Key, Bits]] = ()) -> None:
        self._rows: Dict[Key, int] = {}
        self._free: List[int] = []
        self._capacity = max(_INITIAL_ROWS, 2 * len(nodes))
        self._depth = _INITIAL_DEPTH
        self._bits = np.zeros((self._capacity, self._depth), dtype=np.int8)
        self._lengths = np.zeros(self._capacity, dtype=np.int32)
        for key, bits in nodes:
            self.insert(key, bits)

    # -------------------------------------------------------------- capacity
    def _grow_rows(self) -> None:
        new_capacity = self._capacity * 2
        bits = np.zeros((new_capacity, self._depth), dtype=np.int8)
        bits[: self._capacity] = self._bits
        lengths = np.zeros(new_capacity, dtype=np.int32)
        lengths[: self._capacity] = self._lengths
        self._bits = bits
        self._lengths = lengths
        self._free.extend(range(new_capacity - 1, self._capacity - 1, -1))
        self._capacity = new_capacity

    def _grow_depth(self, needed: int) -> None:
        new_depth = max(needed, self._depth * 2)
        bits = np.zeros((self._capacity, new_depth), dtype=np.int8)
        bits[:, : self._depth] = self._bits
        self._bits = bits
        self._depth = new_depth

    def _claim_row(self, key: Key) -> int:
        free = self._free
        if not free:
            if len(self._rows) >= self._capacity:
                self._grow_rows()
            if not free:
                row = len(self._rows)
                self._rows[key] = row
                return row
        row = free.pop()
        self._rows[key] = row
        return row

    # ------------------------------------------------------------- mutation
    def insert(self, key: Key, bits: Bits) -> None:
        if len(bits) > self._depth:
            self._grow_depth(len(bits))
        row = self._claim_row(key)
        if bits:
            self._bits[row, : len(bits)] = bits
        self._lengths[row] = len(bits)

    def remove(self, key: Key) -> None:
        row = self._rows.pop(key)
        self._free.append(row)

    def rewrite(self, key: Key, bits: Bits) -> None:
        if len(bits) > self._depth:
            self._grow_depth(len(bits))
        row = self._rows[key]
        if bits:
            self._bits[row, : len(bits)] = bits
        self._lengths[row] = len(bits)

    def rewrite_run(self, keys: Sequence[Key], bits: Bits) -> None:
        """Give every key of ``keys`` the same vector — one slice assignment."""
        if len(bits) > self._depth:
            self._grow_depth(len(bits))
        rows_map = self._rows
        rows = [rows_map[key] for key in keys]
        if bits:
            self._bits[rows, : len(bits)] = bits
        self._lengths[rows] = len(bits)

    def truncate_run(self, keys: Sequence[Key], length: int) -> None:
        """Truncate every key of ``keys`` to ``length`` bits (lengths only)."""
        rows_map = self._rows
        self._lengths[[rows_map[key] for key in keys]] = length

    def remove_run(self, keys: Sequence[Key]) -> None:
        rows_map = self._rows
        free = self._free
        for key in keys:
            free.append(rows_map.pop(key))

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Key) -> bool:
        return key in self._rows

    def vector(self, key: Key) -> Bits:
        row = self._rows[key]
        return tuple(int(b) for b in self._bits[row, : self._lengths[row]])

    def bit_column(self, keys: Sequence[Key], level: int) -> np.ndarray:
        """Bit ``level`` (0-based) of every key, :data:`NO_BIT` where absent.

        The vectorised form of the scanners' per-member probe
        ``bits[level] if len(bits) > level else None``.
        """
        rows = np.fromiter(
            map(self._rows.__getitem__, keys), dtype=np.intp, count=len(keys)
        )
        if level < self._depth:
            column = self._bits[rows, level]
        else:
            column = np.full(len(rows), NO_BIT, dtype=np.int8)
        column[self._lengths[rows] <= level] = NO_BIT
        return column
