"""The skip graph data structure.

The canonical state of a :class:`SkipGraph` is the set of nodes (ordered by
key) together with their membership vectors.  Every linked list of the skip
graph is *derived*: the list containing node ``x`` at level ``d`` is the set
of nodes whose membership vectors share ``x``'s first ``d`` bits, in key
order (paper, Section III).  Level 0 is the single base list containing all
nodes.

Because DSG's transformations only rewrite membership bits of the nodes in
one subtree (the linked list ``l_alpha`` shared by the communicating pair),
storing the state this way makes "local and partial reconstruction" a matter
of editing those nodes' vectors; the level lists of untouched subtrees are
unaffected, which mirrors the locality argument of the paper.

The class keeps a lazily built cache of level lists so that routing repeated
in an unchanged region does not rescan all nodes; mutations invalidate only
the affected part of the cache.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.skipgraph.membership import MembershipVector, common_prefix_length
from repro.skipgraph.node import Key, SkipGraphNode

__all__ = ["SkipGraph"]

Prefix = Tuple[int, ...]


class SkipGraph:
    """A skip graph over totally ordered keys."""

    def __init__(self, nodes: Optional[Iterable[SkipGraphNode]] = None) -> None:
        self._nodes: Dict[Key, SkipGraphNode] = {}
        self._sorted_keys: List[Key] = []
        # Cache: (level, prefix bits) -> keys of that list, in key order.
        self._list_cache: Dict[Tuple[int, Prefix], List[Key]] = {}
        self._height_cache: Optional[int] = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)

    # ------------------------------------------------------------- population
    def add_node(self, node: SkipGraphNode) -> None:
        """Insert ``node``; keys must be unique."""
        if node.key in self._nodes:
            raise ValueError(f"duplicate key {node.key!r}")
        self._nodes[node.key] = node
        insort(self._sorted_keys, node.key)
        self._list_cache.clear()
        self._height_cache = None

    def remove_node(self, key: Key) -> SkipGraphNode:
        """Remove and return the node with ``key``."""
        node = self._nodes.pop(key, None)
        if node is None:
            raise KeyError(f"no node with key {key!r}")
        index = bisect_left(self._sorted_keys, key)
        del self._sorted_keys[index]
        self._list_cache.clear()
        self._height_cache = None
        return node

    def node(self, key: Key) -> SkipGraphNode:
        return self._nodes[key]

    def has_node(self, key: Key) -> bool:
        return key in self._nodes

    def __contains__(self, key: Key) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[SkipGraphNode]:
        for key in self._sorted_keys:
            yield self._nodes[key]

    @property
    def keys(self) -> List[Key]:
        """All keys in ascending order (including dummy nodes)."""
        return list(self._sorted_keys)

    @property
    def real_keys(self) -> List[Key]:
        """Keys of non-dummy nodes in ascending order."""
        return [k for k in self._sorted_keys if not self._nodes[k].is_dummy]

    def nodes(self) -> List[SkipGraphNode]:
        return [self._nodes[key] for key in self._sorted_keys]

    def dummy_keys(self) -> List[Key]:
        return [k for k in self._sorted_keys if self._nodes[k].is_dummy]

    # ------------------------------------------------------------ level lists
    def membership(self, key: Key) -> MembershipVector:
        return self._nodes[key].membership

    def set_membership(self, key: Key, membership: MembershipVector | Iterable[int] | str) -> None:
        """Replace the membership vector of ``key`` and invalidate caches.

        Only the cache entries that could contain the node (levels >= 1 whose
        prefix matches either the old or the new vector) need invalidation,
        plus nothing at level 0 since the base list is key-order only.
        """
        node = self._nodes[key]
        old = node.membership
        new = MembershipVector(membership) if not isinstance(membership, MembershipVector) else membership
        node.membership = new
        self._height_cache = None
        self._invalidate_for_change(old, new)

    def _invalidate_for_change(self, old: MembershipVector, new: MembershipVector) -> None:
        keep_prefix = common_prefix_length(old, new)
        longest = max(len(old), len(new))
        for level in range(keep_prefix + 1, longest + 1):
            for vector in (old, new):
                if len(vector) >= level:
                    self._list_cache.pop((level, vector.bits[:level]), None)

    def invalidate_cache(self) -> None:
        self._list_cache.clear()
        self._height_cache = None

    def list_members(self, level: int, prefix: MembershipVector | Iterable[int] | str) -> List[Key]:
        """Keys of the linked list at ``level`` identified by ``prefix``.

        ``prefix`` must have exactly ``level`` bits.  Nodes whose membership
        vectors are shorter than ``level`` belong to no multi-node list at
        that level and are excluded unless their (full) vector equals the
        prefix of the same length.
        """
        prefix_vec = prefix if isinstance(prefix, MembershipVector) else MembershipVector(prefix)
        if len(prefix_vec) != level:
            raise ValueError(f"prefix must have exactly {level} bits, got {len(prefix_vec)}")
        cache_key = (level, prefix_vec.bits)
        cached = self._list_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        prefix_bits = prefix_vec.bits
        members = [
            key
            for key in self._sorted_keys
            if self._nodes[key].membership.bits[:level] == prefix_bits
        ]
        self._list_cache[cache_key] = members
        return list(members)

    def list_of(self, key: Key, level: int) -> List[Key]:
        """Keys of the linked list containing ``key`` at ``level`` (key order)."""
        if level == 0:
            return list(self._sorted_keys)
        node = self._nodes[key]
        if len(node.membership) < level:
            return [key]
        return self.list_members(level, node.membership.prefix(level))

    def lists_at_level(self, level: int) -> Dict[Prefix, List[Key]]:
        """All linked lists at ``level``, keyed by their prefix bits.

        Nodes with membership vectors shorter than ``level`` appear as
        singleton lists keyed by their full vector (padded marker lists).
        """
        if level == 0:
            return {(): list(self._sorted_keys)}
        lists: Dict[Prefix, List[Key]] = {}
        for key in self._sorted_keys:
            bits = self._nodes[key].membership.bits
            # Nodes shorter than the level are singletons beyond their depth.
            prefix = bits[:level] if len(bits) >= level else bits
            lists.setdefault(prefix, []).append(key)
        return lists

    # ------------------------------------------------------------- neighbours
    def neighbors(self, key: Key, level: int) -> Tuple[Optional[Key], Optional[Key]]:
        """Left and right neighbour of ``key`` in its list at ``level``."""
        members = self.list_of(key, level)
        index = members.index(key)
        left = members[index - 1] if index > 0 else None
        right = members[index + 1] if index + 1 < len(members) else None
        return left, right

    def right_neighbor(self, key: Key, level: int) -> Optional[Key]:
        return self.neighbors(key, level)[1]

    def left_neighbor(self, key: Key, level: int) -> Optional[Key]:
        return self.neighbors(key, level)[0]

    # ------------------------------------------------------------- structure
    def singleton_level(self, key: Key) -> int:
        """Lowest level at which ``key`` is the only member of its list."""
        if len(self._nodes) <= 1:
            return 0
        bits = self._nodes[key].membership.bits
        deepest_shared = 0
        for other in self._sorted_keys:
            if other == key:
                continue
            other_bits = self._nodes[other].membership.bits
            shared = 0
            for bit_a, bit_b in zip(bits, other_bits):
                if bit_a != bit_b:
                    break
                shared += 1
            deepest_shared = max(deepest_shared, shared)
        return deepest_shared + 1

    def common_level(self, u: Key, v: Key) -> int:
        """Highest level at which ``u`` and ``v`` share a linked list (``alpha``)."""
        return common_prefix_length(self._nodes[u].membership, self._nodes[v].membership)

    def height(self) -> int:
        """Number of levels: 1 + the highest level holding a list of size >= 2.

        An empty or single-node skip graph has height 1 (just the base list).
        The deepest shared prefix is attained between lexicographic
        neighbours of the membership vectors, so one sort suffices.
        """
        if len(self._nodes) <= 1:
            return 1
        if self._height_cache is not None:
            return self._height_cache
        vectors = sorted(self._nodes[key].membership.bits for key in self._sorted_keys)
        deepest = 0
        for first, second in zip(vectors, vectors[1:]):
            shared = 0
            for bit_a, bit_b in zip(first, second):
                if bit_a != bit_b:
                    break
                shared += 1
            deepest = max(deepest, shared)
        self._height_cache = deepest + 2
        return self._height_cache

    def max_list_level(self) -> int:
        """Highest level at which some list still has two or more nodes."""
        return self.height() - 1 if len(self._nodes) > 1 else 0

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise ``ValueError`` if the structure is internally inconsistent.

        Checks that every node eventually becomes singleton (no two nodes
        share a complete membership vector of equal length where one is a
        prefix of the other and equal) and that keys are unique and sorted.
        Dummy nodes are exempt: they deliberately stop at the level where
        they were inserted (paper, Section IV-F) and never need to become
        singletons.
        """
        seen_vectors: Dict[Tuple[int, ...], Key] = {}
        for key in self._sorted_keys:
            node = self._nodes[key]
            if node.is_dummy:
                continue
            vector = node.membership.bits
            if vector in seen_vectors:
                other = seen_vectors[vector]
                raise ValueError(
                    f"nodes {other!r} and {key!r} share the full membership vector "
                    f"{''.join(map(str, vector))!r}; neither becomes singleton"
                )
            seen_vectors[vector] = key
        for first, second in zip(self._sorted_keys, self._sorted_keys[1:]):
            if not first < second:
                raise ValueError(f"keys not strictly sorted: {first!r} !< {second!r}")

    def is_valid(self) -> bool:
        try:
            self.validate()
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------ misc
    def copy(self) -> "SkipGraph":
        clone = SkipGraph()
        for key in self._sorted_keys:
            node = self._nodes[key]
            clone.add_node(
                SkipGraphNode(
                    key=node.key,
                    membership=MembershipVector(node.membership.bits),
                    payload=node.payload,
                    is_dummy=node.is_dummy,
                )
            )
        return clone

    def membership_table(self) -> Dict[Key, str]:
        """Mapping key -> membership vector string (for display and tests)."""
        return {key: str(self._nodes[key].membership) for key in self._sorted_keys}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipGraph(n={len(self)}, height={self.height()})"
