"""The skip graph data structure.

The canonical state of a :class:`SkipGraph` is the set of nodes (ordered by
key) together with their membership vectors.  Every linked list of the skip
graph is *derived*: the list containing node ``x`` at level ``d`` is the set
of nodes whose membership vectors share ``x``'s first ``d`` bits, in key
order (paper, Section III).  Level 0 is the single base list containing all
nodes.

Because DSG's transformations only rewrite membership bits of the nodes in
one subtree (the linked list ``l_alpha`` shared by the communicating pair),
storing the state this way makes "local and partial reconstruction" a matter
of editing those nodes' vectors; the level lists of untouched subtrees are
unaffected, which mirrors the locality argument of the paper.

Scaling machinery (the request hot path relies on all four):

* **Hierarchical list cache** — a list at level ``d`` is materialised by
  filtering its *parent* list at level ``d - 1`` (recursively down to the
  base list), never by scanning all nodes.  Rebuilding the lists of a
  subtree after a transformation therefore costs ``O(|subtree| * depth)``,
  not ``O(n)`` per list.
* **Position maps** — every cached list lazily grows a ``key -> index`` map
  so :meth:`neighbors` is O(1) amortized instead of an O(list) scan per
  routing hop.
* **Targeted invalidation** — node insertion/removal and membership rewrites
  only evict the cache entries whose prefix the affected vector matches;
  untouched subtrees stay warm across requests.
* **Incremental height** — a per-level count of multi-member prefixes is
  maintained on every mutation, making :meth:`height` O(height) instead of
  an O(n log n) rescan (the DSG front end queries the height after every
  request).
* **Real-prefix index** — alongside the total per-prefix carrier counts, a
  per-prefix count of *dummy* carriers (dummies are rare, so the hot-path
  membership rewrites of real nodes never touch it) makes
  :meth:`real_prefix_count` / :meth:`shares_real_prefix` O(1) per query.
  This is what lets :func:`~repro.skipgraph.build.draw_membership_bits`
  answer "does any other real node share this prefix?" in O(1) per drawn
  bit instead of scanning ``real_keys`` — the join rule at 100k nodes.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.skipgraph.membership import MembershipVector, common_prefix_length
from repro.skipgraph.node import Key, SkipGraphNode

__all__ = ["SkipGraph"]

Prefix = Tuple[int, ...]


def _merge_sorted(dst: List, added: List) -> None:
    """Merge sorted ``added`` into sorted ``dst`` in place.

    Three regimes.  Dense batches append and re-sort: timsort sees exactly
    two sorted runs and gallops, one comparison-bounded merge pass for the
    whole batch.  Tiny batches (or small lists) use ``insort`` — one C
    memmove per key.  In between — a handful of keys into a huge list —
    the list is rebuilt with one slice copy per gap, so every element is
    copied once instead of shifted once per inserted key.
    """
    size = len(dst)
    batch = len(added)
    if batch * 24 >= size:
        dst.extend(added)
        dst.sort()
        return
    if batch < 4 or size < 16384:
        for key in added:
            insort(dst, key)
        return
    # Middle regime — a handful of keys into a huge list: k insort memmoves
    # would each shift ~size/2 slots, so rebuild instead with k+1 slice
    # copies (every element copied once, all in C).
    out: List = []
    position = 0
    for key in added:
        index = bisect_left(dst, key, position)
        out.extend(dst[position:index])
        out.append(key)
        position = index
    out.extend(dst[position:])
    dst[:] = out


def _delete_sorted(dst: List, removed: List) -> None:
    """Delete every key of ``removed`` from sorted ``dst`` in place.

    The removal mirror of :func:`_merge_sorted`: sparse batches pay one
    bisect plus one C memmove per key, a handful of keys in a huge list
    get the slice-rebuild treatment, dense batches one rebuild pass with
    an O(1) set probe per surviving element.  Keys absent from ``dst``
    are ignored in every regime.
    """
    size = len(dst)
    batch = len(removed)
    if batch * 24 >= size:
        doomed = set(removed)
        dst[:] = [key for key in dst if key not in doomed]
        return
    if batch < 4 or size < 16384:
        for key in removed:
            index = bisect_left(dst, key)
            if index < len(dst) and dst[index] == key:
                del dst[index]
        return
    out: List = []
    position = 0
    for key in sorted(removed):
        index = bisect_left(dst, key, position)
        if index < len(dst) and dst[index] == key:
            out.extend(dst[position:index])
            position = index + 1
    out.extend(dst[position:])
    dst[:] = out


#: Lists at least this long take insertions through a lazy pending buffer
#: (merged on the next read) instead of an eager ``insort``: each insort
#: into a six-figure list is an O(n) memmove, and the churn path lands
#: dozens of dummies per request.  Shorter lists are patched eagerly.
_PENDING_MIN = 4096


class SkipGraph:
    """A skip graph over totally ordered keys."""

    def __init__(self, nodes: Optional[Iterable[SkipGraphNode]] = None) -> None:
        self._nodes: Dict[Key, SkipGraphNode] = {}
        self._sorted_keys: List[Key] = []
        # Lazy insertion buffers for long lists (see _PENDING_MIN): sorted
        # keys inserted into the structure but not yet merged into the base
        # list / a cached list.  Every read path flushes before exposing the
        # list; an entry in _pending_inserts implies the cache entry exists.
        self._base_pending: List[Key] = []
        self._pending_inserts: Dict[Tuple[int, Prefix], List[Key]] = {}
        # Cache: (level, prefix bits) -> keys of that list, in key order.
        self._list_cache: Dict[Tuple[int, Prefix], List[Key]] = {}
        # Lazily built key -> index maps for cached lists (O(1) neighbours).
        self._pos_cache: Dict[Tuple[int, Prefix], Dict[Key, int]] = {}
        # Incremental height bookkeeping: how many nodes carry each prefix,
        # and per level, how many prefixes have >= 2 carriers.
        self._prefix_counts: Dict[Prefix, int] = {}
        self._multi_prefixes_per_level: Dict[int, int] = {}
        # Real-prefix index: per-prefix count of *dummy* carriers plus the
        # total dummy population.  Real carriers of a prefix are then
        # ``_prefix_counts[p] - _dummy_prefix_counts.get(p, 0)`` — O(1), and
        # the hot path (membership rewrites of real nodes) never pays for it.
        self._dummy_prefix_counts: Dict[Prefix, int] = {}
        self._dummy_count = 0
        # Optional numpy mirror of the membership bits (attach_array_store).
        self._array_store = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)

    # --------------------------------------------------- lazy insert buffers
    def _base_list(self) -> List[Key]:
        """The base (level-0) list with any pending insertions merged."""
        pending = self._base_pending
        if pending:
            self._base_pending = []
            _merge_sorted(self._sorted_keys, pending)
        return self._sorted_keys

    def _flush_list(self, cache_key: Tuple[int, Prefix], cached: List[Key]) -> None:
        pending = self._pending_inserts.pop(cache_key, None)
        if pending is not None:
            _merge_sorted(cached, pending)

    def _flush_pending(self) -> None:
        """Merge every outstanding lazy insertion buffer (integrity hook)."""
        self._base_list()
        if self._pending_inserts:
            for cache_key in list(self._pending_inserts):
                self._flush_list(cache_key, self._list_cache[cache_key])

    # ------------------------------------------------------------- population
    def add_node(self, node: SkipGraphNode) -> None:
        """Insert ``node``; keys must be unique.

        Cached lists the node belongs to are patched in place (sorted
        insertion) rather than evicted: evicting would force the next query
        to rebuild the whole ancestor chain from the base list, which made
        per-transformation dummy insertion O(n).  Position maps cannot be
        patched cheaply (an insertion shifts every later index) and are
        rebuilt lazily.
        """
        if node.key in self._nodes:
            raise ValueError(f"duplicate key {node.key!r}")
        self._nodes[node.key] = node
        if len(self._sorted_keys) >= _PENDING_MIN:
            insort(self._base_pending, node.key)
        else:
            insort(self._sorted_keys, node.key)
        bits = node.membership.bits
        if node.is_dummy:
            self._dummy_count += 1
        self._register_vector(bits, dummy=node.is_dummy)
        if self._array_store is not None:
            self._array_store.insert(node.key, bits)
        list_cache = self._list_cache
        pending_inserts = self._pending_inserts
        pop_pos = self._pos_cache.pop
        for level in range(1, len(bits) + 1):
            cache_key = (level, bits[:level])
            cached = list_cache.get(cache_key)
            if cached is not None:
                if len(cached) >= _PENDING_MIN:
                    bucket = pending_inserts.get(cache_key)
                    if bucket is None:
                        pending_inserts[cache_key] = [node.key]
                    else:
                        insort(bucket, node.key)
                else:
                    insort(cached, node.key)
                pop_pos(cache_key, None)

    def remove_node(self, key: Key) -> SkipGraphNode:
        """Remove and return the node with ``key``.

        Cached lists are patched in place, mirroring :meth:`add_node`.
        """
        node = self._nodes.pop(key, None)
        if node is None:
            raise KeyError(f"no node with key {key!r}")
        base = self._base_list()
        index = bisect_left(base, key)
        del base[index]
        bits = node.membership.bits
        if node.is_dummy:
            self._dummy_count -= 1
        self._unregister_vector(bits, dummy=node.is_dummy)
        if self._array_store is not None:
            self._array_store.remove(key)
        list_cache = self._list_cache
        pending_inserts = self._pending_inserts
        pop_pos = self._pos_cache.pop
        for level in range(1, len(bits) + 1):
            cache_key = (level, bits[:level])
            cached = list_cache.get(cache_key)
            if cached is not None:
                if pending_inserts:
                    self._flush_list(cache_key, cached)
                member_index = bisect_left(cached, key)
                if member_index < len(cached) and cached[member_index] == key:
                    del cached[member_index]
                pop_pos(cache_key, None)
        return node

    def node(self, key: Key) -> SkipGraphNode:
        return self._nodes[key]

    def has_node(self, key: Key) -> bool:
        return key in self._nodes

    def __contains__(self, key: Key) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[SkipGraphNode]:
        for key in self._base_list():
            yield self._nodes[key]

    @property
    def keys(self) -> List[Key]:
        """All keys in ascending order (including dummy nodes)."""
        return list(self._base_list())

    @property
    def real_keys(self) -> List[Key]:
        """Keys of non-dummy nodes in ascending order."""
        return [k for k in self._base_list() if not self._nodes[k].is_dummy]

    @property
    def real_count(self) -> int:
        """Number of non-dummy nodes — O(1), no ``real_keys`` scan."""
        return len(self._nodes) - self._dummy_count

    @property
    def dummy_node_count(self) -> int:
        """Number of dummy nodes — O(1), no ``dummy_keys`` scan."""
        return self._dummy_count

    def nodes(self) -> List[SkipGraphNode]:
        return [self._nodes[key] for key in self._base_list()]

    def dummy_keys(self) -> List[Key]:
        return [k for k in self._base_list() if self._nodes[k].is_dummy]

    # ------------------------------------------------------------ level lists
    def membership(self, key: Key) -> MembershipVector:
        return self._nodes[key].membership

    def set_membership(self, key: Key, membership: MembershipVector | Iterable[int] | str) -> None:
        """Replace the membership vector of ``key`` and invalidate caches.

        Only the cache entries that could contain the node (levels >= 1 whose
        prefix matches either the old or the new vector) need invalidation,
        plus nothing at level 0 since the base list is key-order only.
        """
        node = self._nodes[key]
        old = node.membership
        new = MembershipVector(membership) if not isinstance(membership, MembershipVector) else membership
        node.membership = new
        keep_prefix = common_prefix_length(old, new)
        self._unregister_vector(old.bits, start=keep_prefix + 1, dummy=node.is_dummy)
        self._register_vector(new.bits, start=keep_prefix + 1, dummy=node.is_dummy)
        if self._array_store is not None:
            self._array_store.rewrite(key, new.bits)
        self._invalidate_for_change(old, new, keep_prefix)

    def _invalidate_for_change(self, old: MembershipVector, new: MembershipVector, keep_prefix: int) -> None:
        longest = max(len(old), len(new))
        pop_list = self._list_cache.pop
        pop_pos = self._pos_cache.pop
        pop_pending = self._pending_inserts.pop
        for level in range(keep_prefix + 1, longest + 1):
            for vector in (old, new):
                if len(vector) >= level:
                    cache_key = (level, vector.bits[:level])
                    pop_list(cache_key, None)
                    pop_pos(cache_key, None)
                    pop_pending(cache_key, None)

    def invalidate_cache(self) -> None:
        self._list_cache.clear()
        self._pos_cache.clear()
        # Pending insertions for evicted lists are dropped with their lists
        # (the keys live in the node table and reappear on re-derivation);
        # the base list's buffer is merged on its next read.
        self._pending_inserts.clear()

    def attach_array_store(self) -> None:
        """Mirror the membership bits into a flat numpy bit matrix.

        After attaching, every membership mutation (single-op and bulk) keeps
        the mirror in sync, and the a-balance scans gather whole bit columns
        from it instead of probing node objects one by one.  The dict/list
        structures remain the source of truth; detach by setting
        ``_array_store`` back to ``None``.  Copies made with :meth:`copy`
        never inherit the mirror.
        """
        from repro.skipgraph.array_store import ArrayBitStore

        nodes = self._nodes
        self._array_store = ArrayBitStore(
            [(key, nodes[key].membership.bits) for key in self._base_list()]
        )

    # ------------------------------------------------- incremental height data
    def _register_vector(self, bits: Prefix, start: int = 1, dummy: bool = False) -> None:
        """Count the prefixes of ``bits`` from length ``start`` upward.

        ``start`` lets :meth:`set_membership` skip the prefix shared between
        the old and the new vector, whose counts are unchanged — the
        transformation's one-bit appends then cost O(1) here instead of
        O(depth).  ``dummy`` carriers are additionally counted in the
        dummy-prefix index so :meth:`real_prefix_count` stays exact.
        """
        counts = self._prefix_counts
        multi = self._multi_prefixes_per_level
        for level in range(start, len(bits) + 1):
            prefix = bits[:level]
            count = counts.get(prefix, 0) + 1
            counts[prefix] = count
            if count == 2:
                multi[level] = multi.get(level, 0) + 1
        if dummy:
            dummy_counts = self._dummy_prefix_counts
            for level in range(start, len(bits) + 1):
                prefix = bits[:level]
                dummy_counts[prefix] = dummy_counts.get(prefix, 0) + 1

    def _unregister_vector(self, bits: Prefix, start: int = 1, dummy: bool = False) -> None:
        counts = self._prefix_counts
        multi = self._multi_prefixes_per_level
        for level in range(start, len(bits) + 1):
            prefix = bits[:level]
            count = counts[prefix] - 1
            if count:
                counts[prefix] = count
            else:
                del counts[prefix]
            if count == 1:
                remaining = multi[level] - 1
                if remaining:
                    multi[level] = remaining
                else:
                    del multi[level]
        if dummy:
            dummy_counts = self._dummy_prefix_counts
            for level in range(start, len(bits) + 1):
                prefix = bits[:level]
                remaining = dummy_counts[prefix] - 1
                if remaining:
                    dummy_counts[prefix] = remaining
                else:
                    del dummy_counts[prefix]

    # ------------------------------------------------------------ bulk kernel
    def _register_vectors(self, bits: Prefix, count: int, start: int = 1, dummy_count: int = 0) -> None:
        """Count ``count`` new carriers of every prefix of ``bits`` at once.

        The bulk form of :meth:`_register_vector`: one dictionary update per
        prefix instead of one per carrier, with the multi-prefix transition
        taken when the carrier count crosses two in either direction of the
        batch.
        """
        counts = self._prefix_counts
        multi = self._multi_prefixes_per_level
        for level in range(start, len(bits) + 1):
            prefix = bits[:level]
            old = counts.get(prefix, 0)
            counts[prefix] = old + count
            if old < 2 <= old + count:
                multi[level] = multi.get(level, 0) + 1
        if dummy_count:
            dummy_counts = self._dummy_prefix_counts
            for level in range(start, len(bits) + 1):
                prefix = bits[:level]
                dummy_counts[prefix] = dummy_counts.get(prefix, 0) + dummy_count

    def promote_run(self, keys, level: int, bit: int, tracker=None) -> bool:
        """Append ``bit`` at ``level`` for every key of ``keys`` in one splice.

        The transformation's split loop promotes a whole 0- or 1-sublist at
        once: every promoted key carries the identical ``level - 1``-bit
        parent vector and the keys ascend (they are a filtered key-ordered
        list).  Under that precondition the run shares ONE immutable
        membership vector, registers the new prefix once with the carrier
        count, and — when the new prefix had no prior carriers — installs
        the run directly as the cached list at ``(level, new prefix)``
        instead of invalidating it ``len(keys)`` times.

        Returns ``False`` (graph untouched) when the precondition does not
        hold, so callers can fall back to per-op application.  ``tracker``
        receives the same dirty marks the per-op path would emit, before
        the mutation.
        """
        if not keys:
            return True
        nodes = self._nodes
        first = nodes.get(keys[0])
        if first is None:
            return False
        parent_bits = first.membership.bits
        if len(parent_bits) != level - 1:
            return False
        dummy_count = 0
        previous = None
        for key in keys:
            node = nodes.get(key)
            if node is None or node.membership.bits != parent_bits:
                return False
            if previous is not None and not previous < key:
                return False
            previous = key
            if node.is_dummy:
                dummy_count += 1
        new_bits = parent_bits + (bit,)
        if tracker is not None:
            tracker.mark_run(level - 1, parent_bits, keys)
            tracker.mark_run(level, new_bits, keys)
        prior_carriers = self._prefix_counts.get(new_bits, 0)
        shared = MembershipVector._from_trusted(new_bits)
        for key in keys:
            nodes[key].membership = shared
        if self._array_store is not None:
            self._array_store.rewrite_run(keys, new_bits)
        self._register_vectors(new_bits, len(keys), start=level, dummy_count=dummy_count)
        cache_key = (level, new_bits)
        if prior_carriers == 0:
            # The run is the complete new list: install it rather than
            # forcing the next read to re-derive it from the parent list.
            self._list_cache[cache_key] = list(keys)
        else:
            self._list_cache.pop(cache_key, None)
        self._pos_cache.pop(cache_key, None)
        self._pending_inserts.pop(cache_key, None)
        return True

    def demote_run(self, keys, length: int, tracker=None) -> bool:
        """Truncate every key of ``keys`` to ``length`` bits in one pass.

        The keys must ascend, share their first ``length`` bits (they come
        from one list of the subtree being rebuilt) and all be longer than
        ``length``.  Prefix-count updates and cache evictions are aggregated
        per distinct abandoned prefix — the subtree below the cut is a trie,
        so the distinct prefixes number far fewer than the per-key total.

        Returns ``False`` (graph untouched) when a precondition fails.
        """
        if not keys:
            return True
        nodes = self._nodes
        shared_bits: Optional[Prefix] = None
        entries = []
        previous = None
        for key in keys:
            node = nodes.get(key)
            if node is None:
                return False
            bits = node.membership.bits
            if len(bits) <= length:
                return False
            if shared_bits is None:
                shared_bits = bits[:length]
            elif bits[:length] != shared_bits:
                return False
            if previous is not None and not previous < key:
                return False
            previous = key
            entries.append((node, bits))
        affected: Dict[Tuple[int, Prefix], List[Key]] = {}
        for (node, bits), key in zip(entries, keys):
            for level in range(length + 1, len(bits) + 1):
                entry = (level, bits[:level])
                bucket = affected.get(entry)
                if bucket is None:
                    affected[entry] = [key]
                else:
                    bucket.append(key)
        if tracker is not None:
            tracker.mark_run(length, shared_bits, keys)
            for (level, prefix), marked in affected.items():
                tracker.mark_run(level, prefix, marked)
        shared = MembershipVector._from_trusted(shared_bits)
        if self._array_store is not None:
            self._array_store.truncate_run(keys, length)
        dummy_counts = self._dummy_prefix_counts
        for node, bits in entries:
            node.membership = shared
            if node.is_dummy:
                for level in range(length + 1, len(bits) + 1):
                    prefix = bits[:level]
                    remaining = dummy_counts[prefix] - 1
                    if remaining:
                        dummy_counts[prefix] = remaining
                    else:
                        del dummy_counts[prefix]
        counts = self._prefix_counts
        multi = self._multi_prefixes_per_level
        pop_list = self._list_cache.pop
        pop_pos = self._pos_cache.pop
        pop_pending = self._pending_inserts.pop
        for (level, prefix), abandoned in affected.items():
            old = counts[prefix]
            new = old - len(abandoned)
            if new:
                counts[prefix] = new
            else:
                del counts[prefix]
            if old >= 2 > new:
                remaining = multi[level] - 1
                if remaining:
                    multi[level] = remaining
                else:
                    del multi[level]
            pop_list((level, prefix), None)
            pop_pos((level, prefix), None)
            pop_pending((level, prefix), None)
        return True

    def remove_run(self, keys, tracker=None) -> None:
        """Remove every node in ``keys`` (the bulk form of :meth:`remove_node`).

        End state identical to removing one by one; the prefix-index and
        cache bookkeeping is aggregated per distinct prefix — the dummies a
        transformation clears share their deep prefixes almost entirely, so
        the dictionary traffic collapses from O(keys * depth) to roughly
        O(distinct prefixes).  ``tracker`` marks are emitted for every key
        before any node is removed (marks need pre-departure vectors).
        """
        if tracker is not None:
            for key in keys:
                tracker.mark_remove(self, key)
        nodes = self._nodes
        store = self._array_store
        affected: Dict[Tuple[int, Prefix], List[Key]] = {}
        dummy_affected: Dict[Tuple[int, Prefix], int] = {}
        for key in keys:
            node = nodes.pop(key, None)
            if node is None:
                raise KeyError(f"no node with key {key!r}")
            bits = node.membership.bits
            if node.is_dummy:
                self._dummy_count -= 1
            if store is not None:
                store.remove(key)
            for level in range(1, len(bits) + 1):
                entry = (level, bits[:level])
                bucket = affected.get(entry)
                if bucket is None:
                    affected[entry] = [key]
                else:
                    bucket.append(key)
                if node.is_dummy:
                    dummy_affected[entry] = dummy_affected.get(entry, 0) + 1
        _delete_sorted(self._base_list(), list(keys))
        counts = self._prefix_counts
        multi = self._multi_prefixes_per_level
        dummy_counts = self._dummy_prefix_counts
        list_cache = self._list_cache
        pending_inserts = self._pending_inserts
        pop_pos = self._pos_cache.pop
        for (level, prefix), removed in affected.items():
            old = counts[prefix]
            new = old - len(removed)
            if new:
                counts[prefix] = new
            else:
                del counts[prefix]
            if old >= 2 > new:
                remaining = multi[level] - 1
                if remaining:
                    multi[level] = remaining
                else:
                    del multi[level]
            dummies_gone = dummy_affected.get((level, prefix), 0)
            if dummies_gone:
                remaining = dummy_counts[prefix] - dummies_gone
                if remaining:
                    dummy_counts[prefix] = remaining
                else:
                    del dummy_counts[prefix]
            cached = list_cache.get((level, prefix))
            if cached is not None:
                if pending_inserts:
                    self._flush_list((level, prefix), cached)
                _delete_sorted(cached, removed)
                pop_pos((level, prefix), None)

    def insert_run(self, new_nodes, tracker=None) -> None:
        """Insert every node of ``new_nodes`` (the bulk form of :meth:`add_node`).

        End state identical to adding one by one.  The base list and each
        affected cached list are patched with one merge instead of one
        ``insort`` memmove per node — the win that matters when a repair
        round lands hundreds of dummies into a six-figure base list.
        Membership vectors may differ between the nodes; keys need not be
        ordered but must be fresh and distinct.  ``tracker`` receives the
        same ``mark_insert`` calls the per-op path would emit.
        """
        if not new_nodes:
            return
        if tracker is not None:
            for node in new_nodes:
                tracker.mark_insert(node.key, node.membership.bits)
        nodes = self._nodes
        store = self._array_store
        new_keys: List[Key] = []
        by_list: Dict[Tuple[int, Prefix], List[Key]] = {}
        list_cache = self._list_cache
        for node in new_nodes:
            key = node.key
            if key in nodes:
                raise ValueError(f"duplicate key {key!r}")
            nodes[key] = node
            new_keys.append(key)
            bits = node.membership.bits
            if node.is_dummy:
                self._dummy_count += 1
            self._register_vector(bits, dummy=node.is_dummy)
            if store is not None:
                store.insert(key, bits)
            for level in range(1, len(bits) + 1):
                cache_key = (level, bits[:level])
                if cache_key in list_cache:
                    bucket = by_list.get(cache_key)
                    if bucket is None:
                        by_list[cache_key] = [key]
                    else:
                        bucket.append(key)
        new_keys.sort()
        if len(self._sorted_keys) >= _PENDING_MIN:
            _merge_sorted(self._base_pending, new_keys)
        else:
            _merge_sorted(self._sorted_keys, new_keys)
        pending_inserts = self._pending_inserts
        pop_pos = self._pos_cache.pop
        for cache_key, added in by_list.items():
            added.sort()
            cached = list_cache[cache_key]
            if len(cached) >= _PENDING_MIN:
                bucket = pending_inserts.get(cache_key)
                if bucket is None:
                    pending_inserts[cache_key] = added
                else:
                    _merge_sorted(bucket, added)
            else:
                _merge_sorted(cached, added)
            pop_pos(cache_key, None)

    # ------------------------------------------------------ real-prefix index
    def real_prefix_count(self, prefix: Prefix) -> int:
        """How many *real* (non-dummy) nodes carry ``prefix`` — O(1).

        The empty prefix counts the whole real population.  Derived from
        the incremental height bookkeeping: total carriers minus dummy
        carriers, both maintained on every mutation.
        """
        if not prefix:
            return self.real_count
        return self._prefix_counts.get(prefix, 0) - self._dummy_prefix_counts.get(prefix, 0)

    def shares_real_prefix(self, prefix: Prefix, exclude: Optional[Key] = None) -> bool:
        """Whether any real node other than ``exclude`` carries ``prefix``.

        This is the join-rule predicate of Section IV-G ("does some existing
        real node share the joiner's prefix?") answered from the prefix
        index in O(|prefix|) instead of an O(n) ``real_keys`` scan —
        semantically identical to the scan, including the treatment of a
        node already present under ``exclude``.
        """
        count = self.real_prefix_count(prefix)
        if exclude is not None:
            node = self._nodes.get(exclude)
            if node is not None and not node.is_dummy:
                bits = node.membership.bits
                if len(bits) >= len(prefix) and bits[: len(prefix)] == prefix:
                    count -= 1
        return count > 0

    # ---------------------------------------------------------- list building
    def _members_internal(self, level: int, prefix_bits: Prefix) -> List[Key]:
        """The cached (live, do-not-mutate) list at ``level`` / ``prefix_bits``.

        On a miss the list is derived from the deepest cached ancestor list
        (ultimately the base list), so a rebuild costs O(ancestor size) per
        missing level rather than a scan over all nodes.
        """
        if level == 0:
            return self._base_list()
        cache = self._list_cache
        cached = cache.get((level, prefix_bits))
        if cached is not None:
            if self._pending_inserts:
                self._flush_list((level, prefix_bits), cached)
            return cached
        base_level = level - 1
        while base_level > 0 and (base_level, prefix_bits[:base_level]) not in cache:
            base_level -= 1
        if base_level == 0:
            members = self._base_list()
        else:
            members = cache[(base_level, prefix_bits[:base_level])]
            if self._pending_inserts:
                self._flush_list((base_level, prefix_bits[:base_level]), members)
        nodes = self._nodes
        for depth in range(base_level + 1, level + 1):
            wanted = prefix_bits[depth - 1]
            members = [
                key
                for key in members
                if len(bits := nodes[key].membership.bits) >= depth and bits[depth - 1] == wanted
            ]
            cache_key = (depth, prefix_bits[:depth])
            cache[cache_key] = members
            self._pos_cache.pop(cache_key, None)
        return members

    def _positions(self, level: int, prefix_bits: Prefix, members: List[Key]) -> Dict[Key, int]:
        cache_key = (level, prefix_bits)
        positions = self._pos_cache.get(cache_key)
        if positions is None:
            positions = {key: index for index, key in enumerate(members)}
            self._pos_cache[cache_key] = positions
        return positions

    def list_members(self, level: int, prefix: MembershipVector | Iterable[int] | str) -> List[Key]:
        """Keys of the linked list at ``level`` identified by ``prefix``.

        ``prefix`` must have exactly ``level`` bits.  Nodes whose membership
        vectors are shorter than ``level`` belong to no multi-node list at
        that level and are excluded unless their (full) vector equals the
        prefix of the same length.
        """
        prefix_vec = prefix if isinstance(prefix, MembershipVector) else MembershipVector(prefix)
        if len(prefix_vec) != level:
            raise ValueError(f"prefix must have exactly {level} bits, got {len(prefix_vec)}")
        return list(self._members_internal(level, prefix_vec.bits))

    def list_at(self, level: int, prefix_bits: Prefix) -> List[Key]:
        """The live (do-not-mutate) list at ``level`` / ``prefix_bits``.

        Trusted fast path for in-package scanners (the balance tracker walks
        dirtied lists through it): no prefix re-validation, no defensive
        copy.  ``prefix_bits`` must be a tuple of exactly ``level`` bits;
        an unknown prefix yields an empty list.
        """
        return self._members_internal(level, prefix_bits)

    def list_of(self, key: Key, level: int) -> List[Key]:
        """Keys of the linked list containing ``key`` at ``level`` (key order)."""
        if level == 0:
            return list(self._base_list())
        node = self._nodes[key]
        if len(node.membership) < level:
            return [key]
        return list(self._members_internal(level, node.membership.bits[:level]))

    def lists_at_level(self, level: int) -> Dict[Prefix, List[Key]]:
        """All linked lists at ``level``, keyed by their prefix bits.

        Nodes with membership vectors shorter than ``level`` appear as
        singleton lists keyed by their full vector (padded marker lists).
        """
        if level == 0:
            return {(): list(self._base_list())}
        lists: Dict[Prefix, List[Key]] = {}
        for key in self._base_list():
            bits = self._nodes[key].membership.bits
            # Nodes shorter than the level are singletons beyond their depth.
            prefix = bits[:level] if len(bits) >= level else bits
            lists.setdefault(prefix, []).append(key)
        return lists

    # ------------------------------------------------------------- neighbours
    def neighbors(self, key: Key, level: int) -> Tuple[Optional[Key], Optional[Key]]:
        """Left and right neighbour of ``key`` in its list at ``level``.

        O(1) amortized: cached lists carry a lazily built ``key -> index``
        map; the base list is searched by bisection.
        """
        if level == 0:
            keys = self._base_list()
            if key not in self._nodes:
                raise KeyError(f"no node with key {key!r}")
            index = bisect_left(keys, key)
            left = keys[index - 1] if index > 0 else None
            right = keys[index + 1] if index + 1 < len(keys) else None
            return left, right
        bits = self._nodes[key].membership.bits
        if len(bits) < level:
            return None, None
        prefix_bits = bits[:level]
        members = self._members_internal(level, prefix_bits)
        index = self._positions(level, prefix_bits, members)[key]
        left = members[index - 1] if index > 0 else None
        right = members[index + 1] if index + 1 < len(members) else None
        return left, right

    def right_neighbor(self, key: Key, level: int) -> Optional[Key]:
        return self.neighbors(key, level)[1]

    def left_neighbor(self, key: Key, level: int) -> Optional[Key]:
        return self.neighbors(key, level)[0]

    def are_adjacent(self, u: Key, v: Key, level: int) -> bool:
        """Whether ``u`` and ``v`` sit next to each other in a list at ``level``.

        O(1) amortized; ``False`` when either node does not belong to a
        multi-node list at that level (or they belong to different lists).
        """
        if u == v:
            return False
        if level == 0:
            keys = self._base_list()
            index = bisect_left(keys, u)
            if index >= len(keys) or keys[index] != u:
                return False
            return (index > 0 and keys[index - 1] == v) or (
                index + 1 < len(keys) and keys[index + 1] == v
            )
        node_u = self._nodes.get(u)
        node_v = self._nodes.get(v)
        if node_u is None or node_v is None:
            return False
        bits_u = node_u.membership.bits
        bits_v = node_v.membership.bits
        if len(bits_u) < level or len(bits_v) < level:
            return False
        prefix_bits = bits_u[:level]
        if bits_v[:level] != prefix_bits:
            return False
        members = self._members_internal(level, prefix_bits)
        positions = self._positions(level, prefix_bits, members)
        return abs(positions[u] - positions[v]) == 1

    # ------------------------------------------------------------- structure
    def singleton_level(self, key: Key) -> int:
        """Lowest level at which ``key`` is the only member of its list."""
        if len(self._nodes) <= 1:
            return 0
        bits = self._nodes[key].membership.bits
        counts = self._prefix_counts
        deepest_shared = 0
        for level in range(len(bits), 0, -1):
            if counts.get(bits[:level], 0) >= 2:
                deepest_shared = level
                break
        return deepest_shared + 1

    def singleton_levels(self) -> Dict[Key, int]:
        """Singleton level of every node (bulk convenience, O(n * height))."""
        return {key: self.singleton_level(key) for key in self._base_list()}

    def common_level(self, u: Key, v: Key) -> int:
        """Highest level at which ``u`` and ``v`` share a linked list (``alpha``)."""
        return common_prefix_length(self._nodes[u].membership, self._nodes[v].membership)

    def height(self) -> int:
        """Number of levels: 1 + the highest level holding a list of size >= 2.

        An empty or single-node skip graph has height 1 (just the base list).
        Maintained incrementally from the per-level count of prefixes carried
        by two or more nodes, so the query is O(height).
        """
        if len(self._nodes) <= 1:
            return 1
        multi = self._multi_prefixes_per_level
        if not multi:
            return 2
        return max(multi) + 2

    def max_list_level(self) -> int:
        """Highest level at which some list still has two or more nodes."""
        return self.height() - 1 if len(self._nodes) > 1 else 0

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise ``ValueError`` if the structure is internally inconsistent.

        Checks that every node eventually becomes singleton (no two nodes
        share a complete membership vector of equal length where one is a
        prefix of the other and equal) and that keys are unique and sorted.
        Dummy nodes are exempt: they deliberately stop at the level where
        they were inserted (paper, Section IV-F) and never need to become
        singletons.
        """
        seen_vectors: Dict[Tuple[int, ...], Key] = {}
        sorted_keys = self._base_list()
        for key in sorted_keys:
            node = self._nodes[key]
            if node.is_dummy:
                continue
            vector = node.membership.bits
            if vector in seen_vectors:
                other = seen_vectors[vector]
                raise ValueError(
                    f"nodes {other!r} and {key!r} share the full membership vector "
                    f"{''.join(map(str, vector))!r}; neither becomes singleton"
                )
            seen_vectors[vector] = key
        for first, second in zip(sorted_keys, sorted_keys[1:]):
            if not first < second:
                raise ValueError(f"keys not strictly sorted: {first!r} !< {second!r}")

    def is_valid(self) -> bool:
        try:
            self.validate()
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------ misc
    def copy(self) -> "SkipGraph":
        clone = SkipGraph()
        for key in self._base_list():
            node = self._nodes[key]
            clone.add_node(
                SkipGraphNode(
                    key=node.key,
                    membership=MembershipVector(node.membership.bits),
                    payload=node.payload,
                    is_dummy=node.is_dummy,
                )
            )
        return clone

    def membership_table(self) -> Dict[Key, str]:
        """Mapping key -> membership vector string (for display and tests)."""
        return {key: str(self._nodes[key].membership) for key in self._base_list()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipGraph(n={len(self)}, height={self.height()})"
