"""The skip graph data structure.

The canonical state of a :class:`SkipGraph` is the set of nodes (ordered by
key) together with their membership vectors.  Every linked list of the skip
graph is *derived*: the list containing node ``x`` at level ``d`` is the set
of nodes whose membership vectors share ``x``'s first ``d`` bits, in key
order (paper, Section III).  Level 0 is the single base list containing all
nodes.

Because DSG's transformations only rewrite membership bits of the nodes in
one subtree (the linked list ``l_alpha`` shared by the communicating pair),
storing the state this way makes "local and partial reconstruction" a matter
of editing those nodes' vectors; the level lists of untouched subtrees are
unaffected, which mirrors the locality argument of the paper.

Scaling machinery (the request hot path relies on all four):

* **Hierarchical list cache** — a list at level ``d`` is materialised by
  filtering its *parent* list at level ``d - 1`` (recursively down to the
  base list), never by scanning all nodes.  Rebuilding the lists of a
  subtree after a transformation therefore costs ``O(|subtree| * depth)``,
  not ``O(n)`` per list.
* **Position maps** — every cached list lazily grows a ``key -> index`` map
  so :meth:`neighbors` is O(1) amortized instead of an O(list) scan per
  routing hop.
* **Targeted invalidation** — node insertion/removal and membership rewrites
  only evict the cache entries whose prefix the affected vector matches;
  untouched subtrees stay warm across requests.
* **Incremental height** — a per-level count of multi-member prefixes is
  maintained on every mutation, making :meth:`height` O(height) instead of
  an O(n log n) rescan (the DSG front end queries the height after every
  request).
* **Real-prefix index** — alongside the total per-prefix carrier counts, a
  per-prefix count of *dummy* carriers (dummies are rare, so the hot-path
  membership rewrites of real nodes never touch it) makes
  :meth:`real_prefix_count` / :meth:`shares_real_prefix` O(1) per query.
  This is what lets :func:`~repro.skipgraph.build.draw_membership_bits`
  answer "does any other real node share this prefix?" in O(1) per drawn
  bit instead of scanning ``real_keys`` — the join rule at 100k nodes.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.skipgraph.membership import MembershipVector, common_prefix_length
from repro.skipgraph.node import Key, SkipGraphNode

__all__ = ["SkipGraph"]

Prefix = Tuple[int, ...]


class SkipGraph:
    """A skip graph over totally ordered keys."""

    def __init__(self, nodes: Optional[Iterable[SkipGraphNode]] = None) -> None:
        self._nodes: Dict[Key, SkipGraphNode] = {}
        self._sorted_keys: List[Key] = []
        # Cache: (level, prefix bits) -> keys of that list, in key order.
        self._list_cache: Dict[Tuple[int, Prefix], List[Key]] = {}
        # Lazily built key -> index maps for cached lists (O(1) neighbours).
        self._pos_cache: Dict[Tuple[int, Prefix], Dict[Key, int]] = {}
        # Incremental height bookkeeping: how many nodes carry each prefix,
        # and per level, how many prefixes have >= 2 carriers.
        self._prefix_counts: Dict[Prefix, int] = {}
        self._multi_prefixes_per_level: Dict[int, int] = {}
        # Real-prefix index: per-prefix count of *dummy* carriers plus the
        # total dummy population.  Real carriers of a prefix are then
        # ``_prefix_counts[p] - _dummy_prefix_counts.get(p, 0)`` — O(1), and
        # the hot path (membership rewrites of real nodes) never pays for it.
        self._dummy_prefix_counts: Dict[Prefix, int] = {}
        self._dummy_count = 0
        if nodes is not None:
            for node in nodes:
                self.add_node(node)

    # ------------------------------------------------------------- population
    def add_node(self, node: SkipGraphNode) -> None:
        """Insert ``node``; keys must be unique.

        Cached lists the node belongs to are patched in place (sorted
        insertion) rather than evicted: evicting would force the next query
        to rebuild the whole ancestor chain from the base list, which made
        per-transformation dummy insertion O(n).  Position maps cannot be
        patched cheaply (an insertion shifts every later index) and are
        rebuilt lazily.
        """
        if node.key in self._nodes:
            raise ValueError(f"duplicate key {node.key!r}")
        self._nodes[node.key] = node
        insort(self._sorted_keys, node.key)
        bits = node.membership.bits
        if node.is_dummy:
            self._dummy_count += 1
        self._register_vector(bits, dummy=node.is_dummy)
        list_cache = self._list_cache
        pop_pos = self._pos_cache.pop
        for level in range(1, len(bits) + 1):
            cache_key = (level, bits[:level])
            cached = list_cache.get(cache_key)
            if cached is not None:
                insort(cached, node.key)
                pop_pos(cache_key, None)

    def remove_node(self, key: Key) -> SkipGraphNode:
        """Remove and return the node with ``key``.

        Cached lists are patched in place, mirroring :meth:`add_node`.
        """
        node = self._nodes.pop(key, None)
        if node is None:
            raise KeyError(f"no node with key {key!r}")
        index = bisect_left(self._sorted_keys, key)
        del self._sorted_keys[index]
        bits = node.membership.bits
        if node.is_dummy:
            self._dummy_count -= 1
        self._unregister_vector(bits, dummy=node.is_dummy)
        list_cache = self._list_cache
        pop_pos = self._pos_cache.pop
        for level in range(1, len(bits) + 1):
            cache_key = (level, bits[:level])
            cached = list_cache.get(cache_key)
            if cached is not None:
                member_index = bisect_left(cached, key)
                if member_index < len(cached) and cached[member_index] == key:
                    del cached[member_index]
                pop_pos(cache_key, None)
        return node

    def node(self, key: Key) -> SkipGraphNode:
        return self._nodes[key]

    def has_node(self, key: Key) -> bool:
        return key in self._nodes

    def __contains__(self, key: Key) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[SkipGraphNode]:
        for key in self._sorted_keys:
            yield self._nodes[key]

    @property
    def keys(self) -> List[Key]:
        """All keys in ascending order (including dummy nodes)."""
        return list(self._sorted_keys)

    @property
    def real_keys(self) -> List[Key]:
        """Keys of non-dummy nodes in ascending order."""
        return [k for k in self._sorted_keys if not self._nodes[k].is_dummy]

    @property
    def real_count(self) -> int:
        """Number of non-dummy nodes — O(1), no ``real_keys`` scan."""
        return len(self._nodes) - self._dummy_count

    @property
    def dummy_node_count(self) -> int:
        """Number of dummy nodes — O(1), no ``dummy_keys`` scan."""
        return self._dummy_count

    def nodes(self) -> List[SkipGraphNode]:
        return [self._nodes[key] for key in self._sorted_keys]

    def dummy_keys(self) -> List[Key]:
        return [k for k in self._sorted_keys if self._nodes[k].is_dummy]

    # ------------------------------------------------------------ level lists
    def membership(self, key: Key) -> MembershipVector:
        return self._nodes[key].membership

    def set_membership(self, key: Key, membership: MembershipVector | Iterable[int] | str) -> None:
        """Replace the membership vector of ``key`` and invalidate caches.

        Only the cache entries that could contain the node (levels >= 1 whose
        prefix matches either the old or the new vector) need invalidation,
        plus nothing at level 0 since the base list is key-order only.
        """
        node = self._nodes[key]
        old = node.membership
        new = MembershipVector(membership) if not isinstance(membership, MembershipVector) else membership
        node.membership = new
        keep_prefix = common_prefix_length(old, new)
        self._unregister_vector(old.bits, start=keep_prefix + 1, dummy=node.is_dummy)
        self._register_vector(new.bits, start=keep_prefix + 1, dummy=node.is_dummy)
        self._invalidate_for_change(old, new, keep_prefix)

    def _invalidate_for_change(self, old: MembershipVector, new: MembershipVector, keep_prefix: int) -> None:
        longest = max(len(old), len(new))
        pop_list = self._list_cache.pop
        pop_pos = self._pos_cache.pop
        for level in range(keep_prefix + 1, longest + 1):
            for vector in (old, new):
                if len(vector) >= level:
                    cache_key = (level, vector.bits[:level])
                    pop_list(cache_key, None)
                    pop_pos(cache_key, None)

    def invalidate_cache(self) -> None:
        self._list_cache.clear()
        self._pos_cache.clear()

    # ------------------------------------------------- incremental height data
    def _register_vector(self, bits: Prefix, start: int = 1, dummy: bool = False) -> None:
        """Count the prefixes of ``bits`` from length ``start`` upward.

        ``start`` lets :meth:`set_membership` skip the prefix shared between
        the old and the new vector, whose counts are unchanged — the
        transformation's one-bit appends then cost O(1) here instead of
        O(depth).  ``dummy`` carriers are additionally counted in the
        dummy-prefix index so :meth:`real_prefix_count` stays exact.
        """
        counts = self._prefix_counts
        multi = self._multi_prefixes_per_level
        for level in range(start, len(bits) + 1):
            prefix = bits[:level]
            count = counts.get(prefix, 0) + 1
            counts[prefix] = count
            if count == 2:
                multi[level] = multi.get(level, 0) + 1
        if dummy:
            dummy_counts = self._dummy_prefix_counts
            for level in range(start, len(bits) + 1):
                prefix = bits[:level]
                dummy_counts[prefix] = dummy_counts.get(prefix, 0) + 1

    def _unregister_vector(self, bits: Prefix, start: int = 1, dummy: bool = False) -> None:
        counts = self._prefix_counts
        multi = self._multi_prefixes_per_level
        for level in range(start, len(bits) + 1):
            prefix = bits[:level]
            count = counts[prefix] - 1
            if count:
                counts[prefix] = count
            else:
                del counts[prefix]
            if count == 1:
                remaining = multi[level] - 1
                if remaining:
                    multi[level] = remaining
                else:
                    del multi[level]
        if dummy:
            dummy_counts = self._dummy_prefix_counts
            for level in range(start, len(bits) + 1):
                prefix = bits[:level]
                remaining = dummy_counts[prefix] - 1
                if remaining:
                    dummy_counts[prefix] = remaining
                else:
                    del dummy_counts[prefix]

    # ------------------------------------------------------ real-prefix index
    def real_prefix_count(self, prefix: Prefix) -> int:
        """How many *real* (non-dummy) nodes carry ``prefix`` — O(1).

        The empty prefix counts the whole real population.  Derived from
        the incremental height bookkeeping: total carriers minus dummy
        carriers, both maintained on every mutation.
        """
        if not prefix:
            return self.real_count
        return self._prefix_counts.get(prefix, 0) - self._dummy_prefix_counts.get(prefix, 0)

    def shares_real_prefix(self, prefix: Prefix, exclude: Optional[Key] = None) -> bool:
        """Whether any real node other than ``exclude`` carries ``prefix``.

        This is the join-rule predicate of Section IV-G ("does some existing
        real node share the joiner's prefix?") answered from the prefix
        index in O(|prefix|) instead of an O(n) ``real_keys`` scan —
        semantically identical to the scan, including the treatment of a
        node already present under ``exclude``.
        """
        count = self.real_prefix_count(prefix)
        if exclude is not None:
            node = self._nodes.get(exclude)
            if node is not None and not node.is_dummy:
                bits = node.membership.bits
                if len(bits) >= len(prefix) and bits[: len(prefix)] == prefix:
                    count -= 1
        return count > 0

    # ---------------------------------------------------------- list building
    def _members_internal(self, level: int, prefix_bits: Prefix) -> List[Key]:
        """The cached (live, do-not-mutate) list at ``level`` / ``prefix_bits``.

        On a miss the list is derived from the deepest cached ancestor list
        (ultimately the base list), so a rebuild costs O(ancestor size) per
        missing level rather than a scan over all nodes.
        """
        if level == 0:
            return self._sorted_keys
        cache = self._list_cache
        cached = cache.get((level, prefix_bits))
        if cached is not None:
            return cached
        base_level = level - 1
        while base_level > 0 and (base_level, prefix_bits[:base_level]) not in cache:
            base_level -= 1
        if base_level == 0:
            members = self._sorted_keys
        else:
            members = cache[(base_level, prefix_bits[:base_level])]
        nodes = self._nodes
        for depth in range(base_level + 1, level + 1):
            wanted = prefix_bits[depth - 1]
            members = [
                key
                for key in members
                if len(bits := nodes[key].membership.bits) >= depth and bits[depth - 1] == wanted
            ]
            cache_key = (depth, prefix_bits[:depth])
            cache[cache_key] = members
            self._pos_cache.pop(cache_key, None)
        return members

    def _positions(self, level: int, prefix_bits: Prefix, members: List[Key]) -> Dict[Key, int]:
        cache_key = (level, prefix_bits)
        positions = self._pos_cache.get(cache_key)
        if positions is None:
            positions = {key: index for index, key in enumerate(members)}
            self._pos_cache[cache_key] = positions
        return positions

    def list_members(self, level: int, prefix: MembershipVector | Iterable[int] | str) -> List[Key]:
        """Keys of the linked list at ``level`` identified by ``prefix``.

        ``prefix`` must have exactly ``level`` bits.  Nodes whose membership
        vectors are shorter than ``level`` belong to no multi-node list at
        that level and are excluded unless their (full) vector equals the
        prefix of the same length.
        """
        prefix_vec = prefix if isinstance(prefix, MembershipVector) else MembershipVector(prefix)
        if len(prefix_vec) != level:
            raise ValueError(f"prefix must have exactly {level} bits, got {len(prefix_vec)}")
        return list(self._members_internal(level, prefix_vec.bits))

    def list_at(self, level: int, prefix_bits: Prefix) -> List[Key]:
        """The live (do-not-mutate) list at ``level`` / ``prefix_bits``.

        Trusted fast path for in-package scanners (the balance tracker walks
        dirtied lists through it): no prefix re-validation, no defensive
        copy.  ``prefix_bits`` must be a tuple of exactly ``level`` bits;
        an unknown prefix yields an empty list.
        """
        return self._members_internal(level, prefix_bits)

    def list_of(self, key: Key, level: int) -> List[Key]:
        """Keys of the linked list containing ``key`` at ``level`` (key order)."""
        if level == 0:
            return list(self._sorted_keys)
        node = self._nodes[key]
        if len(node.membership) < level:
            return [key]
        return list(self._members_internal(level, node.membership.bits[:level]))

    def lists_at_level(self, level: int) -> Dict[Prefix, List[Key]]:
        """All linked lists at ``level``, keyed by their prefix bits.

        Nodes with membership vectors shorter than ``level`` appear as
        singleton lists keyed by their full vector (padded marker lists).
        """
        if level == 0:
            return {(): list(self._sorted_keys)}
        lists: Dict[Prefix, List[Key]] = {}
        for key in self._sorted_keys:
            bits = self._nodes[key].membership.bits
            # Nodes shorter than the level are singletons beyond their depth.
            prefix = bits[:level] if len(bits) >= level else bits
            lists.setdefault(prefix, []).append(key)
        return lists

    # ------------------------------------------------------------- neighbours
    def neighbors(self, key: Key, level: int) -> Tuple[Optional[Key], Optional[Key]]:
        """Left and right neighbour of ``key`` in its list at ``level``.

        O(1) amortized: cached lists carry a lazily built ``key -> index``
        map; the base list is searched by bisection.
        """
        if level == 0:
            keys = self._sorted_keys
            if key not in self._nodes:
                raise KeyError(f"no node with key {key!r}")
            index = bisect_left(keys, key)
            left = keys[index - 1] if index > 0 else None
            right = keys[index + 1] if index + 1 < len(keys) else None
            return left, right
        bits = self._nodes[key].membership.bits
        if len(bits) < level:
            return None, None
        prefix_bits = bits[:level]
        members = self._members_internal(level, prefix_bits)
        index = self._positions(level, prefix_bits, members)[key]
        left = members[index - 1] if index > 0 else None
        right = members[index + 1] if index + 1 < len(members) else None
        return left, right

    def right_neighbor(self, key: Key, level: int) -> Optional[Key]:
        return self.neighbors(key, level)[1]

    def left_neighbor(self, key: Key, level: int) -> Optional[Key]:
        return self.neighbors(key, level)[0]

    def are_adjacent(self, u: Key, v: Key, level: int) -> bool:
        """Whether ``u`` and ``v`` sit next to each other in a list at ``level``.

        O(1) amortized; ``False`` when either node does not belong to a
        multi-node list at that level (or they belong to different lists).
        """
        if u == v:
            return False
        if level == 0:
            keys = self._sorted_keys
            index = bisect_left(keys, u)
            if index >= len(keys) or keys[index] != u:
                return False
            return (index > 0 and keys[index - 1] == v) or (
                index + 1 < len(keys) and keys[index + 1] == v
            )
        node_u = self._nodes.get(u)
        node_v = self._nodes.get(v)
        if node_u is None or node_v is None:
            return False
        bits_u = node_u.membership.bits
        bits_v = node_v.membership.bits
        if len(bits_u) < level or len(bits_v) < level:
            return False
        prefix_bits = bits_u[:level]
        if bits_v[:level] != prefix_bits:
            return False
        members = self._members_internal(level, prefix_bits)
        positions = self._positions(level, prefix_bits, members)
        return abs(positions[u] - positions[v]) == 1

    # ------------------------------------------------------------- structure
    def singleton_level(self, key: Key) -> int:
        """Lowest level at which ``key`` is the only member of its list."""
        if len(self._nodes) <= 1:
            return 0
        bits = self._nodes[key].membership.bits
        counts = self._prefix_counts
        deepest_shared = 0
        for level in range(len(bits), 0, -1):
            if counts.get(bits[:level], 0) >= 2:
                deepest_shared = level
                break
        return deepest_shared + 1

    def singleton_levels(self) -> Dict[Key, int]:
        """Singleton level of every node (bulk convenience, O(n * height))."""
        return {key: self.singleton_level(key) for key in self._sorted_keys}

    def common_level(self, u: Key, v: Key) -> int:
        """Highest level at which ``u`` and ``v`` share a linked list (``alpha``)."""
        return common_prefix_length(self._nodes[u].membership, self._nodes[v].membership)

    def height(self) -> int:
        """Number of levels: 1 + the highest level holding a list of size >= 2.

        An empty or single-node skip graph has height 1 (just the base list).
        Maintained incrementally from the per-level count of prefixes carried
        by two or more nodes, so the query is O(height).
        """
        if len(self._nodes) <= 1:
            return 1
        multi = self._multi_prefixes_per_level
        if not multi:
            return 2
        return max(multi) + 2

    def max_list_level(self) -> int:
        """Highest level at which some list still has two or more nodes."""
        return self.height() - 1 if len(self._nodes) > 1 else 0

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise ``ValueError`` if the structure is internally inconsistent.

        Checks that every node eventually becomes singleton (no two nodes
        share a complete membership vector of equal length where one is a
        prefix of the other and equal) and that keys are unique and sorted.
        Dummy nodes are exempt: they deliberately stop at the level where
        they were inserted (paper, Section IV-F) and never need to become
        singletons.
        """
        seen_vectors: Dict[Tuple[int, ...], Key] = {}
        for key in self._sorted_keys:
            node = self._nodes[key]
            if node.is_dummy:
                continue
            vector = node.membership.bits
            if vector in seen_vectors:
                other = seen_vectors[vector]
                raise ValueError(
                    f"nodes {other!r} and {key!r} share the full membership vector "
                    f"{''.join(map(str, vector))!r}; neither becomes singleton"
                )
            seen_vectors[vector] = key
        for first, second in zip(self._sorted_keys, self._sorted_keys[1:]):
            if not first < second:
                raise ValueError(f"keys not strictly sorted: {first!r} !< {second!r}")

    def is_valid(self) -> bool:
        try:
            self.validate()
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------ misc
    def copy(self) -> "SkipGraph":
        clone = SkipGraph()
        for key in self._sorted_keys:
            node = self._nodes[key]
            clone.add_node(
                SkipGraphNode(
                    key=node.key,
                    membership=MembershipVector(node.membership.bits),
                    payload=node.payload,
                    is_dummy=node.is_dummy,
                )
            )
        return clone

    def membership_table(self) -> Dict[Key, str]:
        """Mapping key -> membership vector string (for display and tests)."""
        return {key: str(self._nodes[key].membership) for key in self._sorted_keys}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipGraph(n={len(self)}, height={self.height()})"
