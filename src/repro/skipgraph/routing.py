"""Standard skip graph routing (paper, Appendix B; Aspnes & Shah 2003).

    "Routing starts at the top level from the source node and traverses
    through the skip graph structure.  If the identifier of the destination
    node is greater than that of the source node, then at each level, routing
    moves to the next right node until the identifier of the next node is
    greater than the identifier of the destination node.  When a node with an
    identifier greater than the destination node is found, the routing drops
    to the next lower level, continuing until the destination node is found."

The functions return the full path (source and destination included), the
per-hop levels, and the *distance* as defined in Section III: the number of
intermediate nodes on the communication path.

Two implementations are provided:

:func:`route`
    The production hot path: O(expected hops) per call.  It starts at the
    (cached) graph height, performs every neighbour lookup through the skip
    graph's position maps (no per-hop list scans), and takes an early-exit
    fast path when the endpoints are already adjacent in their highest
    common list — the steady state DSG leaves a communicating pair in, so a
    repeated request routes in O(1).
:func:`route_reference`
    The original scan-based algorithm, kept verbatim as the executable
    specification.  It derives every linked list directly from the
    membership vectors and never consults the caches, so the property tests
    can assert that the fast path returns byte-identical paths.

Both produce identical :class:`RoutingResult`\\ s on every input: the fast
path only starts *higher* (descents above the first hop level do not touch
the path) and the early exit only fires when the unique remaining hop is the
direct link (no key between the endpoints exists in their common list, hence
in any deeper list either).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.skipgraph.membership import common_prefix_length
from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["RoutingResult", "route", "route_reference", "routing_distance"]


class RoutingError(Exception):
    """Raised when the destination cannot be reached (corrupt structure)."""


@dataclass
class RoutingResult:
    """Outcome of one routing request.

    Attributes
    ----------
    source, destination:
        Endpoint keys.
    path:
        Keys visited, starting with ``source`` and ending with
        ``destination``.
    hop_levels:
        For every hop ``path[i] -> path[i+1]``, the level whose linked list
        provided the link.
    distance:
        Number of intermediate nodes on the path (paper's ``d_S``), i.e.
        ``len(path) - 2`` for distinct endpoints and 0 for a self-request.
    rounds:
        Rounds needed in the synchronous model: one per hop.
    """

    source: Key
    destination: Key
    path: List[Key] = field(default_factory=list)
    hop_levels: List[int] = field(default_factory=list)

    @property
    def distance(self) -> int:
        return max(0, len(self.path) - 2)

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    @property
    def rounds(self) -> int:
        return self.hops

    @property
    def max_level_used(self) -> int:
        return max(self.hop_levels, default=0)


def route(graph: SkipGraph, source: Key, destination: Key) -> RoutingResult:
    """Route from ``source`` to ``destination`` with the standard algorithm.

    Hot path: every neighbour lookup is O(1) amortized and a pair that is
    adjacent in its highest common list short-circuits in O(1).
    """
    if not graph.has_node(source):
        raise KeyError(f"unknown source {source!r}")
    if not graph.has_node(destination):
        raise KeyError(f"unknown destination {destination!r}")

    result = RoutingResult(source=source, destination=destination, path=[source])
    if source == destination:
        return result

    # Early exit: after DSG serves a request the pair shares a linked list in
    # which they are neighbours, so the very next route between them is the
    # single direct hop.  Adjacency at the highest common level means no key
    # lies between the endpoints in that list — and deeper lists are subsets
    # of it — so the standard top-down walk would descend hop-free to alpha
    # and take exactly this link.
    alpha = common_prefix_length(graph.membership(source), graph.membership(destination))
    if graph.are_adjacent(source, destination, alpha):
        result.path.append(destination)
        result.hop_levels.append(alpha)
        return result

    ascending = destination > source
    current = source
    # The graph height is an upper bound on every node's singleton level;
    # starting there instead of computing singleton_level(source) only adds
    # hop-free descents, which leave the path untouched.
    level = graph.height()
    path = result.path
    hop_levels = result.hop_levels

    # Safety bound: a correct skip graph never needs more hops than nodes.
    for _ in range(2 * len(graph) + 2 * graph.height() + 2):
        if current == destination:
            return result
        if level < 0:
            break
        left, right = graph.neighbors(current, level)
        neighbor = right if ascending else left
        if neighbor is None or (neighbor > destination if ascending else neighbor < destination):
            level -= 1
            continue
        path.append(neighbor)
        hop_levels.append(level)
        current = neighbor
    if current == destination:
        return result
    raise RoutingError(
        f"routing from {source!r} to {destination!r} failed; the skip graph "
        "structure is inconsistent"
    )


def route_reference(graph: SkipGraph, source: Key, destination: Key) -> RoutingResult:
    """Scan-based executable specification of :func:`route`.

    Derives every linked list directly from the membership vectors (no list
    cache, no position maps, no early exit) exactly like the seed
    implementation.  Used by the property tests and kept as the ground truth
    the optimised hot path is compared against; do not call it in hot loops.
    """
    if not graph.has_node(source):
        raise KeyError(f"unknown source {source!r}")
    if not graph.has_node(destination):
        raise KeyError(f"unknown destination {destination!r}")

    result = RoutingResult(source=source, destination=destination, path=[source])
    if source == destination:
        return result

    ascending = destination > source
    current = source
    level = _singleton_level_by_scan(graph, current)

    for _ in range(2 * len(graph) + graph.height() + 2):
        if current == destination:
            return result
        if level < 0:
            break
        neighbor = _neighbor_by_scan(graph, current, level, ascending)
        if neighbor is None or (neighbor > destination if ascending else neighbor < destination):
            level -= 1
            continue
        result.path.append(neighbor)
        result.hop_levels.append(level)
        current = neighbor
    if current == destination:
        return result
    raise RoutingError(
        f"routing from {source!r} to {destination!r} failed; the skip graph "
        "structure is inconsistent"
    )


def _singleton_level_by_scan(graph: SkipGraph, key: Key) -> int:
    """Singleton level recomputed from the raw membership vectors."""
    if len(graph) <= 1:
        return 0
    bits = graph.membership(key).bits
    deepest_shared = 0
    for other in graph.keys:
        if other == key:
            continue
        deepest_shared = max(deepest_shared, common_prefix_length(bits, graph.membership(other).bits))
    return deepest_shared + 1


def _neighbor_by_scan(graph: SkipGraph, current: Key, level: int, ascending: bool) -> Optional[Key]:
    """Neighbour of ``current`` derived by scanning the full node set."""
    if level == 0:
        members = graph.keys
    else:
        bits = graph.membership(current).bits
        if len(bits) < level:
            return None
        prefix = bits[:level]
        members = [k for k in graph.keys if graph.membership(k).bits[:level] == prefix]
    index = members.index(current)
    if ascending:
        return members[index + 1] if index + 1 < len(members) else None
    return members[index - 1] if index > 0 else None


def routing_distance(graph: SkipGraph, source: Key, destination: Key) -> int:
    """Distance (number of intermediate nodes) of the standard routing path."""
    return route(graph, source, destination).distance
