"""Standard skip graph routing (paper, Appendix B; Aspnes & Shah 2003).

    "Routing starts at the top level from the source node and traverses
    through the skip graph structure.  If the identifier of the destination
    node is greater than that of the source node, then at each level, routing
    moves to the next right node until the identifier of the next node is
    greater than the identifier of the destination node.  When a node with an
    identifier greater than the destination node is found, the routing drops
    to the next lower level, continuing until the destination node is found."

The function returns the full path (source and destination included), the
per-hop levels, and the *distance* as defined in Section III: the number of
intermediate nodes on the communication path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["RoutingResult", "route", "routing_distance"]


class RoutingError(Exception):
    """Raised when the destination cannot be reached (corrupt structure)."""


@dataclass
class RoutingResult:
    """Outcome of one routing request.

    Attributes
    ----------
    source, destination:
        Endpoint keys.
    path:
        Keys visited, starting with ``source`` and ending with
        ``destination``.
    hop_levels:
        For every hop ``path[i] -> path[i+1]``, the level whose linked list
        provided the link.
    distance:
        Number of intermediate nodes on the path (paper's ``d_S``), i.e.
        ``len(path) - 2`` for distinct endpoints and 0 for a self-request.
    rounds:
        Rounds needed in the synchronous model: one per hop.
    """

    source: Key
    destination: Key
    path: List[Key] = field(default_factory=list)
    hop_levels: List[int] = field(default_factory=list)

    @property
    def distance(self) -> int:
        return max(0, len(self.path) - 2)

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    @property
    def rounds(self) -> int:
        return self.hops

    @property
    def max_level_used(self) -> int:
        return max(self.hop_levels, default=0)


def route(graph: SkipGraph, source: Key, destination: Key) -> RoutingResult:
    """Route from ``source`` to ``destination`` with the standard algorithm."""
    if not graph.has_node(source):
        raise KeyError(f"unknown source {source!r}")
    if not graph.has_node(destination):
        raise KeyError(f"unknown destination {destination!r}")

    result = RoutingResult(source=source, destination=destination, path=[source])
    if source == destination:
        return result

    ascending = destination > source
    current = source
    level = graph.singleton_level(current)

    # Safety bound: a correct skip graph never needs more hops than nodes.
    for _ in range(2 * len(graph) + graph.height() + 2):
        if current == destination:
            return result
        if level < 0:
            break
        neighbor = _next_towards(graph, current, level, ascending)
        if neighbor is None or _overshoots(neighbor, destination, ascending):
            level -= 1
            continue
        result.path.append(neighbor)
        result.hop_levels.append(level)
        current = neighbor
    if current == destination:
        return result
    raise RoutingError(
        f"routing from {source!r} to {destination!r} failed; the skip graph "
        "structure is inconsistent"
    )


def _next_towards(graph: SkipGraph, current: Key, level: int, ascending: bool) -> Optional[Key]:
    left, right = graph.neighbors(current, level)
    return right if ascending else left


def _overshoots(neighbor: Key, destination: Key, ascending: bool) -> bool:
    return neighbor > destination if ascending else neighbor < destination


def routing_distance(graph: SkipGraph, source: Key, destination: Key) -> int:
    """Distance (number of intermediate nodes) of the standard routing path."""
    return route(graph, source, destination).distance
