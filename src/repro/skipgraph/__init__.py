"""Skip graph substrate (Aspnes & Shah 2003), as used by the paper.

This subpackage implements the *static* skip graph data structure that the
DSG algorithm (:mod:`repro.core`) adjusts:

* membership vectors and the prefix-based level-list structure (Section III),
* the binary-tree-of-linked-lists view used throughout the paper (Fig. 1),
* standard skip graph routing (Appendix B),
* construction policies (random membership vectors, perfectly balanced
  vectors, explicit vectors),
* node join / leave,
* the a-balance property check (Definition "a-balance Property") and other
  structural invariants.

The skip graph state is canonically *the membership vector of every node*
(plus the sorted key order); every level linked list is derived from it,
which makes partial reconstruction by DSG a matter of rewriting membership
bits for the affected nodes only.
"""

from repro.skipgraph.membership import MembershipVector, common_prefix_length
from repro.skipgraph.node import SkipGraphNode
from repro.skipgraph.skipgraph import SkipGraph
from repro.skipgraph.build import (
    build_balanced_skip_graph,
    build_skip_graph,
    build_skip_graph_from_membership,
)
from repro.skipgraph.routing import RoutingResult, route
from repro.skipgraph.tree_view import TreeNode, tree_view
from repro.skipgraph.balance import a_balance_violations, check_a_balance
from repro.skipgraph.integrity import (
    IntegrityError,
    assert_skip_graph_integrity,
    verify_skip_graph_integrity,
)

__all__ = [
    "IntegrityError",
    "MembershipVector",
    "RoutingResult",
    "SkipGraph",
    "SkipGraphNode",
    "TreeNode",
    "a_balance_violations",
    "assert_skip_graph_integrity",
    "build_balanced_skip_graph",
    "build_skip_graph",
    "build_skip_graph_from_membership",
    "check_a_balance",
    "common_prefix_length",
    "route",
    "tree_view",
    "verify_skip_graph_integrity",
]
