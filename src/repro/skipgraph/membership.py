"""Membership vectors.

Each skip graph node ``x`` has a membership vector ``m(x)``: a sequence of
bits where bit ``i`` selects whether ``x`` joins the 0-sublist or the
1-sublist when the linked list containing ``x`` at level ``i`` splits into
two lists at level ``i + 1`` (paper, Section III).  Two nodes share a linked
list at level ``i`` if and only if the first ``i`` bits of their membership
vectors agree.

The class below is an immutable value type.  Indexing convention: ``m[0]``
is the bit deciding the level-1 sublist, ``m[i]`` decides the level-``i+1``
sublist — i.e. the list containing a node at level ``d`` is identified by the
prefix ``m[:d]``.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple, Union

__all__ = ["MembershipVector", "common_prefix_length"]

Bit = int
BitsLike = Union["MembershipVector", Sequence[Bit], str]


def _coerce_bits(bits: BitsLike) -> Tuple[Bit, ...]:
    if isinstance(bits, MembershipVector):
        return bits.bits
    if isinstance(bits, str):
        values = [int(ch) for ch in bits]
    else:
        values = [int(b) for b in bits]
    for value in values:
        if value not in (0, 1):
            raise ValueError(f"membership bits must be 0 or 1, got {value!r}")
    return tuple(values)


class MembershipVector:
    """Immutable sequence of sublist-selection bits."""

    __slots__ = ("_bits",)

    def __init__(self, bits: BitsLike = ()) -> None:
        self._bits = _coerce_bits(bits)

    @classmethod
    def _from_trusted(cls, bits: Tuple[Bit, ...]) -> "MembershipVector":
        """Wrap an already-validated bit tuple without re-coercing.

        Internal fast path for the derivation methods below, which only
        rearrange bits of existing (validated) vectors; the transformation
        hot loop performs one such derivation per member per level.
        """
        vector = cls.__new__(cls)
        vector._bits = bits
        return vector

    # ------------------------------------------------------------- accessors
    @property
    def bits(self) -> Tuple[Bit, ...]:
        return self._bits

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[Bit]:
        return iter(self._bits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return MembershipVector(self._bits[index])
        return self._bits[index]

    def bit(self, level: int) -> Bit:
        """Bit deciding the sublist at ``level`` (1-based level, i.e. ``m[level-1]``).

        ``level`` must be at least 1: level 0 is the base list, which is not
        selected by any bit.
        """
        if level < 1:
            raise ValueError("level 0 is the base list; bits select levels >= 1")
        return self._bits[level - 1]

    def prefix(self, length: int) -> "MembershipVector":
        """First ``length`` bits (identifies the list at level ``length``)."""
        if length < 0:
            raise ValueError("prefix length must be non-negative")
        return MembershipVector._from_trusted(self._bits[:length])

    def has_prefix(self, prefix: BitsLike) -> bool:
        # Trusted fast path: a MembershipVector's bits are validated once at
        # construction, so prefix checks between vectors (once per request in
        # the cost model) skip the per-call re-coercion.
        other = prefix._bits if type(prefix) is MembershipVector else _coerce_bits(prefix)
        return self._bits[: len(other)] == other

    # ------------------------------------------------------------ derivation
    def extended(self, extra_bits: BitsLike) -> "MembershipVector":
        return MembershipVector._from_trusted(self._bits + _coerce_bits(extra_bits))

    def with_bit(self, level: int, bit: Bit) -> "MembershipVector":
        """Return a copy whose bit for ``level`` (>= 1) is ``bit``.

        The vector is zero-padded if it is shorter than ``level`` bits, which
        happens when DSG pushes a node deeper than it previously was.
        """
        if level < 1:
            raise ValueError("bits select levels >= 1")
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        bits = self._bits
        if len(bits) == level - 1:
            # The transformation's per-level assignment always appends.
            return MembershipVector._from_trusted(bits + (bit,))
        padded = bits + (0,) * (level - len(bits)) if len(bits) < level else bits
        return MembershipVector._from_trusted(padded[: level - 1] + (bit,) + padded[level:])

    def truncated(self, length: int) -> "MembershipVector":
        return MembershipVector._from_trusted(self._bits[:length])

    # -------------------------------------------------------------- protocol
    def __eq__(self, other: object) -> bool:
        if isinstance(other, MembershipVector):
            return self._bits == other._bits
        if isinstance(other, (tuple, list, str)):
            try:
                return self._bits == _coerce_bits(other)
            except ValueError:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"MembershipVector('{self}')"

    def __str__(self) -> str:
        return "".join(str(b) for b in self._bits)


def common_prefix_length(a: BitsLike, b: BitsLike) -> int:
    """Length of the longest common prefix of two membership vectors.

    This is the highest level at which the two nodes share a linked list
    (``α`` in the paper when applied to a communicating pair).  Already
    validated :class:`MembershipVector` arguments take a trusted fast path
    (no re-coercion) — the function runs once per request in the cost model
    and once per membership rewrite in the skip graph's cache patching.
    """
    bits_a = a._bits if type(a) is MembershipVector else _coerce_bits(a)
    bits_b = b._bits if type(b) is MembershipVector else _coerce_bits(b)
    length = 0
    for bit_a, bit_b in zip(bits_a, bits_b):
        if bit_a != bit_b:
            break
        length += 1
    return length
