"""Skip graph construction policies.

Three builders are provided:

``build_skip_graph``
    The classical construction: every node draws membership bits uniformly
    at random until it is the only node with its prefix (Aspnes & Shah).
    Produces height ``O(log n)`` with high probability.
``build_balanced_skip_graph``
    A deterministic, perfectly balanced construction: the list at each level
    is split into halves by rank, so bit ``i`` of a node is bit ``i`` of its
    rank written in binary (most significant bit first).  Gives height
    exactly ``ceil(log2 n) + 1`` and satisfies the a-balance property for
    every ``a >= 1`` except at odd-size boundaries (where ``a >= 2``
    suffices).  DSG runs in the experiments start from this topology.
``build_skip_graph_from_membership``
    Explicit membership vectors (used to reconstruct the paper's worked
    examples, Figures 1 and 4).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.simulation.rng import make_rng
from repro.skipgraph.membership import MembershipVector
from repro.skipgraph.node import Key, SkipGraphNode
from repro.skipgraph.skipgraph import SkipGraph

__all__ = [
    "build_skip_graph",
    "build_balanced_skip_graph",
    "build_skip_graph_from_membership",
    "draw_membership_bits",
    "draw_membership_bits_reference",
]


def build_skip_graph(keys: Iterable[Key], rng: Optional[random.Random] = None) -> SkipGraph:
    """Build a skip graph with uniformly random membership vectors.

    Bits are drawn lazily: whenever two or more nodes still share a prefix,
    each of them draws one more bit, until every node's vector is unique.
    """
    rng = rng or make_rng()
    keys = sorted(set(keys))
    vectors: Dict[Key, List[int]] = {key: [] for key in keys}

    def groups() -> List[List[Key]]:
        by_prefix: Dict[tuple, List[Key]] = {}
        for key in keys:
            by_prefix.setdefault(tuple(vectors[key]), []).append(key)
        return [members for members in by_prefix.values() if len(members) > 1]

    pending = groups()
    while pending:
        for members in pending:
            for key in members:
                vectors[key].append(rng.randint(0, 1))
        pending = groups()

    graph = SkipGraph()
    for key in keys:
        graph.add_node(SkipGraphNode(key=key, membership=MembershipVector(vectors[key])))
    return graph


def build_balanced_skip_graph(keys: Iterable[Key]) -> SkipGraph:
    """Build a perfectly balanced skip graph (deterministic).

    Each list is split by rank parity: nodes at even positions form the
    0-sublist and nodes at odd positions form the 1-sublist, recursively
    until lists are singletons.  The resulting height is exactly
    ``ceil(log2 n) + 1``, routing distances are ``O(log n)``, and the
    a-balance property holds for every ``a >= 1`` (no two consecutive nodes
    of a list ever share the next-level sublist).
    """
    keys = sorted(set(keys))
    vectors: Dict[Key, List[int]] = {key: [] for key in keys}

    def split(members: Sequence[Key]) -> None:
        if len(members) <= 1:
            return
        evens = list(members[0::2])
        odds = list(members[1::2])
        for key in evens:
            vectors[key].append(0)
        for key in odds:
            vectors[key].append(1)
        split(evens)
        split(odds)

    split(keys)
    graph = SkipGraph()
    for key in keys:
        graph.add_node(SkipGraphNode(key=key, membership=MembershipVector(vectors[key])))
    return graph


def draw_membership_bits(graph: SkipGraph, key: Key, rng: random.Random) -> List[int]:
    """Draw random membership bits for a node joining ``graph`` (Section IV-G).

    Bits are appended uniformly at random until no existing *real* node
    shares the prefix — the classical join rule, which keeps the expected
    height at ``O(log n)``.  Used by every structure that supports online
    joins (``DynamicSkipGraph.add_node`` and the static baselines' ``join``)
    so they all churn identically given the same RNG stream.

    The shared-prefix test consults the graph's incrementally maintained
    prefix-count index (:meth:`~repro.skipgraph.skipgraph.SkipGraph.shares_real_prefix`),
    so one join costs O(height) index lookups instead of an O(n) scan of
    ``real_keys`` per drawn bit.  The predicate — and therefore the number
    of RNG draws and the emitted bits — is *byte-identical* to the scan
    (kept as :func:`draw_membership_bits_reference` and property-tested
    against it), which is what keeps every algorithm churning identically
    across the old and new implementations.
    """
    bits: List[int] = []
    shares = graph.shares_real_prefix
    while shares(tuple(bits), exclude=key):
        bits.append(rng.randint(0, 1))
    return bits


def draw_membership_bits_reference(graph: SkipGraph, key: Key, rng: random.Random) -> List[int]:
    """Executable specification of :func:`draw_membership_bits` (O(n) scan).

    The seed implementation: the shared-prefix predicate re-scans every
    real key per drawn bit.  Kept for the property tests and for the
    full-scan replay path (``DSGConfig.use_reference_scans``) that the
    incremental churn machinery is proven equivalent against.
    """
    bits: List[int] = []

    def prefix_shared() -> bool:
        prefix = tuple(bits)
        for other in graph.real_keys:
            if other == key:
                continue
            membership = graph.membership(other)
            if len(membership) >= len(prefix) and membership.bits[: len(prefix)] == prefix:
                return True
        return False

    while prefix_shared():
        bits.append(rng.randint(0, 1))
    return bits


def build_skip_graph_from_membership(membership: Mapping[Key, Sequence[int] | str]) -> SkipGraph:
    """Build a skip graph from explicit ``key -> membership vector`` data."""
    graph = SkipGraph()
    for key in sorted(membership):
        graph.add_node(SkipGraphNode(key=key, membership=MembershipVector(membership[key])))
    return graph


def expected_height(n: int) -> int:
    """Convenience: ``ceil(log2 n) + 1`` (height of the balanced construction)."""
    if n <= 1:
        return 1
    return math.ceil(math.log2(n)) + 1
