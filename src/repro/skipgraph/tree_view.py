"""Binary-tree-of-linked-lists view of a skip graph (paper, Fig. 1).

    "For simpler representation, we map a skip graph into a binary tree of
    linked lists.  [...] the linked list at level 0 is represented by the
    root node of the tree, and the 0-sublist and the 1-sublist at level 1 are
    represented by the left child and right child of the root, respectively."

The view is used by experiment E1 and by the pretty-printer that renders the
paper's figures in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["TreeNode", "tree_view", "render_tree"]


@dataclass
class TreeNode:
    """One linked list of the skip graph, as a node of the binary tree."""

    level: int
    prefix: Tuple[int, ...]
    keys: List[Key]
    zero_child: Optional["TreeNode"] = None
    one_child: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.zero_child is None and self.one_child is None

    @property
    def prefix_string(self) -> str:
        return "".join(str(bit) for bit in self.prefix) or "(root)"

    def all_lists(self) -> List["TreeNode"]:
        """This node and all descendants, in pre-order."""
        found = [self]
        for child in (self.zero_child, self.one_child):
            if child is not None:
                found.extend(child.all_lists())
        return found

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        children = [child for child in (self.zero_child, self.one_child) if child is not None]
        if not children:
            return 1
        return 1 + max(child.depth() for child in children)


def tree_view(graph: SkipGraph) -> TreeNode:
    """Build the binary tree of linked lists for ``graph``."""
    return _build(graph, level=0, prefix=(), keys=graph.keys)


def _build(graph: SkipGraph, level: int, prefix: Tuple[int, ...], keys: List[Key]) -> TreeNode:
    node = TreeNode(level=level, prefix=prefix, keys=list(keys))
    if len(keys) <= 1:
        return node
    zero_keys: List[Key] = []
    one_keys: List[Key] = []
    for key in keys:
        membership = graph.membership(key)
        if len(membership) < level + 1:
            # The node does not descend further; it stays a singleton leaf
            # conceptually attached to this list.  Standard skip graphs always
            # have long-enough vectors, so this only happens mid-transformation.
            continue
        if membership.bit(level + 1) == 0:
            zero_keys.append(key)
        else:
            one_keys.append(key)
    if zero_keys:
        node.zero_child = _build(graph, level + 1, prefix + (0,), zero_keys)
    if one_keys:
        node.one_child = _build(graph, level + 1, prefix + (1,), one_keys)
    return node


def render_tree(root: TreeNode) -> str:
    """ASCII rendering of the tree view, one list per line, indented by level."""
    lines: List[str] = []

    def visit(node: TreeNode) -> None:
        indent = "  " * node.level
        keys = ", ".join(str(key) for key in node.keys)
        lines.append(f"{indent}[level {node.level} | {node.prefix_string}] {keys}")
        for child in (node.zero_child, node.one_child):
            if child is not None:
                visit(child)

    visit(root)
    return "\n".join(lines)
