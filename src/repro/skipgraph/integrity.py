"""Whole-structure integrity verification for skip graphs.

The failure arena (``bench_e16_failures``) runs crashes against a live
topology and needs a *standing invariant*: after every repair wave, the
skip graph — and the :class:`~repro.simulation.network.Network` mirroring
it — must still be a skip graph.  :func:`verify_skip_graph_integrity` is
that invariant, modelled on the checker the bami skip-graph simulation runs
after every churn batch (SNIPPETS.md §1): recompute what the structure
*should* look like from the raw node data (keys + membership vectors, the
canonical state) and compare it against every derived view the hot paths
trust — the sorted base list, the cached level lists and their position
maps (via :meth:`SkipGraph.neighbors`), the incremental prefix-count
indexes, and (optionally) the live network's links and level labels.

The checker is deliberately *redundant* with the caches it audits: it
derives each level list by filtering membership bits directly, never
through ``_list_cache``, so a corrupted cache entry, an unsorted base
list, or a membership vector rewritten behind the index's back each
produce a distinct violation instead of silently steering routes astray.

Checks performed (each yields human-readable violation strings):

1. **base list** — ``keys`` strictly ascending and exactly the node set;
2. **level lists** — every multi-node list derived from membership
   prefixes is sorted, and walking it through :meth:`SkipGraph.neighbors`
   (the cache-backed path routing uses) reproduces it with symmetric
   left/right pointers (doubly-linked consistency);
3. **membership-prefix consistency** — every cached list contains exactly
   the keys whose vectors carry its prefix, and the incremental prefix
   counts (total, dummy, multi-per-level) match a from-scratch recount;
   when an array-backed bit store is attached (``attach_array_store``),
   its membership, row count and per-key vectors are audited against the
   node table too — a crash/repair/rejoin cycle must leave the numpy
   mirror in lock-step with the canonical per-node bits;
4. **vector uniqueness** — no two real nodes share a full membership
   vector (delegates to :meth:`SkipGraph.validate`);
5. **network symmetry** (when a network is given) — the network's node
   set, adjacency symmetry, links and per-level labels equal the
   expectation derived from the graph (the
   :func:`~repro.distributed.routing_protocol.skip_graph_network`
   convention: one link per level-adjacent pair, labelled ``level<d>``).

An empty return value means the structure is clean.  The report is capped
(``max_violations``) so a badly corrupted 4096-node arena does not drown
the caller in output; the cap is noted in the last entry when hit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.skipgraph.node import Key
from repro.skipgraph.skipgraph import SkipGraph

if TYPE_CHECKING:  # the distributed layer sits above this one
    from repro.simulation.network import Network

__all__ = ["IntegrityError", "assert_skip_graph_integrity", "verify_skip_graph_integrity"]

Prefix = Tuple[int, ...]


class IntegrityError(ValueError):
    """Raised by :func:`assert_skip_graph_integrity` when violations exist."""


def _derived_lists(graph: SkipGraph) -> Dict[Tuple[int, Prefix], List[Key]]:
    """Every level list (singletons included), from raw membership bits only."""
    lists: Dict[Tuple[int, Prefix], List[Key]] = {}
    for node in graph.nodes():
        bits = node.membership.bits
        for level in range(1, len(bits) + 1):
            lists.setdefault((level, bits[:level]), []).append(node.key)
    return lists


def _expected_links(graph: SkipGraph, redundancy: int = 1) -> Dict[FrozenSet[Key], Set[str]]:
    """Expected network links with their level labels (one per adjacency).

    Mirrors the :func:`~repro.distributed.routing_protocol.skip_graph_network`
    convention without importing it (the distributed layer sits above this
    one): members of every list — the base list and each multi-node level
    list — within list distance ``redundancy`` of each other are linked
    with label ``level<d>`` (consecutive members only at the default
    ``redundancy = 1``).
    """
    links: Dict[FrozenSet[Key], Set[str]] = {}
    base = graph.keys
    for distance in range(1, redundancy + 1):
        for index in range(len(base) - distance):
            links.setdefault(frozenset((base[index], base[index + distance])), set()).add("level0")
    for (level, _prefix), members in _derived_lists(graph).items():
        if len(members) < 2:
            continue
        ordered = sorted(members)
        for distance in range(1, redundancy + 1):
            for index in range(len(ordered) - distance):
                links.setdefault(
                    frozenset((ordered[index], ordered[index + distance])), set()
                ).add(f"level{level}")
    return links


def verify_skip_graph_integrity(
    graph: SkipGraph,
    network: Optional["Network"] = None,  # noqa: F821 - forward ref, see import below
    max_violations: int = 20,
    redundancy: int = 1,
) -> List[str]:
    """Return violation descriptions; an empty list means the graph is clean.

    ``network``, when given, is additionally audited against the graph
    (node set, adjacency symmetry, links, level labels) under the given
    link ``redundancy`` (the ``k`` the network was built with).  The
    caller is responsible for only passing a network that is *supposed*
    to mirror the graph — during a deferred-repair window the two
    legitimately diverge and the check should be run after the repair
    wave.
    """
    violations: List[str] = []

    def report(message: str) -> bool:
        """Record one violation; return ``False`` once the cap is reached."""
        if len(violations) >= max_violations:
            return False
        violations.append(message)
        if len(violations) == max_violations:
            violations.append(f"... report capped at {max_violations} violations")
            return False
        return True

    nodes = {node.key: node for node in graph.nodes()}
    base = graph.keys

    # 1. Base list: strictly sorted, exactly the node population.
    for first, second in zip(base, base[1:]):
        if not first < second:
            if not report(f"base list not strictly sorted: {first!r} !< {second!r}"):
                return violations
    if set(base) != set(nodes):
        missing = set(nodes) - set(base)
        extra = set(base) - set(nodes)
        report(f"base list / node set mismatch (missing={sorted(missing)!r}, extra={sorted(extra)!r})")

    # 2. Level lists: sorted, and the cache-backed neighbour walk agrees.
    derived = _derived_lists(graph)
    for (level, prefix), members in sorted(derived.items()):
        if len(members) < 2:
            continue
        ordered = sorted(members)
        for index, key in enumerate(ordered):
            try:
                left, right = graph.neighbors(key, level)
            except Exception as exc:  # corrupted cache/position map
                if not report(f"neighbors({key!r}, {level}) raised {exc!r}"):
                    return violations
                continue
            want_left = ordered[index - 1] if index > 0 else None
            want_right = ordered[index + 1] if index + 1 < len(ordered) else None
            if (left, right) != (want_left, want_right):
                if not report(
                    f"level {level} list {prefix!r}: node {key!r} has neighbours "
                    f"({left!r}, {right!r}), expected ({want_left!r}, {want_right!r})"
                ):
                    return violations

    # 3a. Cached lists: membership-prefix consistency against the derivation.
    # Merge lazy insertion buffers first: a pending key is structurally
    # present (node table, prefix counts) but not yet in its cached list.
    graph._flush_pending()
    for (level, prefix), cached in sorted(graph._list_cache.items()):
        expected = sorted(derived.get((level, prefix), []))
        if list(cached) != expected:
            if not report(
                f"cached list (level={level}, prefix={prefix!r}) is {list(cached)!r}, "
                f"expected {expected!r}"
            ):
                return violations

    # 3b. Incremental indexes: recount prefixes from scratch.
    prefix_counts: Dict[Prefix, int] = {}
    dummy_prefix_counts: Dict[Prefix, int] = {}
    dummy_count = 0
    for node in nodes.values():
        bits = node.membership.bits
        if node.is_dummy:
            dummy_count += 1
        for level in range(1, len(bits) + 1):
            prefix = bits[:level]
            prefix_counts[prefix] = prefix_counts.get(prefix, 0) + 1
            if node.is_dummy:
                dummy_prefix_counts[prefix] = dummy_prefix_counts.get(prefix, 0) + 1
    multi: Dict[int, int] = {}
    for prefix, count in prefix_counts.items():
        if count >= 2:
            multi[len(prefix)] = multi.get(len(prefix), 0) + 1
    if graph._prefix_counts != prefix_counts:
        report("prefix-count index does not match a from-scratch recount")
    if graph._dummy_prefix_counts != dummy_prefix_counts:
        report("dummy-prefix index does not match a from-scratch recount")
    if graph._dummy_count != dummy_count:
        report(f"dummy count is {graph._dummy_count}, recount says {dummy_count}")
    if graph._multi_prefixes_per_level != multi:
        report("multi-prefix-per-level index does not match a from-scratch recount")

    # 3c. Array-backed bit store (PR 9): the numpy mirror must stay in
    # lock-step with the node table through crash/repair/rejoin cycles.
    store = graph._array_store
    if store is not None:
        if len(store) != len(nodes):
            report(f"array store holds {len(store)} rows, node table holds {len(nodes)}")
        for key in sorted(set(store._rows) - set(nodes)):
            if not report(f"array store carries stale key {key!r} absent from the node table"):
                return violations
        for key in sorted(nodes):
            if key not in store:
                if not report(f"array store is missing key {key!r}"):
                    return violations
                continue
            expected_bits = nodes[key].membership.bits
            stored_bits = store.vector(key)
            if stored_bits != expected_bits:
                if not report(
                    f"array store vector for {key!r} is {stored_bits!r}, "
                    f"node table says {expected_bits!r}"
                ):
                    return violations

    # 4. Vector uniqueness (and the structure's own invariants).
    try:
        graph.validate()
    except ValueError as exc:
        report(f"graph.validate(): {exc}")

    # 5. Network mirror: nodes, adjacency symmetry, links, level labels.
    if network is not None:
        graph_keys = set(nodes)
        net_nodes = set(network.nodes)
        if graph_keys != net_nodes:
            report(
                f"network node set mismatch (graph-only={sorted(graph_keys - net_nodes)!r}, "
                f"network-only={sorted(net_nodes - graph_keys)!r})"
            )
        for u in net_nodes:
            for v in network.neighbors(u):
                if not network.has_link(v, u):
                    if not report(f"asymmetric adjacency: {u!r} -> {v!r} but not back"):
                        return violations
        expected_links = _expected_links(graph, redundancy)
        actual_links = {frozenset(edge) for edge in network.edges()}
        for link in sorted(
            (link for link in expected_links if link not in actual_links),
            key=sorted,
        ):
            if not report(f"missing link {sorted(link)!r}"):
                return violations
        for link in sorted((link for link in actual_links if link not in expected_links), key=sorted):
            if not report(f"unexpected link {sorted(link)!r}"):
                return violations
        for link, labels in sorted(expected_links.items(), key=lambda item: sorted(item[0])):
            if link not in actual_links:
                continue
            u, v = tuple(link)
            actual_labels = network.labels(u, v)
            if actual_labels != labels:
                if not report(
                    f"link {sorted(link)!r} carries labels {sorted(map(str, actual_labels))!r}, "
                    f"expected {sorted(labels)!r}"
                ):
                    return violations

    return violations


def assert_skip_graph_integrity(
    graph: SkipGraph,
    network: Optional["Network"] = None,  # noqa: F821
    max_violations: int = 20,
    redundancy: int = 1,
) -> None:
    """Raise :class:`IntegrityError` listing every violation found."""
    violations = verify_skip_graph_integrity(
        graph, network, max_violations=max_violations, redundancy=redundancy
    )
    if violations:
        raise IntegrityError(
            "skip graph integrity violated:\n  " + "\n  ".join(violations)
        )
