"""Skip graph nodes.

A :class:`SkipGraphNode` is a peer with a totally ordered ``key`` (the paper
calls keys *identifiers*), a membership vector, and an optional application
payload.  Dummy nodes (Section IV-F of the paper) are marked with
``is_dummy=True``: they carry no data, participate in routing only, and are
destroyed when they receive a transformation notification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.skipgraph.membership import MembershipVector

__all__ = ["SkipGraphNode"]

Key = Any  # totally ordered; integers in all experiments


@dataclass
class SkipGraphNode:
    """One peer of the skip graph.

    Attributes
    ----------
    key:
        Totally ordered identifier; determines the position in every level
        linked list.
    membership:
        The node's membership vector (see :mod:`repro.skipgraph.membership`).
    payload:
        Arbitrary application data carried by the node (unused by the
        algorithms, present for the examples).
    is_dummy:
        ``True`` for the logical dummy nodes DSG inserts to preserve the
        a-balance property (paper, Section IV-F).
    """

    key: Key
    membership: MembershipVector = field(default_factory=MembershipVector)
    payload: Any = None
    is_dummy: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.membership, MembershipVector):
            self.membership = MembershipVector(self.membership)

    # ------------------------------------------------------------------ bits
    def list_prefix(self, level: int) -> MembershipVector:
        """Prefix identifying the linked list of this node at ``level``."""
        return self.membership.prefix(level)

    def bit(self, level: int) -> int:
        return self.membership.bit(level)

    def set_bit(self, level: int, bit: int) -> None:
        self.membership = self.membership.with_bit(level, bit)

    def truncate_membership(self, length: int) -> None:
        self.membership = self.membership.truncated(length)

    # -------------------------------------------------------------- protocol
    def __lt__(self, other: "SkipGraphNode") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:
        flag = ", dummy" if self.is_dummy else ""
        return f"SkipGraphNode(key={self.key!r}, m='{self.membership}'{flag})"
