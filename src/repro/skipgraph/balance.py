"""The a-balance property (paper, Section III).

    "A Skip Graph satisfies the a-balance property if there exists a positive
    integer a, such that among any a + 1 consecutive nodes in any linked list
    l in L_i, at most a nodes can be in a single linked list in L_{i+1}."

Equivalently: in no linked list do ``a + 1`` consecutive nodes all move to
the same sublist at the next level, i.e. the longest run of equal
"next-level bits" within any list is at most ``a``.  The property guarantees
search paths of length at most ``a * log n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["BalanceViolation", "a_balance_violations", "check_a_balance", "longest_run"]


@dataclass(frozen=True)
class BalanceViolation:
    """A run of more than ``a`` consecutive nodes moving to the same sublist."""

    level: int
    prefix: tuple
    bit: int
    run_keys: tuple

    def __str__(self) -> str:
        return (
            f"level {self.level}: {len(self.run_keys)} consecutive nodes "
            f"{list(self.run_keys)} all move to the {self.bit}-sublist"
        )


def longest_run(bits: List[int]) -> int:
    """Length of the longest run of equal values in ``bits``."""
    best = 0
    current = 0
    previous = object()
    for bit in bits:
        if bit == previous:
            current += 1
        else:
            current = 1
            previous = bit
        best = max(best, current)
    return best


def a_balance_violations(graph: SkipGraph, a: int) -> List[BalanceViolation]:
    """Return every a-balance violation in ``graph``.

    A violation is reported once per maximal offending run.
    """
    if a < 1:
        raise ValueError("a must be a positive integer")
    violations: List[BalanceViolation] = []
    max_level = graph.max_list_level()
    for level in range(max_level + 1):
        for prefix, members in graph.lists_at_level(level).items():
            if len(members) <= a:
                continue
            bits = []
            for key in members:
                membership = graph.membership(key)
                bit = membership.bit(level + 1) if len(membership) >= level + 1 else None
                bits.append(bit)
            index = 0
            while index < len(bits):
                bit = bits[index]
                start = index
                while index < len(bits) and bits[index] == bit:
                    index += 1
                run_length = index - start
                if bit is not None and run_length > a:
                    violations.append(
                        BalanceViolation(
                            level=level,
                            prefix=tuple(prefix),
                            bit=bit,
                            run_keys=tuple(members[start:index]),
                        )
                    )
    return violations


def check_a_balance(graph: SkipGraph, a: int) -> bool:
    """``True`` iff ``graph`` satisfies the a-balance property for ``a``."""
    return not a_balance_violations(graph, a)
