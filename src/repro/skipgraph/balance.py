"""The a-balance property (paper, Section III).

    "A Skip Graph satisfies the a-balance property if there exists a positive
    integer a, such that among any a + 1 consecutive nodes in any linked list
    l in L_i, at most a nodes can be in a single linked list in L_{i+1}."

Equivalently: in no linked list do ``a + 1`` consecutive nodes all move to
the same sublist at the next level, i.e. the longest run of equal
"next-level bits" within any list is at most ``a``.  The property guarantees
search paths of length at most ``a * log n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.skipgraph.skipgraph import SkipGraph

__all__ = ["BalanceViolation", "a_balance_violations", "check_a_balance", "longest_run"]


@dataclass(frozen=True)
class BalanceViolation:
    """A run of more than ``a`` consecutive nodes moving to the same sublist."""

    level: int
    prefix: tuple
    bit: int
    run_keys: tuple

    def __str__(self) -> str:
        return (
            f"level {self.level}: {len(self.run_keys)} consecutive nodes "
            f"{list(self.run_keys)} all move to the {self.bit}-sublist"
        )


def longest_run(bits: List[int]) -> int:
    """Length of the longest run of equal values in ``bits``."""
    best = 0
    current = 0
    previous = object()
    for bit in bits:
        if bit == previous:
            current += 1
        else:
            current = 1
            previous = bit
        best = max(best, current)
    return best


def a_balance_violations(graph: SkipGraph, a: int) -> List[BalanceViolation]:
    """Return every a-balance violation in ``graph``.

    A violation is reported once per maximal offending run, in list order
    (lists by first appearance of their prefix in key order, runs left to
    right), level by level.  One pass over the precomputed bit tuples per
    level — the scan is on the churn path (``restore_a_balance``), so it
    avoids per-key :class:`MembershipVector` accessor calls.
    """
    if a < 1:
        raise ValueError("a must be a positive integer")
    violations: List[BalanceViolation] = []
    keyed_bits = [(node.key, node.membership.bits) for node in graph]
    max_level = graph.max_list_level()
    for level in range(max_level + 1):
        # prefix -> [run_bit, run_keys]; the run resets on bit changes.
        runs: dict = {}
        order: List[tuple] = []
        found: dict = {}

        def close_run(prefix, state) -> None:
            run_bit, run_keys = state
            if run_bit is not None and len(run_keys) > a:
                found.setdefault(prefix, []).append(
                    BalanceViolation(
                        level=level, prefix=prefix, bit=run_bit, run_keys=tuple(run_keys)
                    )
                )

        for key, bits in keyed_bits:
            if len(bits) < level:
                continue
            prefix = bits[:level]
            bit = bits[level] if len(bits) > level else None
            state = runs.get(prefix)
            if state is None:
                runs[prefix] = [bit, [key]]
                order.append(prefix)
                continue
            if bit is not None and bit == state[0]:
                state[1].append(key)
            else:
                close_run(prefix, state)
                state[0] = bit
                state[1] = [key]
        for prefix in order:
            close_run(prefix, runs[prefix])
        for prefix in order:
            violations.extend(found.get(prefix, ()))
    return violations


def check_a_balance(graph: SkipGraph, a: int) -> bool:
    """``True`` iff ``graph`` satisfies the a-balance property for ``a``."""
    return not a_balance_violations(graph, a)
