"""The a-balance property (paper, Section III) and its incremental tracking.

    "A Skip Graph satisfies the a-balance property if there exists a positive
    integer a, such that among any a + 1 consecutive nodes in any linked list
    l in L_i, at most a nodes can be in a single linked list in L_{i+1}."

Equivalently: in no linked list do ``a + 1`` consecutive nodes all move to
the same sublist at the next level, i.e. the longest run of equal
"next-level bits" within any list is at most ``a``.  The property guarantees
search paths of length at most ``a * log n``.

Two detection paths are provided:

* :func:`a_balance_violations` — the full O(total bits) rescan, one pass per
  level over the keys that still carry a bit at that level (the executable
  specification, also used by :func:`check_a_balance` and the E10 audit);
* :class:`BalanceTracker` — the incremental tracker on the churn path: the
  local-op kernel (:mod:`repro.core.local_ops`) reports every structural
  change *before* it is applied, the tracker converts it into per-list dirty
  marks — ``(level, prefix)`` plus the key positions whose neighbourhood
  changed — and :meth:`BalanceTracker.violations` rescans only the dirtied
  lists (walking just the runs around each marked position) instead of the
  whole graph on every cascade round of
  :meth:`~repro.core.dsg.DynamicSkipGraph.restore_a_balance`.

The tracker's correctness invariant: between two consumptions, a run longer
than ``a`` can only arise at a position whose membership changed (bit
rewrite, insertion) or next to one (a departure merging its two flanking
runs; an insertion splitting an over-long run into a still-over-long tail),
so every violating run either contains a marked position or is adjacent to
one — and the anchored walk inspects exactly those runs.  Lists whose
violations could not be repaired are re-marked *whole*, and a tracker
starts with everything dirty (the first consumption is one full rescan), so
the incremental path reports the same violations in the same canonical
order (level, then list by first member key, then runs left to right) as
the full rescan — which is what keeps dummy placement, and therefore the
RNG stream and the final topology, byte-identical between the two paths
(property-tested, and asserted at scale by ``benchmarks/bench_e15_100k.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.skipgraph.skipgraph import SkipGraph

__all__ = [
    "BalanceTracker",
    "BalanceViolation",
    "a_balance_violations",
    "check_a_balance",
    "longest_run",
]

Prefix = Tuple[int, ...]
DirtyList = Tuple[int, Prefix]


@dataclass(frozen=True)
class BalanceViolation:
    """A run of more than ``a`` consecutive nodes moving to the same sublist."""

    level: int
    prefix: tuple
    bit: int
    run_keys: tuple

    def __str__(self) -> str:
        return (
            f"level {self.level}: {len(self.run_keys)} consecutive nodes "
            f"{list(self.run_keys)} all move to the {self.bit}-sublist"
        )


def longest_run(bits: List[int]) -> int:
    """Length of the longest run of equal values in ``bits``."""
    best = 0
    current = 0
    previous = object()
    for bit in bits:
        if bit == previous:
            current += 1
        else:
            current = 1
            previous = bit
        best = max(best, current)
    return best


def _record_run(
    violations: List["BalanceViolation"],
    level: int,
    prefix: Prefix,
    run_bit: Optional[int],
    run_keys: List,
    a: int,
) -> None:
    """Append the run as a violation if it exceeds ``a`` (single source)."""
    if run_bit is not None and len(run_keys) > a:
        violations.append(
            BalanceViolation(level=level, prefix=prefix, bit=run_bit, run_keys=tuple(run_keys))
        )


def _close_run(found: dict, level: int, prefix: Prefix, state: list, a: int) -> None:
    """Record ``state``'s run into the per-prefix ``found`` map."""
    _record_run(found.setdefault(prefix, []), level, prefix, state[0], state[1], a)


def a_balance_violations(graph: SkipGraph, a: int) -> List[BalanceViolation]:
    """Return every a-balance violation in ``graph`` (full rescan).

    A violation is reported once per maximal offending run, in list order
    (lists by first appearance of their prefix in key order, runs left to
    right), level by level.  The per-level pass only walks the keys whose
    membership vectors still reach the level — the survivor list shrinks as
    the levels climb, so the whole scan costs O(total membership bits)
    rather than O(n * height) — and the run-closing helper is hoisted to
    module level instead of being rebound per level.
    """
    if a < 1:
        raise ValueError("a must be a positive integer")
    violations: List[BalanceViolation] = []
    survivors = [(node.key, node.membership.bits) for node in graph]
    max_level = graph.max_list_level()
    for level in range(max_level + 1):
        if level:
            survivors = [entry for entry in survivors if len(entry[1]) >= level]
        # prefix -> [run_bit, run_keys]; the run resets on bit changes.
        runs: dict = {}
        order: List[Prefix] = []
        found: dict = {}
        for key, bits in survivors:
            prefix = bits[:level]
            bit = bits[level] if len(bits) > level else None
            state = runs.get(prefix)
            if state is None:
                runs[prefix] = [bit, [key]]
                order.append(prefix)
                continue
            if bit is not None and bit == state[0]:
                state[1].append(key)
            else:
                _close_run(found, level, prefix, state, a)
                state[0] = bit
                state[1] = [key]
        for prefix in order:
            _close_run(found, level, prefix, runs[prefix], a)
        for prefix in order:
            violations.extend(found.get(prefix, ()))
    return violations


def check_a_balance(graph: SkipGraph, a: int) -> bool:
    """``True`` iff ``graph`` satisfies the a-balance property for ``a``."""
    return not a_balance_violations(graph, a)


# ------------------------------------------------------------------ tracker
class BalanceTracker:
    """Per-list dirty marks driving incremental a-balance detection.

    The tracker holds, per dirtied ``(level, prefix)`` list, the set of
    *anchor keys* whose neighbourhood changed since the last consumption —
    or ``None`` when the whole list must be rescanned (initial state,
    unrepairable violations).  Anchors are key *values*: a departed node's
    key still bisects to its old position in the (key-ordered) list, so one
    mark scheme covers insertions, departures and bit rewrites alike.

    Feeding happens through the ``mark_*`` primitives, which the local-op
    kernel (:func:`repro.core.local_ops.apply_op` with a ``tracker``, and
    therefore every ``OpRecorder`` mutation) calls *before* applying each
    op — the marks for a departure need the pre-departure membership
    vector.  Marking costs O(1) dictionary work per affected level and
    never touches the level lists themselves, so the request hot path only
    pays for the lists it already rewrites.
    """

    __slots__ = ("_all_dirty", "_dirty")

    def __init__(self) -> None:
        #: Everything is dirty until the first consumption: a fresh graph
        #: (or one assembled outside the kernel) may hold violations in
        #: lists no op ever touched, so the first scan is a full rescan.
        self._all_dirty = True
        #: (level, prefix) -> anchor key set, or None for "whole list".
        self._dirty: Dict[DirtyList, Optional[Set]] = {}

    # ------------------------------------------------------------- marking
    def mark_all(self) -> None:
        """Invalidate everything (the next consumption is a full rescan)."""
        self._all_dirty = True
        self._dirty.clear()

    def mark_list(self, level: int, prefix: Prefix) -> None:
        """Mark one whole list dirty (used when a repair could not land)."""
        if self._all_dirty:
            return
        self._dirty[(level, prefix)] = None

    def mark_anchor(self, level: int, prefix: Prefix, key) -> None:
        """Mark ``key``'s neighbourhood in the list at ``level``/``prefix``."""
        if self._all_dirty:
            return
        entry = (level, prefix)
        anchors = self._dirty.get(entry, False)
        if anchors is None:
            return  # whole list already dirty
        if anchors is False:
            self._dirty[entry] = {key}
        else:
            anchors.add(key)

    def mark_run(self, level: int, prefix: Prefix, keys: Iterable) -> None:
        """Mark a whole run of keys in one list (bulk :meth:`mark_anchor`).

        Emitted by the skip graph's bulk kernel entry points — one call per
        (list, run) instead of one ``mark_anchor`` per key — and equivalent
        to calling :meth:`mark_anchor` for each key.
        """
        if self._all_dirty:
            return
        entry = (level, prefix)
        anchors = self._dirty.get(entry, False)
        if anchors is None:
            return  # whole list already dirty
        if anchors is False:
            self._dirty[entry] = set(keys)
        else:
            anchors.update(keys)

    def mark_insert(self, key, bits: Prefix) -> None:
        """Marks for a node insertion (join or dummy) with vector ``bits``."""
        if self._all_dirty:
            return
        for level in range(len(bits) + 1):
            self.mark_anchor(level, bits[:level], key)

    def mark_remove(self, graph: SkipGraph, key) -> None:
        """Marks for a departure — call *before* the node is removed."""
        if self._all_dirty:
            return
        bits = graph.membership(key).bits
        for level in range(len(bits) + 1):
            self.mark_anchor(level, bits[:level], key)

    def mark_rewrite(self, key, old: Prefix, new: Prefix) -> None:
        """Marks for a membership rewrite ``old -> new`` of ``key``."""
        if self._all_dirty:
            return
        if len(new) == len(old) + 1 and new[: len(old)] == old:
            keep = len(old)  # the transformation's per-level append
        elif len(old) > len(new) and old[: len(new)] == new:
            keep = len(new)  # a truncation (demote)
        else:
            keep = 0
            for bit_old, bit_new in zip(old, new):
                if bit_old != bit_new:
                    break
                keep += 1
        # The list at the preserved depth sees the node's bit change; the
        # lists beyond it see the node leave (old) or arrive (new).
        self.mark_anchor(keep, old[:keep], key)
        for level in range(keep + 1, len(old) + 1):
            self.mark_anchor(level, old[:level], key)
        for level in range(keep + 1, len(new) + 1):
            self.mark_anchor(level, new[:level], key)

    # ------------------------------------------------------------ consuming
    def violations(self, graph: SkipGraph, a: int) -> List[BalanceViolation]:
        """Violations in the dirtied lists, in the full-rescan order.

        Consumes the marks: scanned lists become clean (a caller that fails
        to repair a reported violation must re-mark its list).  The first
        call after construction or :meth:`mark_all` performs one full
        rescan; every later call walks only dirty lists — and within an
        anchored list, only the runs around each marked position.
        """
        if a < 1:
            raise ValueError("a must be a positive integer")
        if self._all_dirty:
            self._all_dirty = False
            self._dirty.clear()
            return a_balance_violations(graph, a)
        dirty, self._dirty = self._dirty, {}
        entries = []
        for (level, prefix), anchors in dirty.items():
            members = graph.list_at(level, prefix)
            if len(members) <= a:
                continue  # a run longer than a cannot fit
            entries.append((level, members[0], prefix, members, anchors))
        # Full-rescan order: level by level, lists by first member key (the
        # first appearance of the prefix in the key-ordered node walk).
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        violations: List[BalanceViolation] = []
        # Densely anchored lists (a transformation rewrote most of the
        # list) are cheaper — and identically — covered by one linear
        # pass; the anchored walk is for big lists with few changes
        # (the base list after one join, say).  With the array store
        # attached the linear pass is one vectorised gather, so it wins
        # until the anchors are ~64x sparser than the members.
        dense_factor = a + 2
        if graph._array_store is not None:
            dense_factor = max(dense_factor, 64)
        for level, _, prefix, members, anchors in entries:
            if anchors is None or len(anchors) * dense_factor >= len(members):
                violations.extend(_scan_whole_list(graph, level, prefix, members, a))
            else:
                violations.extend(_scan_anchored(graph, level, prefix, members, anchors, a))
        return violations


# Below this size the per-call numpy overhead beats the Python walk.
_VECTOR_SCAN_MIN = 64


def _scan_whole_list(
    graph: SkipGraph, level: int, prefix: Prefix, members: List, a: int
) -> List[BalanceViolation]:
    """Maximal runs longer than ``a`` in one list, left to right."""
    store = graph._array_store
    if store is not None and len(members) >= _VECTOR_SCAN_MIN:
        return _scan_whole_list_array(store, level, prefix, members, a)
    node = graph.node
    violations: List[BalanceViolation] = []
    run_bit: Optional[int] = None
    run_keys: List = []
    for key in members:
        bits = node(key).membership.bits
        bit = bits[level] if len(bits) > level else None
        if bit is not None and bit == run_bit:
            run_keys.append(key)
            continue
        _record_run(violations, level, prefix, run_bit, run_keys, a)
        run_bit = bit
        run_keys = [key]
    _record_run(violations, level, prefix, run_bit, run_keys, a)
    return violations


def _scan_whole_list_array(
    store, level: int, prefix: Prefix, members: List, a: int
) -> List[BalanceViolation]:
    """:func:`_scan_whole_list` over the attached array store, vectorised.

    One gather pulls the whole bit column; run boundaries fall out of a
    single shifted comparison.  Keys with no bit at ``level`` appear as
    :data:`~repro.skipgraph.array_store.NO_BIT` and their runs are dropped,
    exactly as the Python walk never records ``None`` runs — the reported
    violations are identical (property-tested).
    """
    column = store.bit_column(members, level)
    size = len(column)
    boundaries = np.flatnonzero(column[1:] != column[:-1])
    starts = np.concatenate(([0], boundaries + 1))
    ends = np.concatenate((boundaries, [size - 1]))
    keep = np.flatnonzero(((ends - starts + 1) > a) & (column[starts] >= 0))
    return [
        BalanceViolation(
            level=level,
            prefix=prefix,
            bit=int(column[starts[index]]),
            run_keys=tuple(members[starts[index] : ends[index] + 1]),
        )
        for index in keep
    ]


def _scan_anchored(
    graph: SkipGraph,
    level: int,
    prefix: Prefix,
    members: List,
    anchors: Iterable,
    a: int,
) -> List[BalanceViolation]:
    """Runs around each anchored position that exceed ``a``, left to right.

    For every anchor key: locate its position by bisection (departed keys
    still bisect to their old spot), then inspect the maximal run at that
    position plus the runs immediately flanking it — the only runs a change
    at the position can have grown, merged or split (see the class
    docstring's invariant).  Each walk costs O(run length); anchors are
    processed in position order so anchors falling inside an already-walked
    run are skipped outright.
    """
    # Direct node-map access: this is the churn-path inner loop, and the
    # per-position bit probe must not pay a method call per step.
    nodes = graph._nodes
    size = len(members)

    def bit_at(index: int) -> Optional[int]:
        bits = nodes[members[index]].membership.bits
        return bits[level] if len(bits) > level else None

    def run_span(index: int) -> Tuple[int, int, Optional[int]]:
        bit = bit_at(index)
        if bit is None:
            return index, index, None
        start = index
        while start > 0 and bit_at(start - 1) == bit:
            start -= 1
        end = index
        while end + 1 < size and bit_at(end + 1) == bit:
            end += 1
        return start, end, bit

    found: Dict[int, BalanceViolation] = {}

    def record(start: int, end: int, bit: Optional[int]) -> int:
        if bit is not None and end - start + 1 > a and start not in found:
            found[start] = BalanceViolation(
                level=level, prefix=prefix, bit=bit, run_keys=tuple(members[start : end + 1])
            )
        return end

    # A change at position i can only have grown, merged or split the runs
    # covering positions i-1, i and i+1 (for a departed key, bisection
    # points at its old right neighbour, so the flanking runs that may have
    # merged over it sit at i-1 and i).  Positions strictly inside an
    # already-walked run need no new walks: their whole neighbourhood lies
    # within that run.
    last_run_end = -1
    for index in sorted({bisect_left(members, anchor) for anchor in anchors}):
        if index < last_run_end:
            continue
        if index > 0:
            record(*run_span(index - 1))
        if index < size:
            start, end, bit = run_span(index)
            record(start, end, bit)
            last_run_end = end
            if end == index and index + 1 < size:
                record(*run_span(index + 1))
    return [found[start] for start in sorted(found)]
