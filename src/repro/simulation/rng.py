"""Deterministic random-number helpers.

All randomized components of the reproduction (skip list coin flips, AMF
sampling, workload generation, membership vectors of the static baseline)
take an explicit :class:`random.Random` instance so that experiments are
reproducible from a single seed.  These helpers centralise construction and
the derivation of independent child generators.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rng"]

#: Default seed used across the test-suite and the experiment harness when a
#: caller does not provide one.  Chosen arbitrarily; fixed for determinism.
DEFAULT_SEED = 20170403  # arXiv submission date of the paper (3 Apr 2017).


def make_rng(seed: int | None = None) -> random.Random:
    """Return a new :class:`random.Random` seeded deterministically.

    Parameters
    ----------
    seed:
        Seed to use.  ``None`` selects :data:`DEFAULT_SEED` (*not* an
        OS-entropy seed) so that "no seed given" still means reproducible.
    """
    return random.Random(DEFAULT_SEED if seed is None else seed)


def spawn_rng(parent: random.Random, label: str | int = 0) -> random.Random:
    """Derive an independent child generator from ``parent``.

    The child is seeded from the parent's stream combined with ``label`` so
    that two children with different labels are decorrelated, and the parent
    stream advances by exactly one draw regardless of label.
    """
    base = parent.getrandbits(64)
    return random.Random(f"{base}:{label!r}")
