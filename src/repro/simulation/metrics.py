"""Metrics collection for simulation runs.

Experiment E11 (CONGEST conformance) and the round-cost calibration of the
structural DSG engine both rely on the counters gathered here:

* number of rounds executed,
* number of messages delivered, total and per round,
* maximum message size in bits (to compare against ``c * log2 n``),
* per-link per-round usage (to detect CONGEST violations),
* dropped messages (sends over missing links in lenient mode, links removed
  while a message was in flight, deliveries to departed nodes) — kept
  *separate* from congestion violations so E11's "violations must be zero"
  check is not corrupted by churn-induced drops,
* failed requests (protocol-level outcomes reported through
  :meth:`~repro.simulation.node_process.RoundContext.report_failure`: a
  route that can make no progress because every remaining hop is dark, or
  whose destination crashed) — a *third* counter, distinct from drops: a
  drop is one lost message, a failure is one lost request, and the failure
  arena (``bench_e16_failures``) reports delivered-vs-failed from it,
* per-node peak memory estimate in words (as reported by processes).

A single :class:`MetricsCollector` can span several protocol executions on
a reused engine (churn arenas restart protocols on the same simulator);
:meth:`MetricsCollector.window` reports the counters of the rounds since a
checkpoint so each execution gets its own numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

__all__ = ["MetricsCollector", "RoundStats", "LinkUsage"]


@dataclass
class RoundStats:
    """Per-round aggregate counters."""

    round_index: int
    messages: int = 0
    bits: int = 0
    max_message_bits: int = 0
    congestion_violations: int = 0
    dropped_messages: int = 0
    failed_requests: int = 0


@dataclass
class LinkUsage:
    """Usage of a directed link within a single round."""

    sender: Hashable
    receiver: Hashable
    messages: int


@dataclass
class MetricsCollector:
    """Accumulates counters across a simulation run."""

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    congestion_violations: int = 0
    dropped_messages: int = 0
    failed_requests: int = 0
    per_round: List[RoundStats] = field(default_factory=list)
    peak_memory_words: Dict[Hashable, int] = field(default_factory=dict)

    def start_round(self, round_index: int) -> RoundStats:
        stats = RoundStats(round_index=round_index)
        self.per_round.append(stats)
        self.rounds = round_index + 1
        return stats

    def record_message(self, stats: RoundStats, size_bits: int) -> None:
        stats.messages += 1
        stats.bits += size_bits
        stats.max_message_bits = max(stats.max_message_bits, size_bits)
        self.total_messages += 1
        self.total_bits += size_bits
        self.max_message_bits = max(self.max_message_bits, size_bits)

    def record_congestion(self, stats: RoundStats, count: int = 1) -> None:
        stats.congestion_violations += count
        self.congestion_violations += count

    def record_drop(self, stats: "RoundStats | None", count: int = 1) -> None:
        """Record ``count`` dropped messages.

        ``stats`` may be ``None`` for drops that happen before the first
        round starts (a lenient-mode send over a missing link during
        ``on_start``); such drops are still counted in the run totals.
        """
        if stats is not None:
            stats.dropped_messages += count
        self.dropped_messages += count

    def record_failure(self, stats: "RoundStats | None", count: int = 1) -> None:
        """Record ``count`` failed requests (protocol-level, not per message).

        Like :meth:`record_drop`, ``stats`` may be ``None`` for failures
        reported outside a running round (a request whose destination is
        already known-crashed at initiation time).
        """
        if stats is not None:
            stats.failed_requests += count
        self.failed_requests += count

    def record_memory(self, node: Hashable, words: int) -> None:
        current = self.peak_memory_words.get(node, 0)
        if words > current:
            self.peak_memory_words[node] = words

    # ------------------------------------------------------------------ query
    @property
    def max_memory_words(self) -> int:
        if not self.peak_memory_words:
            return 0
        return max(self.peak_memory_words.values())

    def messages_in_round(self, round_index: int) -> int:
        if 0 <= round_index < len(self.per_round):
            return self.per_round[round_index].messages
        return 0

    def busiest_round(self) -> Tuple[int, int]:
        """Return ``(round_index, messages)`` of the round with most traffic."""
        if not self.per_round:
            return (0, 0)
        stats = max(self.per_round, key=lambda s: s.messages)
        return (stats.round_index, stats.messages)

    def summary(self) -> Dict[str, int]:
        """Plain-dict summary used by the experiment harness."""
        return {
            "rounds": self.rounds,
            "messages": self.total_messages,
            "bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "congestion_violations": self.congestion_violations,
            "dropped_messages": self.dropped_messages,
            "failed_requests": self.failed_requests,
            "max_memory_words": self.max_memory_words,
        }

    def window(self, start_round: int) -> Dict[str, int]:
        """Counters restricted to the rounds at or after ``start_round``.

        Protocol executions on a *reused* engine (the churn arenas restart a
        protocol on the same simulator after applying joins/leaves) call
        this with the engine's round at install time, so every execution
        reports only its own rounds/messages/bits/violations/drops.
        """
        rounds = [stats for stats in self.per_round if stats.round_index >= start_round]
        return {
            "rounds": len(rounds),
            "messages": sum(stats.messages for stats in rounds),
            "bits": sum(stats.bits for stats in rounds),
            "max_message_bits": max((stats.max_message_bits for stats in rounds), default=0),
            "congestion_violations": sum(stats.congestion_violations for stats in rounds),
            "dropped_messages": sum(stats.dropped_messages for stats in rounds),
            "failed_requests": sum(stats.failed_requests for stats in rounds),
        }
