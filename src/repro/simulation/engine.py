"""The synchronous round engine.

The engine repeatedly executes *rounds*.  In each round:

1. messages enqueued during the previous round are delivered to their
   receivers' inboxes (a message sent in round ``r`` is received in round
   ``r + 1``, as in the standard synchronous model);
2. every process is invoked with its inbox and may enqueue new messages;
3. the CONGEST constraint is checked: at most one message per directed link
   per round.  In strict mode a violation raises
   :class:`~repro.simulation.errors.CongestionError`; in lenient mode the
   excess messages are deferred to the next round and the violation is
   recorded in the metrics (useful for measuring how far a protocol is from
   conformance).

Messages may only travel over links present in the :class:`Network` at send
time; sending to a non-neighbour raises :class:`LinkError` (strict mode) or
drops the message with a recorded violation (lenient mode).

Churn and other externally driven events are injected with
:meth:`Simulator.schedule`: a callback registered for round ``r`` runs at
the very start of that round, before deliveries, and may mutate the network
(add/remove nodes and links) and register new processes.  This is the
engine-level counterpart of the workload-level scenario schedules in
:mod:`repro.workloads.scenarios` (which drive the DSG front end directly):
use it to replay a :class:`~repro.workloads.scenarios.Scenario`'s join/
leave events against a protocol simulation.

The engine stops when every process reports ``done``, no messages are in
flight and no scheduled events remain, or when ``max_rounds`` is exceeded
(which raises ``SimulationError`` unless ``allow_timeout`` is set).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional

from repro.simulation.errors import CongestionError, LinkError, MessageSizeError, SimulationError
from repro.simulation.message import Message
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import Network
from repro.simulation.node_process import NodeProcess, RoundContext
from repro.simulation.rng import make_rng, spawn_rng

__all__ = ["Simulator", "SimulatorConfig"]


@dataclass
class SimulatorConfig:
    """Configuration of a :class:`Simulator` run.

    Attributes
    ----------
    max_rounds:
        Hard cap on the number of rounds (safety net against livelock).
    strict_congest:
        If ``True`` a CONGEST violation raises; otherwise excess messages are
        deferred and counted.
    strict_links:
        If ``True`` sending over a missing link raises; otherwise the message
        is dropped and counted as a violation.
    max_message_bits:
        Optional cap on message size; ``None`` disables the check (sizes are
        still recorded so experiments can audit them afterwards).
    seed:
        Seed for the per-node RNGs.
    allow_timeout:
        If ``True`` reaching ``max_rounds`` ends the run quietly instead of
        raising.
    """

    max_rounds: int = 100_000
    strict_congest: bool = True
    strict_links: bool = True
    max_message_bits: Optional[int] = None
    seed: Optional[int] = None
    allow_timeout: bool = False


class Simulator:
    """Synchronous message-passing simulator over a :class:`Network`."""

    def __init__(self, network: Network, config: Optional[SimulatorConfig] = None) -> None:
        self.network = network
        self.config = config or SimulatorConfig()
        self.metrics = MetricsCollector()
        self._processes: Dict[Hashable, NodeProcess] = {}
        self._rngs: Dict[Hashable, "random.Random"] = {}
        self._pending: List[Message] = []  # sent this round, delivered next round
        self._deferred: List[Message] = []  # congestion overflow (lenient mode)
        self._scheduled: Dict[int, List[Callable[["Simulator"], None]]] = defaultdict(list)
        self._root_rng = make_rng(self.config.seed)
        self._round = 0
        self._started = False

    # ----------------------------------------------------------------- setup
    def add_process(self, process: NodeProcess) -> None:
        """Register ``process`` for its node; the node must exist in the network."""
        node = process.node_id
        if not self.network.has_node(node):
            raise LinkError(f"node {node!r} is not part of the network")
        if node in self._processes:
            raise SimulationError(f"node {node!r} already has a process")
        self._processes[node] = process
        self._rngs[node] = spawn_rng(self._root_rng, label=repr(node))

    def add_processes(self, processes: Iterable[NodeProcess]) -> None:
        for process in processes:
            self.add_process(process)

    def process(self, node: Hashable) -> NodeProcess:
        return self._processes[node]

    def schedule(self, round_index: int, callback: Callable[["Simulator"], None]) -> None:
        """Register ``callback`` to run at the start of round ``round_index``.

        The callback receives the simulator and runs before that round's
        deliveries are planned, so it may inject churn: mutate the network,
        add processes (:meth:`add_process`) for joining nodes, or mark
        processes of departing nodes.  Rounds with pending events count as
        activity — the run does not quiesce while scheduled events remain.
        """
        if round_index < self._round:
            raise SimulationError(
                f"cannot schedule an event for round {round_index}; the "
                f"simulation is already at round {self._round}"
            )
        self._scheduled[round_index].append(callback)

    @property
    def processes(self) -> Dict[Hashable, NodeProcess]:
        return dict(self._processes)

    @property
    def round(self) -> int:
        return self._round

    # ------------------------------------------------------------------- run
    def run(self, max_rounds: Optional[int] = None) -> MetricsCollector:
        """Run until quiescence (all processes done, no messages in flight)."""
        limit = max_rounds if max_rounds is not None else self.config.max_rounds
        if not self._started:
            self._start_processes()
        while not self._quiescent():
            if self._round >= limit:
                if self.config.allow_timeout:
                    break
                raise SimulationError(
                    f"simulation did not terminate within {limit} rounds "
                    f"({self._in_flight()} messages in flight)"
                )
            self.step()
        return self.metrics

    def step(self) -> None:
        """Execute exactly one synchronous round."""
        if not self._started:
            self._start_processes()
        # Drain in a loop so a callback scheduling another event for the
        # *current* round still gets it executed this round.
        pending = self._scheduled.pop(self._round, [])
        while pending:
            for callback in pending:
                callback(self)
            pending = self._scheduled.pop(self._round, [])
        stats = self.metrics.start_round(self._round)

        deliveries, deferred = self._plan_deliveries(stats)
        self._pending = []
        self._deferred = deferred

        outbox_sink: List[Message] = []

        for node, process in self._processes.items():
            inbox = deliveries.get(node, [])
            if process.done and not inbox:
                continue
            ctx = RoundContext(
                node_id=node,
                round_index=self._round,
                neighbors=self.network.neighbors(node) if self.network.has_node(node) else set(),
                rng=self._rngs[node],
                send_fn=outbox_sink.append,
                report_memory_fn=self.metrics.record_memory,
            )
            process.on_round(ctx, inbox)

        for node, process in self._processes.items():
            words = process.memory_words()
            if words is not None:
                self.metrics.record_memory(node, words)

        self._validate_outbox(outbox_sink)
        self._pending.extend(outbox_sink)
        # A process handler may have scheduled an event for the round that
        # just ran (its callbacks were already drained); carry it over to the
        # next round instead of stranding it, which would block quiescence.
        leftovers = self._scheduled.pop(self._round, None)
        self._round += 1
        if leftovers:
            self._scheduled[self._round] = leftovers + self._scheduled.get(self._round, [])

    # -------------------------------------------------------------- internals
    def _start_processes(self) -> None:
        outbox_sink: List[Message] = []
        for node, process in self._processes.items():
            ctx = RoundContext(
                node_id=node,
                round_index=0,
                neighbors=self.network.neighbors(node) if self.network.has_node(node) else set(),
                rng=self._rngs[node],
                send_fn=outbox_sink.append,
                report_memory_fn=self.metrics.record_memory,
            )
            process.on_start(ctx)
        self._validate_outbox(outbox_sink)
        self._pending.extend(outbox_sink)
        self._started = True

    def _validate_outbox(self, outbox: List[Message]) -> None:
        for message in outbox:
            if self.config.max_message_bits is not None and message.size_bits > self.config.max_message_bits:
                raise MessageSizeError(
                    f"message {message.kind!r} from {message.sender!r} to "
                    f"{message.receiver!r} has {message.size_bits} bits "
                    f"(limit {self.config.max_message_bits})"
                )

    def _plan_deliveries(self, stats) -> tuple[Dict[Hashable, List[Message]], List[Message]]:
        """Decide which queued messages are delivered this round.

        Enforces the CONGEST constraint per directed link.  Returns the
        delivery map and the list of messages deferred to the next round.
        """
        deliveries: Dict[Hashable, List[Message]] = defaultdict(list)
        deferred: List[Message] = []
        used_links: Dict[tuple, int] = defaultdict(int)

        queue = self._deferred + self._pending
        for message in queue:
            sender, receiver = message.sender, message.receiver
            if not self.network.has_link(sender, receiver):
                if self.config.strict_links:
                    raise LinkError(
                        f"message {message.kind!r}: no link {sender!r} -> {receiver!r}"
                    )
                self.metrics.record_congestion(stats)
                continue
            key = (sender, receiver)
            if used_links[key] >= 1:
                if self.config.strict_congest:
                    raise CongestionError(
                        f"more than one message on link {sender!r} -> {receiver!r} "
                        f"in round {self._round}"
                    )
                self.metrics.record_congestion(stats)
                deferred.append(message)
                continue
            used_links[key] += 1
            deliveries[receiver].append(message)
            self.metrics.record_message(stats, message.size_bits)
        return deliveries, deferred

    def _in_flight(self) -> int:
        return len(self._pending) + len(self._deferred)

    def _quiescent(self) -> bool:
        if self._in_flight():
            return False
        if self._scheduled:
            return False
        return all(process.done for process in self._processes.values())

    # ------------------------------------------------------------------ query
    def results(self) -> Dict[Hashable, object]:
        """Per-node ``result`` attributes after the run."""
        return {node: process.result for node, process in self._processes.items()}
