"""The synchronous round engine.

The engine repeatedly executes *rounds*.  In each round:

1. scheduled callbacks for the round run (churn injection: network
   mutation, process joins/retirements);
2. messages enqueued during the previous round are delivered to their
   receivers' inboxes (a message sent in round ``r`` is received in round
   ``r + 1``, as in the standard synchronous model);
3. every *active* process is invoked with its inbox and may enqueue new
   messages;
4. the CONGEST constraint is checked: at most one message per directed link
   per round.  In strict mode a violation raises
   :class:`~repro.simulation.errors.CongestionError`; in lenient mode the
   excess messages are deferred FIFO to the next round and the violation is
   recorded in the metrics (useful for measuring how far a protocol is from
   conformance).

Messages may only travel over links present in the :class:`Network` at
*send time*: sending to a non-neighbour raises :class:`LinkError` (strict
links) or drops the message with a recorded drop (lenient links).  A link
that disappears while a message is in flight — churn removed it between
send and delivery — is never an error: the send was legal, so the message
is dropped and counted in ``dropped_messages`` in both modes.  Drops are
accounted separately from CONGEST violations so that conformance checks
(E11's "violations must be zero") stay meaningful under churn.

Hot path: the engine maintains an *active set* — processes that are not
``done`` plus the receivers of this round's deliveries — instead of
scanning every registered process each round.  A quiescent 4096-node
population costs nothing while a single token walks across it.

Process lifecycle (churn):

* **join** — :meth:`Simulator.add_process` after the run has started queues
  the process for :meth:`~NodeProcess.on_start` at the beginning of the
  next executed round (its initialization round), so joiners injected by
  :meth:`Simulator.schedule` callbacks are started exactly like the initial
  population.
* **retire** — :meth:`Simulator.retire` removes a process from the live
  set (its ``result`` stays readable through :meth:`results`).  Removing a
  node from the network retires its process automatically at the next
  round boundary, so runs quiesce under departures instead of waiting
  forever on a process that can no longer act.  Graceful retirement —
  explicit or auto — fires :meth:`NodeProcess.on_retire` once.
* **crash** — :meth:`Simulator.crash` is the crash-stop failure op: the
  node's links go dark immediately, in-flight messages to it become
  counted drops, its process is removed *without* the ``on_retire``
  callback, and the node is banned from re-entering (``add_process``
  rejects it).  A crash is distinguishable from a leave precisely by the
  missing goodbye.
* **recover** — :meth:`Simulator.recover` lifts the re-entry ban so a
  crashed node may rejoin as a *fresh identity* through the normal join
  path (new membership bits, new process, new links); nothing of the
  pre-crash state is restored by the engine itself.

Churn and other externally driven events are injected with
:meth:`Simulator.schedule`: a callback registered for round ``r`` runs at
the very start of that round, before deliveries, and may mutate the network
(add/remove nodes and links) and register new processes.  This is the
engine-level counterpart of the workload-level scenario schedules in
:mod:`repro.workloads.scenarios`: :func:`~repro.workloads.scenarios.replay_scenario`
translates a :class:`~repro.workloads.scenarios.Scenario`'s join/leave
events into these callbacks plus skip-graph link rewiring.

The engine stops when every live process reports ``done``, no messages are
in flight and no scheduled events or pending starts remain, or when the
round budget is exceeded (which raises ``SimulationError`` unless
``allow_timeout`` is set).  :meth:`Simulator.run` may be called again after
quiescence — installing fresh processes (after retiring the previous ones)
replays another protocol on the same engine and network, which is how the
churn arenas rerun protocols across membership changes.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from itertools import chain
from typing import Callable, Deque, Dict, Hashable, Iterable, List, Optional

from repro.simulation.errors import CongestionError, LinkError, MessageSizeError, SimulationError
from repro.simulation.message import Message
from repro.simulation.metrics import MetricsCollector, RoundStats
from repro.simulation.network import Network
from repro.simulation.node_process import NodeProcess, RoundContext
from repro.simulation.rng import make_rng, spawn_rng

__all__ = ["Simulator", "SimulatorConfig"]


@dataclass
class SimulatorConfig:
    """Configuration of a :class:`Simulator` run.

    Attributes
    ----------
    max_rounds:
        Round budget per :meth:`Simulator.run` call (safety net against
        livelock).  On a reused engine the budget applies to each call, not
        to the engine's absolute round counter.
    strict_congest:
        If ``True`` a CONGEST violation raises; otherwise excess messages are
        deferred FIFO and counted.
    strict_links:
        If ``True`` sending over a missing link raises at send time;
        otherwise the message is dropped and counted as a drop.  Links
        removed *after* a legal send drop the in-flight message in both
        modes (recorded, never raised).
    max_message_bits:
        Optional cap on message size; ``None`` disables the check (sizes are
        still recorded so experiments can audit them afterwards).
    seed:
        Seed for the per-node RNGs.
    allow_timeout:
        If ``True`` exhausting the round budget ends the run quietly instead
        of raising.
    """

    max_rounds: int = 100_000
    strict_congest: bool = True
    strict_links: bool = True
    max_message_bits: Optional[int] = None
    seed: Optional[int] = None
    allow_timeout: bool = False


class Simulator:
    """Synchronous message-passing simulator over a :class:`Network`."""

    def __init__(self, network: Network, config: Optional[SimulatorConfig] = None) -> None:
        self.network = network
        self.config = config or SimulatorConfig()
        self.metrics = MetricsCollector()
        self._processes: Dict[Hashable, NodeProcess] = {}
        self._retired: Dict[Hashable, NodeProcess] = {}
        self._rngs: Dict[Hashable, "random.Random"] = {}
        self._pending: List[Message] = []  # sent this round, delivered next round
        self._deferred: Deque[Message] = deque()  # congestion overflow (lenient mode)
        self._scheduled: Dict[int, List[Callable[["Simulator"], None]]] = defaultdict(list)
        self._root_rng = make_rng(self.config.seed)
        self._round = 0
        self._started = False
        # Ordered set of processes that are not done (the self-driven half of
        # the active set; the other half is this round's delivery receivers).
        self._not_done: Dict[Hashable, None] = {}
        # Processes added after the run started, awaiting their on_start.
        self._pending_start: List[Hashable] = []
        # Crash-stop failures: nodes killed by crash() can never re-enter.
        self._crashed: set = set()
        # Stats of the upcoming round, pre-created when a start phase needs
        # to attribute drops before the round executes (step() reuses it).
        self._current_stats: Optional[RoundStats] = None

    # ----------------------------------------------------------------- setup
    def add_process(self, process: NodeProcess) -> None:
        """Register ``process`` for its node; the node must exist in the network.

        Before the run starts the process joins the initial population and
        receives :meth:`~NodeProcess.on_start` with everyone else.  After
        the run has started (a churn join, typically from a
        :meth:`schedule` callback) the process is queued and receives
        ``on_start`` at the beginning of the next executed round — its
        initialization round — with sends delivered the round after.
        """
        node = process.node_id
        if node in self._crashed:
            raise SimulationError(f"node {node!r} crashed and cannot re-enter the simulation")
        if not self.network.has_node(node):
            raise LinkError(f"node {node!r} is not part of the network")
        if node in self._processes:
            raise SimulationError(f"node {node!r} already has a process")
        self._retired.pop(node, None)
        self._processes[node] = process
        self._rngs[node] = spawn_rng(self._root_rng, label=repr(node))
        if not process.done:
            self._not_done[node] = None
        if self._started:
            self._pending_start.append(node)

    def add_processes(self, processes: Iterable[NodeProcess]) -> None:
        for process in processes:
            self.add_process(process)

    def retire(self, node: Hashable) -> NodeProcess:
        """Remove the process of ``node`` from the live population.

        The departed process no longer counts towards quiescence and is no
        longer invoked; messages still in flight towards its node are
        dropped (and recorded) when their links disappear or when delivery
        finds no process.  Its ``result`` remains visible in
        :meth:`results`.  The node may re-join later with a fresh process.

        This is the *graceful* departure path: the departing process gets
        its :meth:`~NodeProcess.on_retire` goodbye.  Crash-stop failures go
        through :meth:`crash`, which never fires the hook.
        """
        process = self._remove_process(node)
        process.on_retire()
        return process

    def _remove_process(self, node: Hashable) -> NodeProcess:
        """Shared teardown of retire/crash: unregister without callbacks."""
        process = self._processes.pop(node, None)
        if process is None:
            raise SimulationError(f"node {node!r} has no live process to retire")
        self._not_done.pop(node, None)
        self._rngs.pop(node, None)
        if node in self._pending_start:
            # Retired before its initialization round: a later re-join must
            # not inherit the stale queue entry (it would start twice).
            self._pending_start = [queued for queued in self._pending_start if queued != node]
        self._retired[node] = process
        return process

    def crash(self, node: Hashable) -> Optional[NodeProcess]:
        """Kill ``node`` crash-stop: links dark, no goodbye, no re-entry.

        The node is marked crashed *before* it leaves the network, so the
        auto-retire sweep (:meth:`_sync_after_callbacks`) can never mistake
        it for a graceful departure and fire ``on_retire``.  All incident
        links are removed with the node; messages in flight towards it are
        dropped and counted (``dropped_messages``) at the next delivery
        plan, exactly like churn-induced losses — a crash is never a
        :class:`LinkError`.  The process's ``result`` stays readable, and
        :meth:`add_process` rejects the node until :meth:`recover` lifts
        the ban.
        """
        if node in self._crashed:
            raise SimulationError(f"node {node!r} already crashed")
        self._crashed.add(node)
        process = self._processes.get(node)
        if process is not None:
            self._remove_process(node)
        if self.network.has_node(node):
            self.network.remove_node(node)
        return process

    def recover(self, node: Hashable) -> None:
        """Lift the re-entry ban of crashed ``node``: it may rejoin *fresh*.

        Recovery is deliberately minimal — it only removes ``node`` from the
        crashed set, so the next :meth:`add_process` for it is accepted
        again.  Nothing of the pre-crash identity survives: the node is not
        re-added to the network (the caller rewires it through its normal
        join path, e.g. a ``NodeJoinOp`` with freshly drawn membership
        bits), its old process result stays in :meth:`results` only until a
        new process is registered, and a recovered node may later crash
        again.  Recovering a node that is not crashed raises — a recovery
        without a preceding crash is a driver bug, not a no-op.
        """
        if node not in self._crashed:
            raise SimulationError(f"node {node!r} is not crashed; nothing to recover")
        self._crashed.discard(node)

    def retire_all(self) -> None:
        """Retire every live process (protocol teardown on a reused engine)."""
        for node in list(self._processes):
            self.retire(node)

    def process(self, node: Hashable) -> NodeProcess:
        return self._processes[node]

    def schedule(self, round_index: int, callback: Callable[["Simulator"], None]) -> None:
        """Register ``callback`` to run at the start of round ``round_index``.

        The callback receives the simulator and runs before that round's
        deliveries are planned, so it may inject churn: mutate the network,
        add processes (:meth:`add_process`) for joining nodes, or
        :meth:`retire` processes of departing nodes (removing the node from
        the network retires its process automatically).  Rounds with pending
        events count as activity — the run does not quiesce while scheduled
        events remain.
        """
        if round_index < self._round:
            raise SimulationError(
                f"cannot schedule an event for round {round_index}; the "
                f"simulation is already at round {self._round}"
            )
        self._scheduled[round_index].append(callback)

    @property
    def processes(self) -> Dict[Hashable, NodeProcess]:
        return dict(self._processes)

    @property
    def retired(self) -> Dict[Hashable, NodeProcess]:
        """Processes retired by churn (or explicitly), keyed by node."""
        return dict(self._retired)

    @property
    def crashed(self) -> "frozenset":
        """Nodes killed by :meth:`crash`; banned from re-entry until :meth:`recover`."""
        return frozenset(self._crashed)

    @property
    def round(self) -> int:
        return self._round

    # ------------------------------------------------------------------- run
    def run(self, max_rounds: Optional[int] = None) -> MetricsCollector:
        """Run until quiescence (all processes done, no messages in flight).

        ``max_rounds`` (default: the config's) is a budget for *this call*,
        so a reused engine gets a fresh budget for every protocol replay.
        """
        budget = max_rounds if max_rounds is not None else self.config.max_rounds
        limit = self._round + budget
        if not self._started:
            self._start_processes()
        elif self._pending_start and not self._pending and not self._deferred:
            # A fresh protocol generation installed on a quiesced engine:
            # start it exactly like an initial population (on_start outside
            # the rounds, sends delivered in the next executed round), so a
            # rerun reproduces a fresh simulator round for round.
            self._start_pending_processes()
        while not self._quiescent():
            if self._round >= limit:
                if self.config.allow_timeout:
                    break
                raise SimulationError(
                    f"simulation did not terminate within {budget} rounds "
                    f"({self._in_flight()} messages in flight)"
                )
            self.step()
        return self.metrics

    def step(self) -> None:
        """Execute exactly one synchronous round."""
        if not self._started:
            self._start_processes()
        # Drain in a loop so a callback scheduling another event for the
        # *current* round still gets it executed this round.
        pending = self._scheduled.pop(self._round, [])
        ran_callbacks = bool(pending)
        while pending:
            for callback in pending:
                callback(self)
            pending = self._scheduled.pop(self._round, [])
        if ran_callbacks:
            self._sync_after_callbacks()
        if self._current_stats is not None:
            stats, self._current_stats = self._current_stats, None
        else:
            stats = self.metrics.start_round(self._round)

        deliveries, self._deferred = self._plan_deliveries(stats)
        self._pending = []

        outbox_sink: List[Message] = []

        # Initialization round of churn joiners: on_start now, sends
        # delivered next round, regular on_round from the round after.
        # A starter is never invoked twice in its first round — deliveries
        # addressed to it were already dropped by `_plan_deliveries` (they
        # were sent before the process existed).
        started_now = set()
        if self._pending_start:
            starters, self._pending_start = self._pending_start, []
            for node in starters:
                process = self._processes.get(node)
                if process is None:  # retired before it ever started
                    continue
                process.on_start(self._context(node, outbox_sink, stats))
                started_now.add(node)
                self._after_invoke(node, process)

        for node in self._active_nodes(deliveries):
            if node in started_now:
                continue
            process = self._processes.get(node)
            if process is None:
                continue
            inbox = deliveries.get(node)
            if process.done and not inbox:
                continue
            process.on_round(self._context(node, outbox_sink, stats), inbox or [])
            self._after_invoke(node, process)

        self._pending.extend(self._validate_outbox(outbox_sink, stats))
        # A process handler may have scheduled an event for the round that
        # just ran (its callbacks were already drained); carry it over to the
        # next round instead of stranding it, which would block quiescence.
        leftovers = self._scheduled.pop(self._round, None)
        self._round += 1
        if leftovers:
            self._scheduled[self._round] = leftovers + self._scheduled.get(self._round, [])

    # -------------------------------------------------------------- internals
    def _context(
        self,
        node: Hashable,
        outbox_sink: List[Message],
        stats: Optional[RoundStats] = None,
    ) -> RoundContext:
        return RoundContext(
            node_id=node,
            round_index=self._round,
            neighbors=self.network.neighbors(node) if self.network.has_node(node) else set(),
            rng=self._rngs[node],
            send_fn=outbox_sink.append,
            report_memory_fn=self.metrics.record_memory,
            report_failure_fn=lambda count=1: self.metrics.record_failure(stats, count),
        )

    def _after_invoke(self, node: Hashable, process: NodeProcess) -> None:
        if process.done:
            self._not_done.pop(node, None)
        else:
            self._not_done[node] = None
        words = process.memory_words()
        if words is not None:
            self.metrics.record_memory(node, words)

    def _active_nodes(self, deliveries: Dict[Hashable, List[Message]]) -> List[Hashable]:
        """This round's invocation list: delivery receivers, then the rest of
        the not-done set — both in deterministic (insertion) order."""
        active = list(deliveries)
        active.extend(node for node in self._not_done if node not in deliveries)
        return active

    def _sync_after_callbacks(self) -> None:
        """Re-establish invariants after churn callbacks mutated the world.

        Retires orphaned processes (their node left the network — e.g. a
        callback called ``Network.remove_node`` directly), so departures
        can never block quiescence, and rebuilds the not-done set in case a
        callback flipped ``done`` flags.  Runs only on rounds that executed
        callbacks, so the quiescent-path cost stays proportional to the
        active set.
        """
        orphans = []
        self._not_done = {}
        for node, process in self._processes.items():
            if not self.network.has_node(node):
                orphans.append(node)
            elif not process.done:
                self._not_done[node] = None
        for node in orphans:
            self.retire(node)

    def _start_processes(self) -> None:
        outbox_sink: List[Message] = []
        self._started = True
        for node, process in list(self._processes.items()):
            process.on_start(self._context(node, outbox_sink))
            self._after_invoke(node, process)
        self._pending.extend(self._validate_outbox(outbox_sink, None))

    def _start_pending_processes(self) -> None:
        """Start queued processes outside a round (rerun on a quiesced engine)."""
        outbox_sink: List[Message] = []
        starters, self._pending_start = self._pending_start, []
        for node in starters:
            process = self._processes.get(node)
            if process is None:
                continue
            process.on_start(self._context(node, outbox_sink))
            self._after_invoke(node, process)
        self._pending.extend(self._validate_outbox(outbox_sink, None))

    def _validate_outbox(self, outbox: List[Message], stats: Optional[RoundStats]) -> List[Message]:
        """Send-time validation: message size and link existence.

        Links are checked here — when the message is sent — as the model
        prescribes; a message that passes and loses its link before
        delivery is a recorded drop, never an error (see
        :meth:`_plan_deliveries`).  Returns the accepted messages.
        """
        accepted: List[Message] = []
        for message in outbox:
            if self.config.max_message_bits is not None and message.size_bits > self.config.max_message_bits:
                raise MessageSizeError(
                    f"message {message.kind!r} from {message.sender!r} to "
                    f"{message.receiver!r} has {message.size_bits} bits "
                    f"(limit {self.config.max_message_bits})"
                )
            if not self.network.has_link(message.sender, message.receiver):
                if self.config.strict_links:
                    raise LinkError(
                        f"message {message.kind!r}: no link "
                        f"{message.sender!r} -> {message.receiver!r}"
                    )
                if stats is None:
                    # Start-phase drop: attribute it to the upcoming round so
                    # MetricsCollector.window() still sees it (the stats
                    # object is reused by the next step()).
                    if self._current_stats is None:
                        self._current_stats = self.metrics.start_round(self._round)
                    stats = self._current_stats
                self.metrics.record_drop(stats)
                continue
            accepted.append(message)
        return accepted

    def _plan_deliveries(self, stats: RoundStats) -> "tuple[Dict[Hashable, List[Message]], Deque[Message]]":
        """Decide which queued messages are delivered this round.

        Enforces the CONGEST constraint per directed link, draining the
        congestion backlog FIFO (deferred messages go first, in the order
        they were deferred).  Messages whose link vanished in flight, or
        whose receiver no longer runs a process, are dropped and recorded —
        the send was validated when it happened, so churn-induced losses
        are data, not errors.  Returns the delivery map and the deque of
        messages deferred to the next round.
        """
        deliveries: Dict[Hashable, List[Message]] = {}
        deferred: Deque[Message] = deque()
        used_links = set()
        # Processes queued for their initialization round are not receivers
        # yet: a message addressed to one was sent before it existed, so it
        # drops like any other delivery to a process-less node.
        starting = set(self._pending_start)

        for message in chain(self._deferred, self._pending):
            sender, receiver = message.sender, message.receiver
            if (
                not self.network.has_link(sender, receiver)
                or receiver not in self._processes
                or receiver in starting
            ):
                self.metrics.record_drop(stats)
                continue
            key = (sender, receiver)
            if key in used_links:
                if self.config.strict_congest:
                    raise CongestionError(
                        f"more than one message on link {sender!r} -> {receiver!r} "
                        f"in round {self._round}"
                    )
                self.metrics.record_congestion(stats)
                deferred.append(message)
                continue
            used_links.add(key)
            deliveries.setdefault(receiver, []).append(message)
            self.metrics.record_message(stats, message.size_bits)
        return deliveries, deferred

    def _in_flight(self) -> int:
        return len(self._pending) + len(self._deferred)

    def _quiescent(self) -> bool:
        if self._pending or self._deferred:
            return False
        if self._scheduled or self._pending_start:
            return False
        return not self._not_done

    # ------------------------------------------------------------------ query
    def results(self) -> Dict[Hashable, object]:
        """Per-node ``result`` attributes after the run (retired included)."""
        results = {node: process.result for node, process in self._retired.items()}
        results.update((node, process.result) for node, process in self._processes.items())
        return results
