"""Messages and message-size accounting.

The CONGEST model allows messages of at most ``O(log n)`` bits.  To check
conformance empirically (experiment E11) every message carries a conservative
estimate of its payload size in bits, computed by :func:`payload_size_bits`.

The estimate charges:

* ``word_bits`` bits per integer (an integer that fits in a key/identifier/
  timestamp/level counter — i.e. one ``O(log n)``-bit word),
* 1 bit per boolean,
* 8 bits per character of a string (tags such as ``"last-node"``),
* the sum of the element costs for tuples/lists/dicts, plus one word for the
  length,
* one word for ``None`` (a type tag).

Floats are charged one word as well; protocols in this repository only ship
integers, booleans and short tags, so the estimate is tight enough for the
purpose of flagging non-constant payloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Message", "congest_budget_bits", "payload_size_bits"]

#: Number of bits charged for a single machine word (one identifier,
#: timestamp, level number, ...).  32 bits comfortably covers every value the
#: protocols ship for the network sizes exercised here, and is the constant
#: against which the ``O(log n)`` checks in E11 are normalised.
WORD_BITS = 32

#: Words allowed per message by the CONGEST budget ``c * log2(n)``: the
#: paper's constant ``c``, shared by experiment E11 and the scale benches so
#: their conformance checks can never disagree.
BUDGET_WORDS = 8


def congest_budget_bits(n: int, words: int = BUDGET_WORDS) -> int:
    """The ``c * log2(n)`` CONGEST message-size budget in bits.

    ``words`` is the constant ``c`` in machine words (:data:`WORD_BITS`
    bits each); the default is the budget E11 and the benchmark arenas
    check protocols against.
    """
    return words * WORD_BITS * max(1, math.ceil(math.log2(max(n, 2))))


def payload_size_bits(payload: Any, word_bits: int = WORD_BITS) -> int:
    """Conservatively estimate the size of ``payload`` in bits.

    See the module docstring for the charging rules.  Unknown object types
    are charged ``word_bits`` per attribute-free repr character as a safe
    upper bound; protocols should stick to plain data.
    """
    if payload is None:
        return word_bits
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return word_bits
    if isinstance(payload, float):
        return word_bits
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (list, tuple, set, frozenset)):
        return word_bits + sum(payload_size_bits(item, word_bits) for item in payload)
    if isinstance(payload, dict):
        total = word_bits
        for key, value in payload.items():
            total += payload_size_bits(key, word_bits)
            total += payload_size_bits(value, word_bits)
        return total
    # Fallback: charge by repr length, which over-counts and therefore never
    # hides a CONGEST violation.
    return 8 * len(repr(payload))


@dataclass(frozen=True)
class Message:
    """A single addressed message exchanged in one round.

    Attributes
    ----------
    sender, receiver:
        Node identifiers (any hashable; in this repository they are node
        keys, i.e. integers).
    kind:
        A short string naming the protocol message type (e.g. ``"route"``,
        ``"value"``, ``"median"``).  Counted as part of the payload size.
    payload:
        Plain-data content of the message.
    size_bits:
        Total size estimate, filled in automatically.
    """

    sender: Hashable
    receiver: Hashable
    kind: str
    payload: Any = None
    size_bits: int = field(default=0)

    def __post_init__(self) -> None:
        size = 8 * len(self.kind) + payload_size_bits(self.payload)
        object.__setattr__(self, "size_bits", size)

    def reply(self, kind: str, payload: Any = None) -> "Message":
        """Convenience constructor for a message back to the sender."""
        return Message(sender=self.receiver, receiver=self.sender, kind=kind, payload=payload)
