"""Synchronous CONGEST-model simulation substrate.

The paper (Section III, "Self-Adjusting model for Skip Graphs") assumes a
synchronous computation model in which communication occurs in rounds, and a
node can send and receive at most one message per link per round, with each
message limited to ``O(log n)`` bits (the CONGEST model).  This subpackage
provides that substrate: a round-based, message-passing discrete simulator
with explicit accounting of rounds, message sizes (in bits), per-link
congestion and churn-induced message drops (a separate counter, so
conformance checks survive churn), so that the distributed protocols in
:mod:`repro.distributed` can be executed and checked against the model's
constraints.  The engine is churn-first: processes join (``on_start`` at
their first round) and retire mid-run, scheduled callbacks rewire the
network between rounds, and the per-round cost follows the *active set*
(not-done processes plus delivery receivers) rather than the population.

Failures are first-class alongside churn: ``Simulator.crash`` kills a node
crash-stop (links dark, in-flight messages counted as drops, no
``on_retire`` goodbye, no re-entry), and protocol-level request failures
reported through ``RoundContext.report_failure`` are counted separately
from per-message drops (``failed_requests`` vs ``dropped_messages``).

Public classes
--------------
``Simulator``
    The synchronous round engine.
``NodeProcess``
    Base class for per-node protocol logic.
``Message``
    An addressed message with bit-size accounting.
``RoundContext``
    The per-round API handed to each process (send, timers, RNG).
``MetricsCollector``
    Rounds / messages / bits / congestion bookkeeping.
"""

from repro.simulation.errors import (
    CongestionError,
    LinkError,
    MessageSizeError,
    SimulationError,
)
from repro.simulation.message import Message, payload_size_bits
from repro.simulation.metrics import LinkUsage, MetricsCollector, RoundStats
from repro.simulation.network import Network
from repro.simulation.node_process import NodeProcess, RoundContext
from repro.simulation.engine import Simulator, SimulatorConfig
from repro.simulation.rng import make_rng, spawn_rng

__all__ = [
    "CongestionError",
    "LinkError",
    "LinkUsage",
    "Message",
    "MessageSizeError",
    "MetricsCollector",
    "Network",
    "NodeProcess",
    "RoundContext",
    "RoundStats",
    "SimulationError",
    "Simulator",
    "SimulatorConfig",
    "make_rng",
    "payload_size_bits",
    "spawn_rng",
]
