"""Per-node protocol processes and the round context API.

A :class:`NodeProcess` encapsulates the protocol state machine of one node.
Each round the simulator delivers the messages addressed to the node during
the previous round and calls :meth:`NodeProcess.on_round` with a
:class:`RoundContext` that exposes:

* ``ctx.send(receiver, kind, payload)`` --- enqueue one message for delivery
  next round (subject to the CONGEST per-link constraint),
* ``ctx.round`` --- the current round index,
* ``ctx.neighbors()`` --- the node's current neighbours in the network,
* ``ctx.rng`` --- a node-local deterministic RNG,
* ``ctx.report_memory(words)`` --- report the node's current state size so
  that the ``O(log n)``-memory claim can be audited (experiment E11),
* ``ctx.report_failure()`` --- declare one protocol-level request failed
  (counted as ``failed_requests``, distinct from per-message drops; used by
  the crash-stop failure arena when a route runs out of live hops).

Processes signal completion by setting :attr:`NodeProcess.done`; the
simulator stops when every process is done and no message is in flight.

``done`` doubles as the *activity* flag: the engine only invokes a done
process when its inbox is non-empty, so message-driven processes should
stay ``done = True`` while passively waiting (they are woken by delivery)
and set ``done = False`` only while they have self-driven work pending —
e.g. an outbox they stream one entry per round from.  Keeping waiters
passive is what lets the engine's active-set hot path skip them entirely.

Lifecycle under churn: a process registered after the run started (a join
injected by ``Simulator.schedule``) receives :meth:`NodeProcess.on_start`
at the beginning of its first round; a process retired by churn (its node
left the network, or ``Simulator.retire`` was called) is never invoked
again but keeps its ``result`` readable.

Graceful retirement fires :meth:`NodeProcess.on_retire` exactly once so a
protocol can hand off state; a *crash* (``Simulator.crash``) never does —
a crashed node gets no goodbye, which is the whole point of the
crash-stop failure model.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Hashable, List, Optional, Set

from repro.simulation.message import Message

__all__ = ["NodeProcess", "RoundContext"]


class RoundContext:
    """Interface a process uses to interact with the world during one round."""

    def __init__(
        self,
        node_id: Hashable,
        round_index: int,
        neighbors: Set[Hashable],
        rng: random.Random,
        send_fn: Callable[[Message], None],
        report_memory_fn: Callable[[Hashable, int], None],
        report_failure_fn: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._node_id = node_id
        self._round_index = round_index
        self._neighbors = neighbors
        self._rng = rng
        self._send_fn = send_fn
        self._report_memory_fn = report_memory_fn
        self._report_failure_fn = report_failure_fn

    @property
    def node_id(self) -> Hashable:
        return self._node_id

    @property
    def round(self) -> int:
        return self._round_index

    @property
    def rng(self) -> random.Random:
        return self._rng

    def neighbors(self) -> Set[Hashable]:
        """Current neighbours of this node in the underlying network."""
        return set(self._neighbors)

    def send(self, receiver: Hashable, kind: str, payload: Any = None) -> None:
        """Enqueue a message for delivery at the beginning of the next round."""
        self._send_fn(Message(sender=self._node_id, receiver=receiver, kind=kind, payload=payload))

    def report_memory(self, words: int) -> None:
        """Report the current size of the node's protocol state in words."""
        self._report_memory_fn(self._node_id, words)

    def report_failure(self, count: int = 1) -> None:
        """Declare ``count`` protocol-level requests failed this round."""
        if self._report_failure_fn is not None:
            self._report_failure_fn(count)


class NodeProcess:
    """Base class for protocol logic executed by one node.

    Subclasses override :meth:`on_round` (and optionally :meth:`on_start`).
    """

    def __init__(self, node_id: Hashable) -> None:
        self.node_id = node_id
        #: Set to ``True`` when the process has terminated locally.
        self.done: bool = False
        #: Optional protocol-level output collected by the caller at the end.
        self.result: Any = None

    def on_start(self, ctx: RoundContext) -> None:
        """Called once before round 0 messages are exchanged."""

    def on_retire(self) -> None:
        """Called when the node retires *gracefully* (leave, not crash).

        The engine fires this from ``Simulator.retire`` and from the
        auto-retire sweep that follows a churn callback removing the node
        from the network.  ``Simulator.crash`` deliberately skips it: a
        crashed node must not get a chance to hand off state.
        """

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        """Called every round with the messages delivered this round."""
        raise NotImplementedError

    def memory_words(self) -> Optional[int]:
        """Return the node state size in words, or ``None`` if not tracked.

        Subclasses that want automatic per-round memory auditing override
        this; the simulator calls it after every round.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(node_id={self.node_id!r}, done={self.done})"
