"""Network topology container.

A :class:`Network` is an undirected multigraph-free adjacency structure over
node identifiers.  Links may be added and removed while the simulation runs
(skip graph transformations rewire level lists), and the network remembers a
label for each link (e.g. the skip graph level it belongs to) purely for
introspection and metrics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Set, Tuple

from repro.simulation.errors import LinkError

__all__ = ["Network"]

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


def _normalize(u: NodeId, v: NodeId) -> FrozenSet[NodeId]:
    return frozenset((u, v))


class Network:
    """Undirected dynamic topology with labelled links."""

    def __init__(self) -> None:
        self._adjacency: Dict[NodeId, Set[NodeId]] = defaultdict(set)
        self._labels: Dict[FrozenSet[NodeId], Set[Hashable]] = defaultdict(set)
        self._nodes: Set[NodeId] = set()

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: NodeId) -> None:
        """Register ``node`` (idempotent)."""
        self._nodes.add(node)
        self._adjacency.setdefault(node, set())

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every link incident to it."""
        if node not in self._nodes:
            raise LinkError(f"node {node!r} is not part of the network")
        for neighbor in list(self._adjacency[node]):
            self.remove_link(node, neighbor)
        self._nodes.discard(node)
        self._adjacency.pop(node, None)

    def has_node(self, node: NodeId) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> Set[NodeId]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------ links
    def add_link(self, u: NodeId, v: NodeId, label: Hashable = None) -> None:
        """Add an undirected link between ``u`` and ``v``.

        Adding the same link twice with different labels records both labels
        but keeps a single physical link (skip graph neighbours may be
        adjacent at several levels; the CONGEST constraint in the paper is
        per *link*, and two nodes adjacent at multiple levels still exchange
        at most one message per round in our strict interpretation --- the
        more conservative reading).
        """
        if u == v:
            raise LinkError("self-links are not allowed")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._labels[_normalize(u, v)].add(label)

    def remove_link(self, u: NodeId, v: NodeId, label: Hashable = None) -> None:
        """Remove the link (or one label of it) between ``u`` and ``v``.

        With ``label=None`` the physical link is dropped regardless of how
        many labels it carried; with a label, only that label is removed and
        the physical link survives while other labels remain.  Removing a
        label the link does not carry raises :class:`LinkError` — silently
        keeping the link would let a churn rewiring bug (asking to unlink a
        level the pair is not adjacent at) go unnoticed.
        """
        key = _normalize(u, v)
        if v not in self._adjacency.get(u, set()):
            raise LinkError(f"no link between {u!r} and {v!r}")
        if label is None:
            self._labels.pop(key, None)
        else:
            labels = self._labels.get(key, set())
            if label not in labels:
                raise LinkError(
                    f"link between {u!r} and {v!r} does not carry label {label!r}"
                )
            labels.discard(label)
            if labels:
                return
            self._labels.pop(key, None)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        return v in self._adjacency.get(u, set())

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        if node not in self._nodes:
            raise LinkError(f"node {node!r} is not part of the network")
        return set(self._adjacency[node])

    def degree(self, node: NodeId) -> int:
        return len(self._adjacency.get(node, set()))

    def labels(self, u: NodeId, v: NodeId) -> Set[Hashable]:
        return set(self._labels.get(_normalize(u, v), set()))

    def edges(self) -> Iterator[Edge]:
        seen: Set[FrozenSet[NodeId]] = set()
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                key = _normalize(u, v)
                if key in seen:
                    continue
                seen.add(key)
                yield (u, v)

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    # -------------------------------------------------------------- bulk ops
    def replace_links(self, node: NodeId, new_neighbors: Iterable[NodeId], label: Hashable = None) -> None:
        """Replace all links of ``node`` carrying ``label`` with new ones."""
        for neighbor in list(self._adjacency.get(node, set())):
            key = _normalize(node, neighbor)
            if label in self._labels.get(key, set()):
                self.remove_link(node, neighbor, label=label)
        for neighbor in new_neighbors:
            if neighbor != node:
                self.add_link(node, neighbor, label=label)

    def copy(self) -> "Network":
        clone = Network()
        for node in self._nodes:
            clone.add_node(node)
        for (u, v) in self.edges():
            for label in self.labels(u, v) or {None}:
                clone.add_link(u, v, label=label)
        return clone
