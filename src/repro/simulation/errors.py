"""Exception hierarchy for the simulation substrate."""


class SimulationError(Exception):
    """Base class for all simulation-related errors."""


class LinkError(SimulationError):
    """A message was sent over a link that does not exist in the network."""


class CongestionError(SimulationError):
    """The CONGEST constraint (one message per link per direction per round)
    was violated while the simulator runs in strict mode."""


class MessageSizeError(SimulationError):
    """A message exceeded the configured maximum size in bits."""


class ProtocolError(SimulationError):
    """A protocol-level invariant was violated (unexpected message, bad
    state transition, etc.)."""
