"""Locally Self-Adjusting Skip Graphs (DSG) — reproduction library.

Reproduction of "Locally Self-Adjusting Skip Graphs" (Huq & Ghosh, ICDCS
2017).  The package implements the full stack the paper depends on — a
synchronous CONGEST simulator, skip graphs with standard routing, balanced
skip lists, approximate median finding — plus the paper's contribution, the
self-adjusting DSG algorithm, along with baselines, workload generators and
the experiment harness that validates every figure, lemma and theorem.

Quickstart
----------
>>> from repro import DynamicSkipGraph, DSGConfig
>>> dsg = DynamicSkipGraph(keys=range(1, 65), config=DSGConfig(seed=1))
>>> first = dsg.request(3, 42)     # routed over the skip graph, then adjusted
>>> repeat = dsg.request(3, 42)    # now directly linked
>>> repeat.routing_cost
0

See ``examples/`` for runnable scenarios and ``dsg-experiments run all
--quick`` for the reproduction experiments.
"""

from repro.skipgraph import (
    MembershipVector,
    SkipGraph,
    SkipGraphNode,
    build_balanced_skip_graph,
    build_skip_graph,
    build_skip_graph_from_membership,
    route,
    tree_view,
)
from repro.skiplist import BalancedSkipList, SkipList, distributed_sum
from repro.core import (
    AMFResult,
    CommunicationHistory,
    DSGConfig,
    DSGNodeState,
    DynamicSkipGraph,
    RequestResult,
    approximate_median,
    working_set_bound,
    working_set_number,
)
from repro.baselines import (
    DSGAdapter,
    DirectLinkOracle,
    OfflineStaticBaseline,
    ServingAlgorithm,
    SplayNetBaseline,
    StaticSkipGraphBaseline,
    make_comparison_algorithms,
    play_scenario,
)
from repro.workloads import WORKLOADS, generate_workload, run_scenario
from repro.analysis import (
    competitive_report,
    summarize_baseline_run,
    summarize_dsg_run,
)
from repro.experiments import EXPERIMENTS, run_experiment

__version__ = "1.0.0"

__all__ = [
    "AMFResult",
    "BalancedSkipList",
    "CommunicationHistory",
    "DSGAdapter",
    "DSGConfig",
    "DSGNodeState",
    "DirectLinkOracle",
    "DynamicSkipGraph",
    "EXPERIMENTS",
    "MembershipVector",
    "OfflineStaticBaseline",
    "RequestResult",
    "ServingAlgorithm",
    "SkipGraph",
    "SkipGraphNode",
    "SkipList",
    "SplayNetBaseline",
    "StaticSkipGraphBaseline",
    "WORKLOADS",
    "approximate_median",
    "build_balanced_skip_graph",
    "build_skip_graph",
    "build_skip_graph_from_membership",
    "competitive_report",
    "distributed_sum",
    "generate_workload",
    "make_comparison_algorithms",
    "play_scenario",
    "route",
    "run_experiment",
    "run_scenario",
    "summarize_baseline_run",
    "summarize_dsg_run",
    "tree_view",
    "working_set_bound",
    "working_set_number",
    "__version__",
]
