"""Distributed sum over a balanced skip list (paper, Appendix D).

    "Each node of the base level of the skip list forwards their number to
    the nearest neighbor that steps up to the upper level of the skip list.
    Any node receiving numbers from the neighbors from lower level computes
    the sum of the numbers and forwards the sum to the nearest neighbor
    stepping up to the upper level.  As this happens recursively at each
    level, the head node of the skip list computes the final sum in
    O(log n) rounds and then broadcasts the sum to all the nodes."

DSG uses this primitive to compute ``|g_s|``, ``|L_low|`` and ``|L_high|``
during Case 2 of the transformation (Section IV-C) and to propagate new
group-ids after a split (Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.skiplist.balanced import BalancedSkipList

__all__ = ["SumResult", "distributed_sum"]


@dataclass(frozen=True)
class SumResult:
    """Outcome of one distributed aggregation."""

    total: float
    rounds: int
    #: Partial sums held by each promoted node of the top-but-one level,
    #: mainly useful for tests and debugging.
    partials: Dict[Any, float]


def distributed_sum(skiplist: BalancedSkipList, values: Mapping[Any, float],
                    include_broadcast: bool = True) -> SumResult:
    """Aggregate ``values`` (one per base-level item) up to the root.

    Parameters
    ----------
    skiplist:
        The balanced skip list whose base level carries the values.
    values:
        Mapping from base-level item to its number.  Every base item must be
        present.
    include_broadcast:
        If ``True`` (default) the rounds needed to broadcast the total back
        to all base nodes are included, as in the paper's description.
    """
    base = skiplist.levels[0]
    missing = [item for item in base if item not in values]
    if missing:
        raise ValueError(f"missing values for items: {missing[:5]!r}")

    # Per-level aggregation: each promoted node sums its segment.
    current: Dict[Any, float] = {item: float(values[item]) for item in base}
    rounds = 0
    last_partials: Dict[Any, float] = dict(current)
    for level in range(skiplist.height - 1):
        last_partials = dict(current)
        segments = skiplist.segments(level)
        next_values: Dict[Any, float] = {}
        longest = 0
        for owner, members in segments:
            next_values[owner] = sum(current[item] for item in members)
            longest = max(longest, len(members))
        # Values travel along the segment one hop per round (pipelined sums):
        # the longest segment dominates the level's round count.
        rounds += longest
        current = next_values

    total = current[skiplist.root]
    if include_broadcast:
        rounds += skiplist.broadcast_rounds()
    return SumResult(total=total, rounds=rounds, partials=last_partials)
