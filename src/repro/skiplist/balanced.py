"""The balanced probabilistic skip list used by AMF (paper, Section V).

Construction (Algorithm 2, step 1):

* the left-most node of the base list is promoted to the next level with
  probability 1, every other node with probability ``1/a``;
* after each level is formed, nodes locally repair it so that no two
  consecutive promoted nodes are *supported* by fewer than ``a/2`` or more
  than ``2a`` nodes ("two consecutive nodes are supported by ``k`` nodes if
  they have ``k - 1`` nodes in between at the immediate lower level");
* construction stops when a level contains only the left-most node (the
  root).

The repair is implemented as a deterministic left-to-right sweep: a node
keeps its random promotion only if at least ``ceil(a/2)`` lower-level nodes
separate it from the previous promoted node, and a node is force-promoted as
soon as ``2a`` lower-level nodes have accumulated since the previous promoted
node.  The result satisfies the support bounds everywhere except possibly for
the final segment of a level (to the right of the last promoted node), which
the paper's construction tolerates as well (the right-most pair may be
under-supported when too few nodes remain).

Round accounting: each level costs one round for the promotion coin flips
plus ``max_gap`` rounds for the linear neighbour search at the new level
("nodes find their neighbors linearly from the level it stepped up"), plus a
constant number of rounds for the local repair messages.  These counts feed
the E6 benchmark (expected ``O(log n)`` rounds).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.simulation.rng import make_rng

__all__ = ["BalancedSkipList", "SupportBounds"]


@dataclass(frozen=True)
class SupportBounds:
    """Lower/upper bounds on the support between consecutive promoted nodes."""

    minimum: int
    maximum: int

    @classmethod
    def for_parameter(cls, a: int) -> "SupportBounds":
        return cls(minimum=max(1, math.ceil(a / 2)), maximum=2 * a)


class BalancedSkipList:
    """Balanced skip list over an ordered sequence of items.

    Parameters
    ----------
    items:
        The base-level items in their list order (for AMF these are the keys
        of a skip graph linked list, in key order).
    a:
        The balance parameter of the paper (also the a-balance constant).
        Must be at least 2.
    rng:
        Random source for the promotion coin flips.
    """

    #: Extra rounds charged per level for the local support repair
    #: (a constant number of neighbour exchanges, see module docstring).
    REPAIR_ROUNDS_PER_LEVEL = 2

    def __init__(self, items: Sequence[Any], a: int = 4, rng: Optional[random.Random] = None) -> None:
        if a < 2:
            raise ValueError("the balance parameter a must be at least 2")
        if not items:
            raise ValueError("cannot build a skip list over an empty list")
        if len(set(items)) != len(items):
            raise ValueError("items must be unique")
        self.a = a
        self.bounds = SupportBounds.for_parameter(a)
        self._rng = rng or make_rng()
        self.levels: List[List[Any]] = [list(items)]
        # Per constructed level: positions of the promoted nodes within the
        # level below, and the largest gap (reused by segments() and
        # broadcast_rounds() instead of re-deriving them per call).
        self._promoted_positions: List[List[int]] = []
        self._level_gaps: List[int] = []
        self.construction_rounds = 0
        self._construct()

    # ---------------------------------------------------------- construction
    def _construct(self) -> None:
        while len(self.levels[-1]) > 1:
            lower = self.levels[-1]
            upper, positions, max_gap = self._promote(lower)
            self.construction_rounds += 1 + max_gap + self.REPAIR_ROUNDS_PER_LEVEL
            self.levels.append(upper)
            self._promoted_positions.append(positions)
            self._level_gaps.append(max_gap)

    def _promote(self, lower: Sequence[Any]) -> Tuple[List[Any], List[int], int]:
        """One level of promotion with the deterministic support repair.

        Returns the promoted nodes, their positions within ``lower`` and the
        largest gap between consecutive promoted nodes (tail included) — the
        same value :meth:`_max_gap` derives, tracked for free during the
        sweep.  One coin flip is drawn per candidate regardless of the
        outcome, keeping the RNG stream identical to the reference sweep.
        """
        promoted = [lower[0]]
        positions = [0]
        gap = 0  # lower-level nodes since the previous promoted node
        max_gap = 0
        rng_random = self._rng.random
        threshold = 1.0 / self.a
        bound_max = self.bounds.maximum
        bound_min = self.bounds.minimum
        for item in lower[1:]:
            gap += 1
            wants_promotion = rng_random() < threshold
            if gap >= bound_max or (wants_promotion and gap >= bound_min):
                promoted.append(item)
                positions.append(positions[-1] + gap)
                if gap > max_gap:
                    max_gap = gap
                gap = 0
        if gap > max_gap:  # the unpromoted tail counts toward the gap bound
            max_gap = gap
        return promoted, positions, max_gap

    @staticmethod
    def _max_gap(lower: Sequence[Any], upper: Sequence[Any]) -> int:
        positions = {item: index for index, item in enumerate(lower)}
        gaps = []
        upper_positions = [positions[item] for item in upper]
        for left, right in zip(upper_positions, upper_positions[1:]):
            gaps.append(right - left)
        gaps.append(len(lower) - 1 - upper_positions[-1])
        return max(gaps) if gaps else 0

    # -------------------------------------------------------------- structure
    @property
    def height(self) -> int:
        """Number of levels (the paper's ``h`` is ``height - 1``)."""
        return len(self.levels)

    @property
    def root(self) -> Any:
        """The left-most item, sole member of the top level."""
        return self.levels[-1][0]

    @property
    def size(self) -> int:
        return len(self.levels[0])

    def level(self, index: int) -> List[Any]:
        return list(self.levels[index])

    def supports(self, level: int) -> List[int]:
        """Support counts between consecutive promoted nodes of ``level + 1``.

        ``supports(d)[i]`` is the number of level-``d`` nodes strictly after
        the ``i``-th promoted node and up to (and including) the next
        promoted node, i.e. the paper's "supported by k nodes" count.
        """
        if level + 1 >= self.height:
            return []
        lower = self.levels[level]
        upper = self.levels[level + 1]
        positions = {item: index for index, item in enumerate(lower)}
        counts = []
        upper_positions = [positions[item] for item in upper]
        for left, right in zip(upper_positions, upper_positions[1:]):
            counts.append(right - left)
        return counts

    def segments(self, level: int) -> List[Tuple[Any, List[Any]]]:
        """Partition of level ``level`` by its nearest *left* promoted node.

        Returns ``(promoted_node, members)`` pairs where ``members`` are the
        level-``level`` nodes whose nearest promoted node to the left (at
        level ``level + 1``) is ``promoted_node`` — including the promoted
        node itself.  This is exactly the set of nodes whose values are
        gathered by that promoted node in AMF's forwarding step.
        """
        lower = self.levels[level]
        if level + 1 >= self.height:
            return [(lower[0], list(lower))]
        # The promoted nodes' positions were recorded at construction; each
        # segment is one slice of the lower level (first promoted node is
        # always lower[0], so the slices cover the whole level).
        positions = self._promoted_positions[level]
        ends = positions[1:] + [len(lower)]
        return [(lower[start], lower[start:end]) for start, end in zip(positions, ends)]

    def is_support_bounded(self, ignore_tail: bool = True) -> bool:
        """Check the ``a/2 <= support <= 2a`` invariant on every level.

        With ``ignore_tail=True`` the last segment of every level (right of
        the last promoted node) is exempt from the lower bound, matching the
        construction's unavoidable short tail.
        """
        for level in range(self.height - 1):
            counts = self.supports(level)
            for count in counts:
                if count > self.bounds.maximum:
                    return False
                if count < self.bounds.minimum:
                    return False
            if not ignore_tail:
                lower = self.levels[level]
                positions = {item: index for index, item in enumerate(lower)}
                tail = len(lower) - 1 - positions[self.levels[level + 1][-1]]
                if tail > self.bounds.maximum:
                    return False
        return True

    # ------------------------------------------------------------ primitives
    def broadcast_rounds(self) -> int:
        """Rounds for the root to broadcast one word to every base node.

        The value travels down one level per round and then along each
        segment; the longest chain dominates.
        """
        per_level_gap = self._level_gaps
        return (self.height - 1) + (max(per_level_gap) if per_level_gap else 0)

    def convergecast_rounds(self) -> int:
        """Rounds for all base values to reach the root (one word per value)."""
        total = 0
        for level in range(self.height - 1):
            segment_sizes = [len(members) for _, members in self.segments(level)]
            total += max(segment_sizes) if segment_sizes else 0
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BalancedSkipList(size={self.size}, height={self.height}, a={self.a})"
