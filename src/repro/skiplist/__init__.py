"""Skip list substrate.

The paper's AMF algorithm (Section V) builds a *balanced* probabilistic skip
list over the members of a skip graph linked list and reuses that skip list
for several auxiliary computations:

* finding the approximate median priority (Algorithm 2),
* distributed sums (Appendix D) for ``|g_s|``, ``L_low`` and ``L_high``,
* broadcasting new group-ids and the approximate median.

This subpackage provides:

``SkipList``
    A classic probabilistic skip list (search structure), used by tests,
    examples and as a reference for expected search-path lengths.
``BalancedSkipList``
    The AMF construction: the left-most node is promoted with probability 1,
    every other node with probability ``1/a``, and the levels are locally
    repaired so that no two consecutive promoted nodes are supported by fewer
    than ``a/2`` or more than ``2a`` nodes.  Round costs of construction,
    broadcast and aggregation are accounted explicitly.
``distributed_sum``
    The Appendix D aggregation over a balanced skip list.
"""

from repro.skiplist.skiplist import SkipList
from repro.skiplist.balanced import BalancedSkipList, SupportBounds
from repro.skiplist.distributed_sum import SumResult, distributed_sum

__all__ = [
    "BalancedSkipList",
    "SkipList",
    "SumResult",
    "SupportBounds",
    "distributed_sum",
]
