"""A classic probabilistic skip list (Pugh 1990).

Skip graphs generalize skip lists: each skip graph node participates in one
skip list per membership-vector prefix.  The plain structure here serves as a
reference implementation for search-path-length comparisons in the examples
and tests, and mirrors the API of :class:`repro.skiplist.BalancedSkipList`
where it makes sense.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.simulation.rng import make_rng

__all__ = ["SkipList"]


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Sorted map with expected ``O(log n)`` search, insert and delete.

    Parameters
    ----------
    p:
        Promotion probability (classically 1/2; the AMF construction uses
        ``1/a``).
    rng:
        Deterministic random source.
    """

    def __init__(self, p: float = 0.5, rng: Optional[random.Random] = None, max_level: int = 32) -> None:
        if not 0 < p < 1:
            raise ValueError("promotion probability must be in (0, 1)")
        self._p = p
        self._rng = rng or make_rng()
        self._max_level = max_level
        self._head = _Node(None, None, max_level)
        self._level = 1
        self._size = 0

    # ------------------------------------------------------------------ size
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def height(self) -> int:
        """Number of levels currently in use."""
        return self._level

    # --------------------------------------------------------------- lookups
    def _find_predecessors(self, key: Any) -> Tuple[List[_Node], int]:
        """Return per-level predecessors of ``key`` and the comparisons made."""
        update: List[_Node] = [self._head] * self._max_level
        node = self._head
        comparisons = 0
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
                comparisons += 1
            update[level] = node
        return update, comparisons

    def search(self, key: Any) -> Any:
        """Return the value stored under ``key``; raise ``KeyError`` if absent."""
        update, _ = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        raise KeyError(key)

    def __contains__(self, key: Any) -> bool:
        try:
            self.search(key)
        except KeyError:
            return False
        return True

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            return self.search(key)
        except KeyError:
            return default

    def search_path_length(self, key: Any) -> int:
        """Number of horizontal moves made while searching ``key``."""
        _, comparisons = self._find_predecessors(key)
        return comparisons

    # --------------------------------------------------------------- updates
    def _random_level(self) -> int:
        level = 1
        while self._rng.random() < self._p and level < self._max_level:
            level += 1
        return level

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` (replacing its value if already present)."""
        update, _ = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._size += 1

    def delete(self, key: Any) -> None:
        """Remove ``key``; raise ``KeyError`` if absent."""
        update, _ = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is None or candidate.key != key:
            raise KeyError(key)
        for i in range(len(candidate.forward)):
            if update[i].forward[i] is candidate:
                update[i].forward[i] = candidate.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1

    # ------------------------------------------------------------- iteration
    def keys(self) -> Iterator[Any]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key
            node = node.forward[0]

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    @classmethod
    def from_items(cls, items: Iterable[Tuple[Any, Any]], p: float = 0.5,
                   rng: Optional[random.Random] = None) -> "SkipList":
        instance = cls(p=p, rng=rng)
        for key, value in items:
            instance.insert(key, value)
        return instance
