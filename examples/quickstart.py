#!/usr/bin/env python3
"""Quickstart: a self-adjusting skip graph in a dozen lines.

Builds a 64-node Dynamic Skip Graph, routes a few requests, and shows the
effect of self-adjustment: once a pair has communicated, it is directly
linked and subsequent requests between the two cost no intermediate hops.

Run with::

    python examples/quickstart.py
"""

from repro import DSGConfig, DynamicSkipGraph


def main() -> None:
    dsg = DynamicSkipGraph(keys=range(1, 65), config=DSGConfig(seed=42))
    print(f"built {dsg.n}-node skip graph, height {dsg.height()}")

    first = dsg.request(3, 58)
    print(
        f"request (3, 58): routed over {first.routing_cost} intermediate nodes, "
        f"then adjusted in {first.transformation_rounds} rounds "
        f"(working set number {first.working_set_number})"
    )

    second = dsg.request(3, 58)
    print(
        f"request (3, 58) again: {second.routing_cost} intermediate nodes "
        f"(directly linked: {dsg.are_adjacent(3, 58)})"
    )

    # A small cluster of nodes that keep talking to each other.
    cluster = [3, 58, 17, 40]
    for _ in range(10):
        for i, u in enumerate(cluster):
            dsg.request(u, cluster[(i + 1) % len(cluster)])
    distances = {
        (u, v): dsg.routing_distance(u, v)
        for i, u in enumerate(cluster)
        for v in cluster[i + 1 :]
    }
    print("\nafter the cluster kept communicating, intra-cluster distances are:")
    for (u, v), distance in distances.items():
        print(f"  d({u:>2}, {v:>2}) = {distance}")
    print(f"\naverage cost per request so far (Eq. 1): {dsg.average_cost():.1f} rounds")
    print(f"working set bound WS(sigma) of the history: {dsg.working_set_bound():.1f}")
    print(f"skip graph height is still {dsg.height()} (O(log n))")


if __name__ == "__main__":
    main()
