#!/usr/bin/env python3
"""Quickstart: a self-adjusting skip graph in a dozen lines.

Builds a 64-node Dynamic Skip Graph, routes a few requests, and shows the
effect of self-adjustment: once a pair has communicated, it is directly
linked and subsequent requests between the two cost no intermediate hops.

Run with::

    python examples/quickstart.py

``EXAMPLES_QUICK=1`` shrinks the instance (the CI smoke shape).
"""

import os

from repro import DSGConfig, DynamicSkipGraph

QUICK = os.environ.get("EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    n = 24 if QUICK else 64
    dsg = DynamicSkipGraph(keys=range(1, n + 1), config=DSGConfig(seed=42))
    print(f"built {dsg.n}-node skip graph, height {dsg.height()}")

    u, v = 3, n - 6
    first = dsg.request(u, v)
    print(
        f"request ({u}, {v}): routed over {first.routing_cost} intermediate nodes, "
        f"then adjusted in {first.transformation_rounds} rounds "
        f"(working set number {first.working_set_number})"
    )

    second = dsg.request(u, v)
    print(
        f"request ({u}, {v}) again: {second.routing_cost} intermediate nodes "
        f"(directly linked: {dsg.are_adjacent(u, v)})"
    )

    # A small cluster of nodes that keep talking to each other.
    cluster = [u, v, n // 4, 2 * n // 3]
    for _ in range(3 if QUICK else 10):
        for i, u in enumerate(cluster):
            dsg.request(u, cluster[(i + 1) % len(cluster)])
    distances = {
        (u, v): dsg.routing_distance(u, v)
        for i, u in enumerate(cluster)
        for v in cluster[i + 1 :]
    }
    print("\nafter the cluster kept communicating, intra-cluster distances are:")
    for (u, v), distance in distances.items():
        print(f"  d({u:>2}, {v:>2}) = {distance}")
    print(f"\naverage cost per request so far (Eq. 1): {dsg.average_cost():.1f} rounds")
    print(f"working set bound WS(sigma) of the history: {dsg.working_set_bound():.1f}")
    print(f"skip graph height is still {dsg.height()} (O(log n))")


if __name__ == "__main__":
    main()
