#!/usr/bin/env python3
"""Data-center scenario: self-adjusting overlay for VM-to-VM traffic.

The paper's conclusion motivates DSG with "VM migration problem in data
centers with levels such as rack-level, intra- and inter-data-center level":
traffic between virtual machines is heavily clustered (applications talk
within their own tier group), and a self-adjusting overlay moves chatty VMs
close to each other without any central coordinator.

This example models 96 VMs whose traffic is 90% intra-application
(community workload), serves the same trace on

* a static skip graph (what a locality-oblivious overlay does),
* the offline-optimal static skip graph (needs the full trace in advance),
* DSG (adjusts online, no knowledge of the future),

and prints the routing-cost comparison plus DSG's transformation overhead.

Run with::

    python examples/datacenter_vm_traffic.py

``EXAMPLES_QUICK=1`` shrinks the instance (the CI smoke shape).
"""

import os

from repro import (
    DSGConfig,
    DynamicSkipGraph,
    OfflineStaticBaseline,
    StaticSkipGraphBaseline,
    generate_workload,
    summarize_baseline_run,
    summarize_dsg_run,
)
from repro.analysis.tables import Table
from repro.core.working_set import working_set_bound
from repro.simulation.rng import make_rng


QUICK = os.environ.get("EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    vm_count, length, communities = (48, 150, 6) if QUICK else (96, 600, 12)
    vms = list(range(1, vm_count + 1))
    # Application groups of 8 VMs each; 95% of the traffic stays inside a
    # group (the rack/application locality the paper's conclusion describes).
    trace = generate_workload(
        "community", vms, length=length, seed=7, communities=communities,
        intra_probability=0.95,
    )

    dsg = DynamicSkipGraph(keys=vms, config=DSGConfig(seed=7))
    dsg.run_sequence(trace)
    dsg_summary = summarize_dsg_run(dsg, name="DSG (online)")

    static = StaticSkipGraphBaseline(vms, topology="random", rng=make_rng(7))
    static_summary = summarize_baseline_run(static.serve(trace))

    offline = OfflineStaticBaseline(vms, trace, rng=make_rng(7))
    offline_summary = summarize_baseline_run(offline.serve(trace))

    table = Table(
        title=f"VM-to-VM overlay routing cost ({len(trace)} requests, {communities} application groups)",
        columns=["overlay", "avg routing", "steady-state avg", "worst routing"],
    )
    for summary in (static_summary, offline_summary, dsg_summary):
        table.add_row(summary.name, summary.average_routing, summary.routing_tail(0.5), summary.max_routing)
    table.add_note(f"working set bound per request: {working_set_bound(trace, len(vms)) / len(trace):.2f}")
    table.add_note(
        f"DSG adjustment overhead: {dsg_summary.average_adjustment:.1f} rounds per request "
        f"(height stayed at {dsg.height()}, {dsg.dummy_count()} dummy nodes)"
    )
    print(table.render())

    speedup = static_summary.average_routing / max(dsg_summary.routing_tail(0.5), 1e-9)
    print(f"\nsteady-state routing speed-up of DSG over the oblivious overlay: {speedup:.1f}x")


if __name__ == "__main__":
    main()
