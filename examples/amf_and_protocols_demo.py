#!/usr/bin/env python3
"""AMF and the CONGEST protocols, stand-alone.

DSG's transformation is built on a handful of distributed primitives:
the balanced skip list, approximate median finding (AMF, Algorithm 2),
distributed sums (Appendix D) and list broadcasts.  This example runs each
primitive both structurally and as a message-passing protocol on the
synchronous CONGEST simulator, and prints the round counts and the maximum
message size in bits — the quantities the paper's model constrains.

Run with::

    python examples/amf_and_protocols_demo.py

``EXAMPLES_QUICK=1`` shrinks the instance (the CI smoke shape).
"""

import math
import os

from repro import BalancedSkipList, approximate_median, build_balanced_skip_graph, distributed_sum
from repro.analysis.tables import Table
from repro.distributed import (
    run_amf_protocol,
    run_list_broadcast,
    run_routing_protocol,
    run_sum_protocol,
)
from repro.simulation.rng import make_rng


QUICK = os.environ.get("EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    n = 48 if QUICK else 128
    a = 4
    rng = make_rng(1)
    values = {i: float(rng.randrange(1000)) for i in range(1, n + 1)}

    # --- structural primitives -------------------------------------------------
    amf = approximate_median(values, a=a, rng=make_rng(2))
    exact = sorted(values.values())[n // 2]
    print(f"AMF over {n} values: approximate median {amf.median:.0f} (exact {exact:.0f}), "
          f"rank interval [{amf.rank_low}, {amf.rank_high}] vs tolerance n/2 +- {n/(2*a):.0f}, "
          f"{amf.rounds} rounds")

    skiplist = BalancedSkipList(list(values), a=a, rng=make_rng(3))
    total = distributed_sum(skiplist, values)
    print(f"distributed sum: {total.total:.0f} (exact {sum(values.values()):.0f}) in {total.rounds} rounds "
          f"over a skip list of height {skiplist.height}")

    # --- message-level protocols ----------------------------------------------
    graph = build_balanced_skip_graph(range(1, n + 1))
    routing = run_routing_protocol(graph, 1, n, seed=4)
    broadcast = run_list_broadcast(list(range(1, n + 1)), initiator=1, seed=4)
    sum_protocol = run_sum_protocol(skiplist, values, seed=4)
    amf_protocol = run_amf_protocol(values, a=a, seed=4)

    budget_bits = 8 * 32 * math.ceil(math.log2(n))
    table = Table(
        title=f"Message-level protocols on the CONGEST simulator (n={n})",
        columns=["protocol", "rounds", "messages", "max message bits", "budget bits", "congestion violations"],
    )
    table.add_row("skip graph routing", routing.rounds, routing.messages,
                  routing.max_message_bits, budget_bits, routing.congestion_violations)
    table.add_row("list broadcast", broadcast.rounds, broadcast.messages,
                  broadcast.max_message_bits, budget_bits, broadcast.congestion_violations)
    table.add_row("distributed sum", sum_protocol.rounds, sum_protocol.messages,
                  sum_protocol.max_message_bits, budget_bits, sum_protocol.congestion_violations)
    table.add_row("AMF", amf_protocol.rounds, amf_protocol.messages,
                  amf_protocol.max_message_bits, budget_bits, amf_protocol.congestion_violations)
    print()
    print(table.render())


if __name__ == "__main__":
    main()
