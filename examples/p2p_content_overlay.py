#!/usr/bin/env python3
"""Peer-to-peer scenario: popularity-skewed lookups with peer churn.

Skip graphs are a peer-to-peer overlay; this example exercises DSG the way a
P2P content network would: lookups follow a Zipf popularity distribution
(a few publishers receive most of the traffic), peers join and leave while
the system runs (Section IV-G), and we compare against SplayNet — the
self-adjusting single-BST overlay the paper cites as closest prior work.

Run with::

    python examples/p2p_content_overlay.py

``EXAMPLES_QUICK=1`` shrinks the instance (the CI smoke shape).
"""

import os

from repro import (
    DSGConfig,
    DynamicSkipGraph,
    SplayNetBaseline,
    generate_workload,
    summarize_baseline_run,
    summarize_dsg_run,
)
from repro.analysis.tables import Table


QUICK = os.environ.get("EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    peer_count, length = (40, 120) if QUICK else (80, 500)
    peers = list(range(1, peer_count + 1))
    trace = generate_workload("zipf", peers, length=length, seed=11, exponent=1.3)

    dsg = DynamicSkipGraph(keys=peers, config=DSGConfig(seed=11))
    splaynet = SplayNetBaseline(peers)

    # Serve the first half of the trace.
    half = len(trace) // 2
    dsg.run_sequence(trace[:half])
    splay_run_first = splaynet.serve(trace[:half])

    # Churn: a batch of peers leaves, the same number joins (Section IV-G).
    departures = 4 if QUICK else 10
    leaving = peers[4::8][:departures]
    joining = list(range(200, 200 + len(leaving)))
    for peer in leaving:
        dsg.remove_node(peer)
    for peer in joining:
        dsg.add_node(peer)
    print(f"after churn: {dsg.n} peers, height {dsg.height()}, structure valid: {dsg.graph.is_valid()}")

    # Serve the second half, remapping requests that touch departed peers.
    alive = set(dsg.graph.real_keys)
    remapped = []
    replacements = {old: new for old, new in zip(leaving, joining)}
    for u, v in trace[half:]:
        u = replacements.get(u, u)
        v = replacements.get(v, v)
        if u in alive and v in alive and u != v:
            remapped.append((u, v))
    dsg.run_sequence(remapped)

    dsg_summary = summarize_dsg_run(dsg, name="DSG")
    splay_summary = summarize_baseline_run(splay_run_first)

    table = Table(
        title="P2P lookups under Zipf popularity (with churn for DSG)",
        columns=["overlay", "requests", "avg routing", "steady-state avg"],
    )
    table.add_row("DSG", dsg_summary.requests, dsg_summary.average_routing, dsg_summary.routing_tail(0.4))
    table.add_row("SplayNet (first half, no churn)", splay_summary.requests,
                  splay_summary.average_routing, splay_summary.routing_tail(0.4))
    table.add_note("SplayNet has no node join/leave procedure, so it only serves the pre-churn half.")
    print(table.render())

    hot = sorted({u for u, _ in trace[:50]})[:4]
    print("\nrouting distance between the four most popular publishers after adaptation:")
    for i, u in enumerate(hot):
        for v in hot[i + 1:]:
            if u in alive and v in alive:
                print(f"  d({u}, {v}) = {dsg.routing_distance(u, v)}")


if __name__ == "__main__":
    main()
