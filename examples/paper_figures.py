#!/usr/bin/env python3
"""Recreate the paper's worked figures in the terminal.

* Fig. 1 — the 6-node skip graph and its binary-tree-of-lists view,
* Fig. 2 — the access pattern and its working set number,
* Fig. 4 — the S8 skip graph, the (U, V) request at t = 8 and the resulting
  S9 topology with its merged group.

Run with::

    python examples/paper_figures.py
"""

from repro import build_skip_graph_from_membership, tree_view
from repro.core.working_set import working_set_numbers
from repro.skipgraph.tree_view import render_tree
from repro.workloads import fig2_access_pattern, fig4_setup
from repro.workloads.paper_examples import FIG4_KEYS


def figure_1() -> None:
    print("=" * 70)
    print("Fig. 1 — a skip graph with 6 nodes, as a binary tree of linked lists")
    print("=" * 70)
    graph = build_skip_graph_from_membership(
        {"A": "00", "J": "00", "M": "01", "G": "10", "W": "10", "R": "11"}
    )
    print(render_tree(tree_view(graph)))
    print()


def figure_2() -> None:
    print("=" * 70)
    print("Fig. 2 — working set number of the final (u, v) request")
    print("=" * 70)
    pattern = fig2_access_pattern()
    numbers = working_set_numbers(pattern, total_nodes=50)
    for index, (request, number) in enumerate(zip(pattern, numbers), start=1):
        marker = "  <-- working set number 5" if index == len(pattern) else ""
        print(f"  t={index}: {request[0]} <-> {request[1]}   T = {number}{marker}")
    print()


def figure_4() -> None:
    print("=" * 70)
    print("Fig. 4 — the S8 -> S9 transformation for the (U, V) request at t=8")
    print("=" * 70)
    letters = {value: letter for letter, value in FIG4_KEYS.items()}

    dsg = fig4_setup()
    print("S8 (before):")
    print(render_tree(tree_view(dsg.graph)))

    result = dsg.request(FIG4_KEYS["U"], FIG4_KEYS["V"])
    print("\nS9 (after the request):")
    print(render_tree(tree_view(dsg.graph)))
    print(f"\nU and V are directly linked: {dsg.are_adjacent(FIG4_KEYS['U'], FIG4_KEYS['V'])}")
    print(f"transformation took {result.transformation_rounds} rounds over {result.levels_rebuilt} levels")
    merged = [letters[k] for k in dsg.graph.list_of(FIG4_KEYS["U"], 1) if not dsg.graph.node(k).is_dummy]
    print(f"merged group in the 0-subgraph at level 1: {sorted(merged)}")


if __name__ == "__main__":
    figure_1()
    figure_2()
    figure_4()
