"""Tests for the balanced skip list and the distributed sum (Appendix D)."""

import pytest

from repro.skiplist import BalancedSkipList, SupportBounds, distributed_sum
from repro.simulation.rng import make_rng


class TestSupportBounds:
    def test_for_parameter(self):
        bounds = SupportBounds.for_parameter(4)
        assert bounds.minimum == 2
        assert bounds.maximum == 8

    def test_small_a(self):
        bounds = SupportBounds.for_parameter(2)
        assert bounds.minimum == 1
        assert bounds.maximum == 4


class TestConstruction:
    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            BalancedSkipList([], a=4)
        with pytest.raises(ValueError):
            BalancedSkipList([1, 1, 2], a=4)
        with pytest.raises(ValueError):
            BalancedSkipList([1, 2, 3], a=1)

    def test_single_item(self):
        sl = BalancedSkipList([7], a=4, rng=make_rng(0))
        assert sl.height == 1
        assert sl.root == 7
        assert sl.size == 1

    def test_base_level_preserved(self):
        items = list(range(100))
        sl = BalancedSkipList(items, a=4, rng=make_rng(1))
        assert sl.level(0) == items

    def test_root_is_leftmost(self):
        sl = BalancedSkipList(list(range(50)), a=3, rng=make_rng(2))
        assert sl.root == 0
        assert sl.levels[-1] == [0]

    def test_levels_shrink(self):
        sl = BalancedSkipList(list(range(200)), a=4, rng=make_rng(3))
        sizes = [len(level) for level in sl.levels]
        assert all(later <= earlier for earlier, later in zip(sizes, sizes[1:]))
        assert sizes[-1] == 1

    def test_height_is_logarithmic(self):
        for n in (64, 256, 1024):
            sl = BalancedSkipList(list(range(n)), a=4, rng=make_rng(n))
            # Support >= a/2 = 2 per promoted node gives height <= log2(n) + 2.
            assert sl.height <= 2 + 2 * (n.bit_length())

    def test_support_bounds_hold(self):
        for seed in range(5):
            sl = BalancedSkipList(list(range(300)), a=4, rng=make_rng(seed))
            assert sl.is_support_bounded()

    def test_construction_rounds_positive_and_bounded(self):
        sl = BalancedSkipList(list(range(256)), a=4, rng=make_rng(9))
        assert sl.construction_rounds > 0
        # Each level costs at most 1 + 2a + repair rounds; O(log n) levels.
        assert sl.construction_rounds <= (sl.height - 1) * (1 + 8 + sl.REPAIR_ROUNDS_PER_LEVEL)

    def test_segments_partition_level(self):
        sl = BalancedSkipList(list(range(120)), a=4, rng=make_rng(4))
        for level in range(sl.height - 1):
            segments = sl.segments(level)
            covered = [item for _, members in segments for item in members]
            assert covered == sl.level(level)
            owners = [owner for owner, _ in segments]
            assert owners == sl.level(level + 1)

    def test_supports_match_segments(self):
        sl = BalancedSkipList(list(range(64)), a=4, rng=make_rng(5))
        supports = sl.supports(0)
        assert all(count >= 1 for count in supports)
        assert sum(supports) <= len(sl.level(0))


class TestPrimitives:
    def test_broadcast_rounds_positive(self):
        sl = BalancedSkipList(list(range(100)), a=4, rng=make_rng(6))
        assert sl.broadcast_rounds() >= sl.height - 1

    def test_convergecast_rounds_positive(self):
        sl = BalancedSkipList(list(range(100)), a=4, rng=make_rng(6))
        assert sl.convergecast_rounds() >= sl.height - 1


class TestDistributedSum:
    def test_sum_correct(self):
        items = list(range(1, 101))
        sl = BalancedSkipList(items, a=4, rng=make_rng(7))
        result = distributed_sum(sl, {item: item for item in items})
        assert result.total == sum(items)

    def test_sum_with_weights(self):
        items = list(range(50))
        sl = BalancedSkipList(items, a=3, rng=make_rng(8))
        values = {item: (1.0 if item % 2 else 0.0) for item in items}
        result = distributed_sum(sl, values)
        assert result.total == 25.0

    def test_missing_value_rejected(self):
        items = list(range(10))
        sl = BalancedSkipList(items, a=4, rng=make_rng(9))
        with pytest.raises(ValueError):
            distributed_sum(sl, {item: 1 for item in items[:-1]})

    def test_rounds_are_logarithmic(self):
        items = list(range(512))
        sl = BalancedSkipList(items, a=4, rng=make_rng(10))
        result = distributed_sum(sl, {item: 1 for item in items})
        # Per level the longest segment is at most 2a + 1; O(log n) levels.
        assert result.rounds <= (sl.height - 1) * (2 * 4 + 1) + sl.broadcast_rounds()

    def test_rounds_exclude_broadcast_when_requested(self):
        items = list(range(64))
        sl = BalancedSkipList(items, a=4, rng=make_rng(11))
        with_broadcast = distributed_sum(sl, {item: 1 for item in items})
        without = distributed_sum(sl, {item: 1 for item in items}, include_broadcast=False)
        assert without.rounds < with_broadcast.rounds

    def test_partials_cover_total(self):
        items = list(range(30))
        sl = BalancedSkipList(items, a=4, rng=make_rng(12))
        result = distributed_sum(sl, {item: 1 for item in items})
        assert sum(result.partials.values()) == 30
