"""Tests for the classic probabilistic skip list."""

import pytest

from repro.skiplist import SkipList
from repro.simulation.rng import make_rng


@pytest.fixture
def populated():
    sl = SkipList(rng=make_rng(1))
    for key in range(0, 100, 2):
        sl.insert(key, key * 10)
    return sl


class TestBasics:
    def test_len_and_bool(self):
        sl = SkipList(rng=make_rng(0))
        assert len(sl) == 0 and not sl
        sl.insert(1, "a")
        assert len(sl) == 1 and sl

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SkipList(p=0.0)
        with pytest.raises(ValueError):
            SkipList(p=1.0)

    def test_search_found_and_missing(self, populated):
        assert populated.search(42) == 420
        with pytest.raises(KeyError):
            populated.search(43)

    def test_contains_and_get(self, populated):
        assert 42 in populated
        assert 43 not in populated
        assert populated.get(43, "default") == "default"

    def test_insert_replaces_value(self, populated):
        populated.insert(42, "new")
        assert populated.search(42) == "new"
        assert len(populated) == 50

    def test_delete(self, populated):
        populated.delete(42)
        assert 42 not in populated
        assert len(populated) == 49

    def test_delete_missing_raises(self, populated):
        with pytest.raises(KeyError):
            populated.delete(43)

    def test_keys_sorted(self, populated):
        keys = list(populated.keys())
        assert keys == sorted(keys)
        assert len(keys) == 50

    def test_items(self, populated):
        items = dict(populated.items())
        assert items[10] == 100

    def test_from_items(self):
        sl = SkipList.from_items([(3, "c"), (1, "a"), (2, "b")], rng=make_rng(5))
        assert list(sl.keys()) == [1, 2, 3]


class TestComplexity:
    def test_height_grows_logarithmically(self):
        sl = SkipList(rng=make_rng(7))
        for key in range(512):
            sl.insert(key)
        # Expected height ~ log2(512) = 9; allow generous slack.
        assert sl.height <= 4 * 9

    def test_search_path_is_short_on_average(self):
        sl = SkipList(rng=make_rng(11))
        n = 256
        for key in range(n):
            sl.insert(key)
        average = sum(sl.search_path_length(key) for key in range(n)) / n
        assert average <= 4 * 8  # ~ O(log n) with the p=1/2 constant

    def test_delete_shrinks_height_eventually(self):
        sl = SkipList(rng=make_rng(3))
        for key in range(64):
            sl.insert(key)
        for key in range(1, 64):
            sl.delete(key)
        assert len(sl) == 1
        assert sl.height <= 8
