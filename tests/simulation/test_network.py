"""Unit tests for the dynamic network topology container."""

import pytest

from repro.simulation import Network
from repro.simulation.errors import LinkError


@pytest.fixture
def triangle():
    net = Network()
    net.add_link(1, 2, label="level0")
    net.add_link(2, 3, label="level0")
    net.add_link(1, 3, label="level1")
    return net


class TestNodes:
    def test_add_node_idempotent(self):
        net = Network()
        net.add_node("a")
        net.add_node("a")
        assert len(net) == 1

    def test_contains(self):
        net = Network()
        net.add_node(5)
        assert 5 in net
        assert 6 not in net

    def test_remove_node_drops_incident_links(self, triangle):
        triangle.remove_node(2)
        assert not triangle.has_node(2)
        assert not triangle.has_link(1, 2)
        assert triangle.has_link(1, 3)

    def test_remove_missing_node_raises(self):
        net = Network()
        with pytest.raises(LinkError):
            net.remove_node(42)


class TestLinks:
    def test_add_link_registers_nodes(self):
        net = Network()
        net.add_link("x", "y")
        assert net.has_node("x") and net.has_node("y")
        assert net.has_link("x", "y") and net.has_link("y", "x")

    def test_self_link_rejected(self):
        net = Network()
        with pytest.raises(LinkError):
            net.add_link(1, 1)

    def test_remove_link(self, triangle):
        triangle.remove_link(1, 2)
        assert not triangle.has_link(1, 2)

    def test_remove_missing_link_raises(self, triangle):
        with pytest.raises(LinkError):
            triangle.remove_link(1, 99)

    def test_neighbors(self, triangle):
        assert triangle.neighbors(1) == {2, 3}
        assert triangle.degree(1) == 2

    def test_neighbors_of_unknown_node_raises(self, triangle):
        with pytest.raises(LinkError):
            triangle.neighbors(99)

    def test_labels_accumulate(self):
        net = Network()
        net.add_link(1, 2, label="level0")
        net.add_link(1, 2, label="level1")
        assert net.labels(1, 2) == {"level0", "level1"}

    def test_remove_single_label_keeps_link(self):
        net = Network()
        net.add_link(1, 2, label="level0")
        net.add_link(1, 2, label="level1")
        net.remove_link(1, 2, label="level0")
        assert net.has_link(1, 2)
        net.remove_link(1, 2, label="level1")
        assert not net.has_link(1, 2)

    def test_remove_unknown_label_raises(self):
        net = Network()
        net.add_link(1, 2, label="level0")
        with pytest.raises(LinkError):
            net.remove_link(1, 2, label="level7")
        assert net.has_link(1, 2)  # the failed removal left the link intact
        net.remove_link(1, 2)  # label=None still removes unconditionally
        assert not net.has_link(1, 2)

    def test_edge_count(self, triangle):
        assert triangle.edge_count() == 3
        assert len(list(triangle.edges())) == 3

    def test_replace_links(self):
        net = Network()
        net.add_link(1, 2, label="L")
        net.add_link(1, 3, label="L")
        net.add_node(4)
        net.replace_links(1, [4], label="L")
        assert net.neighbors(1) == {4}

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_link(1, 2)
        assert triangle.has_link(1, 2)
        assert not clone.has_link(1, 2)
        assert clone.labels(2, 3) == {"level0"}
