"""Unit and integration tests for the synchronous CONGEST engine."""

from typing import List

import pytest

from repro.simulation import (
    CongestionError,
    LinkError,
    Message,
    MessageSizeError,
    Network,
    NodeProcess,
    RoundContext,
    Simulator,
    SimulatorConfig,
)
from repro.simulation.errors import SimulationError


def line_network(n: int) -> Network:
    net = Network()
    for i in range(n - 1):
        net.add_link(i, i + 1, label="line")
    return net


class TokenForwarder(NodeProcess):
    """Forwards a token to the right neighbour; the last node keeps it."""

    def __init__(self, node_id, n, start=False):
        super().__init__(node_id)
        self.n = n
        self.start = start
        if not start:
            self.done = True  # passive until a token arrives

    def on_start(self, ctx: RoundContext) -> None:
        if self.start:
            ctx.send(self.node_id + 1, "token", payload=self.node_id)
            self.done = True

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for msg in inbox:
            if msg.kind != "token":
                continue
            if self.node_id == self.n - 1:
                self.result = msg.payload
                self.done = True
            else:
                ctx.send(self.node_id + 1, "token", payload=msg.payload)
                self.done = True


class Chatterbox(NodeProcess):
    """Sends two messages over the same link in one round (CONGEST violation)."""

    def on_start(self, ctx: RoundContext) -> None:
        ctx.send(1, "a")
        ctx.send(1, "b")
        self.done = True

    def on_round(self, ctx, inbox):
        self.done = True


class Sink(NodeProcess):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: List[Message] = []
        self.done = True

    def on_round(self, ctx, inbox):
        self.received.extend(inbox)
        self.done = True


class TestTokenPassing:
    def test_token_reaches_last_node_in_n_minus_1_rounds(self):
        n = 6
        net = line_network(n)
        sim = Simulator(net)
        sim.add_process(TokenForwarder(0, n, start=True))
        for i in range(1, n):
            sim.add_process(TokenForwarder(i, n))
        metrics = sim.run()
        assert sim.process(n - 1).result == 0
        # one hop per round: the token crosses n-1 links in n-1 rounds
        assert metrics.rounds == n - 1
        assert metrics.total_messages == n - 1

    def test_metrics_summary_keys(self):
        n = 3
        net = line_network(n)
        sim = Simulator(net)
        sim.add_process(TokenForwarder(0, n, start=True))
        for i in range(1, n):
            sim.add_process(TokenForwarder(i, n))
        summary = sim.run().summary()
        for key in ("rounds", "messages", "bits", "max_message_bits", "congestion_violations"):
            assert key in summary
        assert summary["congestion_violations"] == 0


class TestCongestEnforcement:
    def test_strict_mode_raises_on_double_send(self):
        net = Network()
        net.add_link(0, 1)
        sim = Simulator(net, SimulatorConfig(strict_congest=True))
        sim.add_process(Chatterbox(0))
        sim.add_process(Sink(1))
        with pytest.raises(CongestionError):
            sim.run()

    def test_lenient_mode_defers_and_counts(self):
        net = Network()
        net.add_link(0, 1)
        sim = Simulator(net, SimulatorConfig(strict_congest=False))
        sim.add_process(Chatterbox(0))
        sink = Sink(1)
        sim.add_process(sink)
        metrics = sim.run()
        assert metrics.congestion_violations == 1
        assert len(sink.received) == 2  # second message arrives a round later

    def test_missing_link_strict_raises(self):
        net = Network()
        net.add_node(0)
        net.add_node(1)

        class Bad(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1, "x")
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

        sim = Simulator(net, SimulatorConfig(strict_links=True))
        sim.add_process(Bad(0))
        sim.add_process(Sink(1))
        with pytest.raises(LinkError):
            sim.run()

    def test_missing_link_lenient_drops(self):
        net = Network()
        net.add_node(0)
        net.add_node(1)

        class Bad(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1, "x")
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

        sim = Simulator(net, SimulatorConfig(strict_links=False))
        sim.add_process(Bad(0))
        sink = Sink(1)
        sim.add_process(sink)
        metrics = sim.run()
        # A missing-link drop is a *drop*, not a CONGEST violation: the two
        # counters are distinct so E11's zero-violation check stays valid.
        assert metrics.dropped_messages == 1
        assert metrics.congestion_violations == 0
        assert sink.received == []
        # Start-phase drops are attributed to the upcoming round, so
        # per-generation windows on reused engines still see them.
        assert metrics.window(0)["dropped_messages"] == 1

    def test_message_size_cap(self):
        net = Network()
        net.add_link(0, 1)

        class BigSender(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1, "big", payload=list(range(100)))
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

        sim = Simulator(net, SimulatorConfig(max_message_bits=64))
        sim.add_process(BigSender(0))
        sim.add_process(Sink(1))
        with pytest.raises(MessageSizeError):
            sim.run()


class TestEngineLifecycle:
    def test_duplicate_process_rejected(self):
        net = line_network(2)
        sim = Simulator(net)
        sim.add_process(Sink(0))
        with pytest.raises(SimulationError):
            sim.add_process(Sink(0))

    def test_process_for_unknown_node_rejected(self):
        net = line_network(2)
        sim = Simulator(net)
        with pytest.raises(LinkError):
            sim.add_process(Sink(99))

    def test_timeout_raises_by_default(self):
        net = line_network(2)

        class Restless(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1 - self.node_id, "ping")

            def on_round(self, ctx, inbox):
                ctx.send(1 - self.node_id, "ping")

        sim = Simulator(net, SimulatorConfig(max_rounds=10))
        sim.add_process(Restless(0))
        sim.add_process(Restless(1))
        with pytest.raises(SimulationError):
            sim.run()

    def test_timeout_allowed_when_configured(self):
        net = line_network(2)

        class Restless(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1 - self.node_id, "ping")

            def on_round(self, ctx, inbox):
                ctx.send(1 - self.node_id, "ping")

        sim = Simulator(net, SimulatorConfig(max_rounds=5, allow_timeout=True))
        sim.add_process(Restless(0))
        sim.add_process(Restless(1))
        metrics = sim.run()
        assert metrics.rounds <= 6

    def test_memory_reporting(self):
        net = line_network(2)

        class Reporter(NodeProcess):
            def on_start(self, ctx):
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

            def memory_words(self):
                return 7

        sim = Simulator(net)
        sim.add_process(Reporter(0))
        sim.add_process(Reporter(1))
        sim.step()
        assert sim.metrics.max_memory_words == 7

    def test_results_collects_process_results(self):
        n = 4
        net = line_network(n)
        sim = Simulator(net)
        sim.add_process(TokenForwarder(0, n, start=True))
        for i in range(1, n):
            sim.add_process(TokenForwarder(i, n))
        sim.run()
        results = sim.results()
        assert results[n - 1] == 0

    def test_deterministic_rng_per_node(self):
        net = line_network(3)

        class Sampler(NodeProcess):
            def on_start(self, ctx):
                self.result = ctx.rng.random()
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

        values = []
        for _ in range(2):
            sim = Simulator(net, SimulatorConfig(seed=7))
            procs = [Sampler(i) for i in range(3)]
            sim.add_processes(procs)
            sim.run()
            values.append(tuple(p.result for p in procs))
        assert values[0] == values[1]
        assert len(set(values[0])) == 3  # distinct streams per node


class Idle(NodeProcess):
    """A process with nothing to do (passive from the start)."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.done = True

    def on_round(self, ctx, inbox):
        pass


class TestChurnLifecycle:
    """Process lifecycle under churn: join -> on_start, leave -> retire."""

    def test_join_mid_run_triggers_on_start(self):
        started = []

        class Joiner(NodeProcess):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.done = True

            def on_start(self, ctx):
                started.append((self.node_id, ctx.round))

            def on_round(self, ctx, inbox):
                pass

        net = Network()
        net.add_node("a")
        sim = Simulator(net, SimulatorConfig(max_rounds=50))
        sim.add_process(Joiner("a"))

        def join(s):
            s.network.add_node("b")
            s.network.add_link("a", "b")
            s.add_process(Joiner("b"))

        sim.schedule(3, join)
        sim.run()
        # "a" started before round 0; "b" was initialized in its join round.
        assert started == [("a", 0), ("b", 3)]

    def test_joiner_on_start_sends_are_delivered_next_round(self):
        class Greeter(NodeProcess):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.done = True

            def on_start(self, ctx):
                ctx.send("a", "hello")

            def on_round(self, ctx, inbox):
                pass

        net = Network()
        net.add_node("a")
        sink = Sink("a")
        sim = Simulator(net, SimulatorConfig(max_rounds=50))
        sim.add_process(sink)

        def join(s):
            s.network.add_node("b")
            s.network.add_link("a", "b")
            s.add_process(Greeter("b"))

        sim.schedule(2, join)
        sim.run()
        assert [m.kind for m in sink.received] == ["hello"]
        assert sim.metrics.dropped_messages == 0

    def test_leave_mid_run_still_quiesces(self):
        class Waiter(NodeProcess):
            """Never done: would block quiescence forever if not retired."""

            def on_round(self, ctx, inbox):
                pass

        net = Network()
        net.add_link("a", "b")
        sim = Simulator(net, SimulatorConfig(max_rounds=50))
        sim.add_process(Idle("a"))
        waiter = Waiter("b")
        waiter.result = "partial"
        sim.add_process(waiter)
        sim.schedule(2, lambda s: s.network.remove_node("b"))
        sim.run()  # must terminate: the orphaned process is retired
        assert "b" not in sim.processes
        assert "b" in sim.retired
        assert sim.results()["b"] == "partial"

    def test_explicit_retire_keeps_result_and_allows_rejoin(self):
        net = Network()
        net.add_node("a")
        sim = Simulator(net, SimulatorConfig(max_rounds=10))
        first = Idle("a")
        first.result = "gen-1"
        sim.add_process(first)
        sim.run()
        sim.retire("a")
        second = Idle("a")
        second.result = "gen-2"
        sim.add_process(second)
        sim.run()
        assert sim.results()["a"] == "gen-2"
        with pytest.raises(SimulationError):
            sim.retire("missing")

    def test_in_flight_link_removal_drops_instead_of_raising(self):
        """A legally-sent message whose link churns away is a recorded drop
        (never a LinkError), even under strict links."""

        class Sender(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1, "x")
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

        net = Network()
        net.add_link(0, 1)
        sim = Simulator(net, SimulatorConfig(strict_links=True, max_rounds=10))
        sim.add_process(Sender(0))
        sink = Sink(1)
        sim.add_process(sink)
        sim.schedule(0, lambda s: s.network.remove_link(0, 1))
        metrics = sim.run()
        assert sink.received == []
        assert metrics.dropped_messages == 1
        assert metrics.congestion_violations == 0

    def test_drop_and_congestion_counters_are_distinct(self):
        net = Network()
        net.add_link(0, 1)
        net.add_node(2)

        class Both(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1, "a")
                ctx.send(1, "b")  # CONGEST violation (second on the link)
                ctx.send(2, "c")  # drop (no link)
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

        sim = Simulator(net, SimulatorConfig(strict_congest=False, strict_links=False))
        sim.add_process(Both(0))
        sim.add_process(Sink(1))
        sim.add_process(Sink(2))
        metrics = sim.run()
        assert metrics.congestion_violations == 1
        assert metrics.dropped_messages == 1
        summary = metrics.summary()
        assert summary["congestion_violations"] == 1
        assert summary["dropped_messages"] == 1

    def test_deferred_messages_drain_fifo_under_sustained_congestion(self):
        """Lenient congestion overflow is a FIFO queue: the backlog drains in
        send order even while the sender keeps over-sending."""

        class Burst(NodeProcess):
            def __init__(self, node_id, bursts):
                super().__init__(node_id)
                self.bursts = bursts
                self.sent = 0

            def _burst(self, ctx):
                if self.bursts:
                    for _ in range(2):  # two per round on one link
                        ctx.send(1, "seq", payload=self.sent)
                        self.sent += 1
                    self.bursts -= 1
                self.done = not self.bursts

            def on_start(self, ctx):
                self._burst(ctx)

            def on_round(self, ctx, inbox):
                self._burst(ctx)

        net = Network()
        net.add_link(0, 1)
        sim = Simulator(net, SimulatorConfig(strict_congest=False, max_rounds=50))
        sim.add_process(Burst(0, bursts=4))
        sink = Sink(1)
        sim.add_process(sink)
        metrics = sim.run()
        payloads = [m.payload for m in sink.received]
        assert payloads == list(range(8))  # FIFO: exactly send order
        assert metrics.congestion_violations > 0
        assert metrics.dropped_messages == 0

    def test_message_to_process_less_node_is_a_drop(self):
        net = Network()
        net.add_link(0, 1)

        class Sender(NodeProcess):
            def on_start(self, ctx):
                ctx.send(1, "x")
                self.done = True

            def on_round(self, ctx, inbox):
                self.done = True

        sim = Simulator(net, SimulatorConfig(max_rounds=10))
        sim.add_process(Sender(0))  # node 1 exists but runs no process
        metrics = sim.run()
        assert metrics.dropped_messages == 1

    def test_join_retire_rejoin_in_one_round_starts_once(self):
        """A node that joins, retires, and re-joins before its initialization
        round must not inherit the stale start-queue entry (on_start would
        run twice on the new process)."""
        started = []

        class Starter(NodeProcess):
            def __init__(self, node_id, tag):
                super().__init__(node_id)
                self.tag = tag
                self.done = True

            def on_start(self, ctx):
                started.append((self.tag, ctx.round))

            def on_round(self, ctx, inbox):
                pass

        net = Network()
        net.add_node("a")
        sim = Simulator(net, SimulatorConfig(max_rounds=20))
        sim.add_process(Idle("a"))

        def churn(s):
            s.network.add_node("b")
            s.add_process(Starter("b", "gen-1"))
            s.retire("b")
            s.add_process(Starter("b", "gen-2"))

        sim.schedule(2, churn)
        sim.run()
        assert started == [("gen-2", 2)]

    def test_starter_is_not_also_invoked_for_same_round_deliveries(self):
        """A message sent before a node's process existed drops; the joiner
        gets exactly one invocation (on_start) in its initialization round."""
        calls = []

        class Tracker(NodeProcess):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.done = True

            def on_start(self, ctx):
                calls.append(("start", ctx.round))

            def on_round(self, ctx, inbox):
                calls.append(("round", ctx.round, len(inbox)))

        class SendOnce(NodeProcess):
            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.send("b", "hello")  # 'b' runs no process yet
                    self.done = True

        net = Network()
        net.add_link("a", "b")
        sim = Simulator(net, SimulatorConfig(max_rounds=20))
        sim.add_process(SendOnce("a"))
        sim.schedule(2, lambda s: s.add_process(Tracker("b")))
        metrics = sim.run()
        # The round-1 send targeted a process that materialised in round 2:
        # it drops (sent before the process existed) and 'b' is invoked
        # exactly once that round, via on_start.
        assert calls == [("start", 2)]
        assert metrics.dropped_messages == 1

    def test_rerun_on_reused_engine_matches_fresh_run(self):
        """Installing a fresh protocol generation on a quiesced engine
        reproduces a fresh simulator's behaviour (metrics window)."""
        n = 5

        def install(sim):
            sim.add_process(TokenForwarder(0, n, start=True))
            for i in range(1, n):
                sim.add_process(TokenForwarder(i, n))

        sim = Simulator(line_network(n), SimulatorConfig(seed=3))
        install(sim)
        sim.run()
        first = sim.metrics.window(0)
        checkpoint = sim.round
        sim.retire_all()
        install(sim)
        sim.run()
        second = sim.metrics.window(checkpoint)
        assert second == first
        assert sim.process(n - 1).result == 0

    def test_run_budget_is_per_call_on_reused_engine(self):
        n = 4
        sim = Simulator(line_network(n), SimulatorConfig(seed=1, max_rounds=2 * n))
        sim.add_process(TokenForwarder(0, n, start=True))
        for i in range(1, n):
            sim.add_process(TokenForwarder(i, n))
        sim.run()
        rounds_used = sim.round
        sim.retire_all()
        sim.add_process(TokenForwarder(0, n, start=True))
        for i in range(1, n):
            sim.add_process(TokenForwarder(i, n))
        sim.run()  # would exceed an absolute budget, but budgets are per call
        assert sim.round >= 2 * rounds_used


class TestScheduledEvents:
    """Simulator.schedule: churn-style event injection at round boundaries."""

    def test_scheduled_callback_runs_at_its_round(self):
        from repro.simulation.network import Network
        from repro.simulation.node_process import NodeProcess

        class Idle(NodeProcess):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.done = True

            def on_round(self, ctx, inbox):
                pass

        network = Network()
        network.add_node("a")
        sim = Simulator(network, SimulatorConfig(max_rounds=50))
        sim.add_process(Idle("a"))
        fired = []
        sim.schedule(3, lambda s: fired.append(s.round))
        sim.run()
        assert fired == [3]
        assert sim.round >= 4  # the run kept stepping until the event fired

    def test_scheduled_join_adds_node_and_process(self):
        from repro.simulation.network import Network
        from repro.simulation.node_process import NodeProcess

        class Idle(NodeProcess):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.done = True

            def on_round(self, ctx, inbox):
                pass

        network = Network()
        network.add_node("a")
        sim = Simulator(network, SimulatorConfig(max_rounds=50))
        sim.add_process(Idle("a"))

        def join(s):
            s.network.add_node("b")
            s.network.add_link("a", "b")
            s.add_process(Idle("b"))

        sim.schedule(2, join)
        sim.run()
        assert sim.network.has_node("b")
        assert "b" in sim.processes

    def test_scheduling_in_the_past_rejected(self):
        from repro.simulation.network import Network

        network = Network()
        network.add_node("a")
        sim = Simulator(network, SimulatorConfig(max_rounds=10, allow_timeout=True))
        sim.step()
        sim.step()
        with pytest.raises(SimulationError):
            sim.schedule(0, lambda s: None)

    def test_same_round_scheduling_from_callback_does_not_deadlock(self):
        from repro.simulation.network import Network
        from repro.simulation.node_process import NodeProcess

        class Idle(NodeProcess):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.done = True

            def on_round(self, ctx, inbox):
                pass

        network = Network()
        network.add_node("a")
        sim = Simulator(network, SimulatorConfig(max_rounds=20))
        sim.add_process(Idle("a"))
        fired = []

        def outer(s):
            fired.append(("outer", s.round))
            s.schedule(s.round, lambda s2: fired.append(("inner", s2.round)))

        sim.schedule(2, outer)
        sim.run()  # must quiesce; the inner event fires in the same round
        assert fired == [("outer", 2), ("inner", 2)]
