"""Unit tests for message construction and size accounting."""

import pytest

from repro.simulation import Message, payload_size_bits
from repro.simulation.message import WORD_BITS


class TestPayloadSizeBits:
    def test_none_costs_one_word(self):
        assert payload_size_bits(None) == WORD_BITS

    def test_int_costs_one_word(self):
        assert payload_size_bits(7) == WORD_BITS
        assert payload_size_bits(-123456) == WORD_BITS

    def test_bool_costs_one_bit(self):
        assert payload_size_bits(True) == 1
        assert payload_size_bits(False) == 1

    def test_float_costs_one_word(self):
        assert payload_size_bits(3.14) == WORD_BITS

    def test_string_costs_eight_bits_per_char(self):
        assert payload_size_bits("abc") == 24
        assert payload_size_bits("") == 0

    def test_list_costs_length_word_plus_elements(self):
        assert payload_size_bits([1, 2, 3]) == WORD_BITS + 3 * WORD_BITS

    def test_tuple_and_set_same_rule_as_list(self):
        assert payload_size_bits((1, 2)) == WORD_BITS + 2 * WORD_BITS
        assert payload_size_bits({1, 2}) == WORD_BITS + 2 * WORD_BITS

    def test_nested_structure(self):
        payload = {"k": [1, True]}
        expected = WORD_BITS + 8 + (WORD_BITS + WORD_BITS + 1)
        assert payload_size_bits(payload) == expected

    def test_dict_counts_keys_and_values(self):
        assert payload_size_bits({1: 2}) == WORD_BITS + WORD_BITS + WORD_BITS

    def test_custom_word_bits(self):
        assert payload_size_bits(5, word_bits=16) == 16

    def test_unknown_object_charged_by_repr(self):
        class Weird:
            def __repr__(self):
                return "xx"

        assert payload_size_bits(Weird()) == 16


class TestMessage:
    def test_size_includes_kind(self):
        msg = Message(sender=1, receiver=2, kind="ab", payload=None)
        assert msg.size_bits == 16 + WORD_BITS

    def test_reply_swaps_endpoints(self):
        msg = Message(sender=1, receiver=2, kind="ping", payload=7)
        reply = msg.reply("pong", payload=8)
        assert reply.sender == 2
        assert reply.receiver == 1
        assert reply.kind == "pong"
        assert reply.payload == 8

    def test_message_is_frozen(self):
        msg = Message(sender=1, receiver=2, kind="x")
        with pytest.raises(AttributeError):
            msg.kind = "y"  # type: ignore[misc]

    def test_payload_with_list_of_ints_is_linear_in_length(self):
        short = Message(sender=0, receiver=1, kind="v", payload=[1])
        long = Message(sender=0, receiver=1, kind="v", payload=list(range(10)))
        assert long.size_bits > short.size_bits
