"""Crash-stop fault-injection lifecycle tests for the engine (PR 6).

:meth:`~repro.simulation.Simulator.crash` is the failure half of the
churn API; these tests pin the semantics that distinguish it from a
graceful :meth:`~repro.simulation.Simulator.retire`:

* a crash mid-route turns the in-flight message into a counted
  ``dropped_messages`` entry — never a :class:`LinkError`, even with
  strict links on;
* crashed nodes are permanently banned from re-entry, and a crash is
  exactly-once;
* the ``on_retire`` goodbye fires for graceful departures only — in
  particular the auto-retire sweep for nodes that left the network can
  never fire it for a crashed node (the regression pinned here);
* protocol-level failures reported through
  :meth:`RoundContext.report_failure` land in ``failed_requests``,
  separate from ``dropped_messages``;
* a fresh protocol generation installed on a quiesced engine *after*
  crashes reproduces a fresh simulator's behaviour round for round
  (metrics window), so failure experiments can reuse arenas.
"""

from typing import List

import pytest

from repro.simulation import (
    Message,
    Network,
    NodeProcess,
    RoundContext,
    Simulator,
    SimulatorConfig,
)
from repro.simulation.errors import SimulationError

pytestmark = pytest.mark.failure


def line_network(n: int) -> Network:
    net = Network()
    for i in range(n - 1):
        net.add_link(i, i + 1, label="line")
    return net


class TokenForwarder(NodeProcess):
    """Forwards a token to the right neighbour; the last node keeps it."""

    def __init__(self, node_id, n, start=False):
        super().__init__(node_id)
        self.n = n
        self.start = start
        self.goodbyes = 0
        if not start:
            self.done = True

    def on_start(self, ctx: RoundContext) -> None:
        if self.start:
            ctx.send(self.node_id + 1, "token", payload=self.node_id)
            self.done = True

    def on_round(self, ctx: RoundContext, inbox: List[Message]) -> None:
        for msg in inbox:
            if msg.kind != "token":
                continue
            if self.node_id == self.n - 1:
                self.result = msg.payload
                self.done = True
            else:
                ctx.send(self.node_id + 1, "token", payload=msg.payload)
                self.done = True

    def on_retire(self) -> None:
        self.goodbyes += 1


class TestCrashSemantics:
    def test_crash_mid_route_is_a_counted_drop_not_a_link_error(self):
        """The token is in flight towards node 2 when node 2 crashes: the
        message drops and is recorded; strict links never raise (the send
        was legal when it happened)."""
        n = 4
        sim = Simulator(line_network(n), SimulatorConfig(seed=1, strict_links=True))
        procs = [TokenForwarder(i, n, start=(i == 0)) for i in range(n)]
        sim.add_processes(procs)
        # Round 0 delivers 0 -> 1; node 1 sends 1 -> 2; crash node 2 at the
        # top of round 1, while that message is in flight.
        sim.schedule(1, lambda s: s.crash(2))
        metrics = sim.run()
        assert metrics.dropped_messages == 1
        assert sim.process(n - 1).result is None  # token never arrived
        assert procs[2].goodbyes == 0  # crash-stop: no goodbye

    def test_crashed_node_cannot_reenter(self):
        n = 3
        sim = Simulator(line_network(n), SimulatorConfig(seed=1))
        sim.add_processes(TokenForwarder(i, n) for i in range(n))
        sim.crash(1)
        assert 1 in sim.crashed
        with pytest.raises(SimulationError, match="cannot re-enter"):
            sim.add_process(TokenForwarder(1, n))

    def test_crash_is_exactly_once(self):
        sim = Simulator(line_network(3), SimulatorConfig(seed=1))
        sim.crash(1)
        with pytest.raises(SimulationError, match="already crashed"):
            sim.crash(1)

    def test_crash_of_a_processless_node_darkens_its_links(self):
        net = line_network(3)
        sim = Simulator(net, SimulatorConfig(seed=1))
        assert sim.crash(1) is None  # no process existed; still a crash
        assert not net.has_node(1)
        assert 1 in sim.crashed

    def test_crash_result_stays_readable(self):
        n = 3
        sim = Simulator(line_network(n), SimulatorConfig(seed=1))
        sim.add_processes(TokenForwarder(i, n, start=(i == 0)) for i in range(n))
        sim.run()
        assert sim.process(n - 1).result == 0
        process = sim.crash(n - 1)
        assert process.result == 0
        assert sim.results()[n - 1] == 0


class TestGoodbyeOrdering:
    def test_retire_fires_goodbye_crash_does_not(self):
        n = 4
        sim = Simulator(line_network(n), SimulatorConfig(seed=1))
        procs = [TokenForwarder(i, n) for i in range(n)]
        sim.add_processes(procs)
        retired = sim.retire(1)
        crashed = sim.crash(2)
        assert retired.goodbyes == 1
        assert crashed.goodbyes == 0

    def test_auto_retire_never_fires_goodbye_for_a_crashed_node(self):
        """Regression: the auto-retire sweep runs after scheduled callbacks
        and retires processes whose node left the network — a node that
        left because it *crashed* must not be swept into the graceful path
        (crash pops the process before removing the node)."""
        n = 5
        sim = Simulator(line_network(n), SimulatorConfig(seed=1))
        procs = [TokenForwarder(i, n, start=(i == 0)) for i in range(n)]
        sim.add_processes(procs)

        def churn(s: Simulator) -> None:
            s.crash(3)  # crash-stop: no goodbye, ever
            s.network.remove_node(1)  # graceful departure via the sweep

        sim.schedule(1, churn)
        sim.run()
        assert procs[3].goodbyes == 0
        assert procs[1].goodbyes == 1
        assert 3 in sim.crashed and 1 not in sim.crashed

    def test_crash_before_initialization_round_cancels_the_start(self):
        n = 3
        sim = Simulator(line_network(n), SimulatorConfig(seed=1))
        sim.add_processes(TokenForwarder(i, n, start=(i == 0)) for i in range(n))
        sim.run()
        joiner = TokenForwarder(1, n)
        sim.retire(1)
        sim.add_process(joiner)  # queued for its initialization round
        sim.crash(1)
        sim.run()
        assert joiner.goodbyes == 0


class FailingProcess(NodeProcess):
    """Reports ``failures`` protocol-level request failures, then quiesces."""

    def __init__(self, node_id, failures=1):
        super().__init__(node_id)
        self.failures = failures

    def on_start(self, ctx: RoundContext) -> None:
        pass

    def on_round(self, ctx: RoundContext, inbox) -> None:
        ctx.report_failure(self.failures)
        self.done = True


class TestFailedRequestAccounting:
    def test_report_failure_counts_separately_from_drops(self):
        sim = Simulator(line_network(2), SimulatorConfig(seed=1))
        sim.add_process(FailingProcess(0, failures=2))
        sim.add_process(FailingProcess(1, failures=1))
        metrics = sim.run()
        assert metrics.failed_requests == 3
        assert metrics.dropped_messages == 0
        assert metrics.summary()["failed_requests"] == 3

    def test_failures_appear_in_metrics_windows(self):
        sim = Simulator(line_network(2), SimulatorConfig(seed=1))
        sim.add_process(FailingProcess(0))
        sim.add_process(FailingProcess(1))
        sim.run()
        assert sim.metrics.window(0)["failed_requests"] == 2


class TestRerunAfterCrashes:
    def test_rerun_on_crashed_engine_matches_fresh_run(self):
        """After crashes (and their repairs, here: none needed on a line
        with edge nodes crashed), a fresh generation on the reused engine
        reproduces a fresh simulator's metrics window round for round."""
        n = 6

        def install(sim, n, offset=0):
            sim.add_process(TokenForwarder(offset, n, start=True))
            for i in range(offset + 1, n):
                sim.add_process(TokenForwarder(i, n))

        # Reused engine: crash the head node after a full run, then rerun
        # the protocol over the surviving suffix 1..n-1.
        sim = Simulator(line_network(n), SimulatorConfig(seed=3))
        install(sim, n)
        sim.run()
        sim.retire_all()
        sim.crash(0)
        checkpoint = sim.round
        # Survivors re-run: same token protocol starting at node 1.
        sim.add_process(TokenForwarder(1, n, start=True))
        for i in range(2, n):
            sim.add_process(TokenForwarder(i, n))
        sim.run()
        second = sim.metrics.window(checkpoint)

        # Fresh engine over the surviving topology.
        fresh_net = line_network(n)
        fresh_net.remove_node(0)
        fresh = Simulator(fresh_net, SimulatorConfig(seed=3))
        fresh.add_process(TokenForwarder(1, n, start=True))
        for i in range(2, n):
            fresh.add_process(TokenForwarder(i, n))
        fresh_metrics = fresh.run()
        assert second == fresh_metrics.window(0)
        assert sim.process(n - 1).result == fresh.process(n - 1).result == 1
