"""Tests for the deterministic RNG helpers."""

from repro.simulation.rng import DEFAULT_SEED, make_rng, spawn_rng


class TestMakeRng:
    def test_default_seed_is_deterministic(self):
        assert make_rng().random() == make_rng().random()
        assert make_rng(None).random() == make_rng(DEFAULT_SEED).random()

    def test_distinct_seeds_give_distinct_streams(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_same_seed_same_sequence(self):
        first = [make_rng(7).random() for _ in range(1)]
        second = [make_rng(7).random() for _ in range(1)]
        assert first == second


class TestSpawnRng:
    def test_children_with_different_labels_are_decorrelated(self):
        parent = make_rng(3)
        child_a = spawn_rng(parent, label="a")
        parent = make_rng(3)
        child_b = spawn_rng(parent, label="b")
        assert child_a.random() != child_b.random()

    def test_child_is_reproducible(self):
        first = spawn_rng(make_rng(5), label="x").random()
        second = spawn_rng(make_rng(5), label="x").random()
        assert first == second

    def test_parent_stream_advances_once_per_spawn(self):
        parent_a = make_rng(9)
        spawn_rng(parent_a, label="one")
        after_one = parent_a.random()
        parent_b = make_rng(9)
        spawn_rng(parent_b, label="completely-different-label")
        after_other = parent_b.random()
        assert after_one == after_other
