"""Tests for the comparison baselines."""

import math
import random

import pytest

from repro.baselines import (
    BaselineRun,
    DirectLinkOracle,
    OfflineStaticBaseline,
    RequestCost,
    SplayNetBaseline,
    StaticSkipGraphBaseline,
)
from repro.simulation.rng import make_rng
from repro.workloads import generate_workload

KEYS = list(range(1, 33))


class TestRequestCostAndRun:
    def test_total_follows_equation_1(self):
        cost = RequestCost(source=1, destination=2, routing=4, adjustment=10)
        assert cost.total == 15

    def test_run_aggregates(self):
        run = BaselineRun(name="x")
        run.record(RequestCost(1, 2, routing=3))
        run.record(RequestCost(2, 3, routing=5, adjustment=2))
        assert run.requests == 2
        assert run.total_routing == 8
        assert run.total_adjustment == 2
        assert run.total_cost == 8 + 2 + 2
        assert run.average_routing == 4.0
        assert run.routing_series() == [3, 5]

    def test_empty_run_averages_are_zero(self):
        run = BaselineRun(name="x")
        assert run.average_cost == 0.0
        assert run.average_routing == 0.0


class TestStaticSkipGraph:
    def test_topology_choices(self):
        random_baseline = StaticSkipGraphBaseline(KEYS, topology="random", rng=make_rng(1))
        balanced_baseline = StaticSkipGraphBaseline(KEYS, topology="balanced")
        assert balanced_baseline.height() == math.ceil(math.log2(len(KEYS))) + 1
        assert random_baseline.graph.is_valid()
        with pytest.raises(ValueError):
            StaticSkipGraphBaseline(KEYS, topology="weird")

    def test_serve_records_every_request(self):
        baseline = StaticSkipGraphBaseline(KEYS, topology="balanced")
        requests = generate_workload("uniform", KEYS, 50, seed=1)
        run = baseline.serve(requests)
        assert run.requests == 50
        assert run.total_adjustment == 0
        assert all(cost.routing >= 0 for cost in run.costs)

    def test_static_costs_are_stable_under_repetition(self):
        baseline = StaticSkipGraphBaseline(KEYS, topology="balanced")
        pair = (1, 30)
        first = baseline.routing_cost(*pair)
        again = baseline.routing_cost(*pair)
        assert first == again

    def test_logarithmic_worst_case(self):
        baseline = StaticSkipGraphBaseline(range(1, 129), topology="balanced")
        worst = max(baseline.routing_cost(1, d) for d in range(2, 129))
        assert worst <= 2 * 7  # 2 log2 n


class TestOracle:
    def test_every_request_costs_one(self):
        oracle = DirectLinkOracle()
        run = oracle.serve([(1, 2), (3, 4)])
        assert run.total_cost == 2
        assert run.total_routing == 0


class TestOfflineStatic:
    def test_respects_height_bound(self):
        requests = generate_workload("hot-pairs", KEYS, 200, seed=2)
        baseline = OfflineStaticBaseline(KEYS, requests, rng=make_rng(3))
        assert baseline.height() == math.ceil(math.log2(len(KEYS))) + 1
        baseline.graph.validate()

    def test_beats_random_static_on_skewed_traffic(self):
        requests = generate_workload("hot-pairs", KEYS, 300, seed=5, hot_fraction=1.0)
        offline = OfflineStaticBaseline(KEYS, requests, rng=make_rng(3))
        static = StaticSkipGraphBaseline(KEYS, topology="random", rng=make_rng(4))
        offline_cost = offline.serve(requests).total_routing
        static_cost = static.serve(requests).total_routing
        assert offline_cost <= static_cost

    def test_handles_tiny_population(self):
        baseline = OfflineStaticBaseline([1, 2], [(1, 2)], rng=make_rng(1))
        run = baseline.serve([(1, 2), (2, 1)])
        assert run.total_routing == 0


class TestSplayNet:
    def test_initial_tree_is_balanced_bst(self):
        net = SplayNetBaseline(KEYS)
        assert net.is_valid_bst()
        assert net.height() <= math.ceil(math.log2(len(KEYS))) + 1

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            SplayNetBaseline([])

    def test_unknown_endpoint_rejected(self):
        net = SplayNetBaseline(KEYS)
        with pytest.raises(KeyError):
            net.request(1, 999)

    def test_request_preserves_bst_property(self):
        net = SplayNetBaseline(KEYS)
        rng = random.Random(1)
        for _ in range(200):
            u, v = rng.sample(KEYS, 2)
            net.request(u, v)
            assert net.is_valid_bst()

    def test_repeated_pair_becomes_adjacent(self):
        net = SplayNetBaseline(KEYS)
        net.request(5, 29)
        cost = net.request(5, 29)
        assert cost.routing == 0  # adjacent: path length 1, no intermediates

    def test_adjustment_counts_rotations(self):
        net = SplayNetBaseline(KEYS)
        cost = net.request(1, 32)
        assert cost.adjustment == net.rotations
        assert cost.adjustment > 0

    def test_static_variant_never_rotates(self):
        net = SplayNetBaseline(KEYS, adjust=False)
        before = net.height()
        run = net.serve(generate_workload("uniform", KEYS, 50, seed=7))
        assert net.rotations == 0
        assert run.total_adjustment == 0
        assert net.height() == before

    def test_self_request_costs_zero_routing(self):
        net = SplayNetBaseline(KEYS)
        cost = net.request(4, 4)
        assert cost.routing == 0
        assert cost.adjustment == 0

    def test_lca_and_distance(self):
        net = SplayNetBaseline(range(1, 8))  # balanced: root 4
        assert net.lowest_common_ancestor(1, 3) == 2
        assert net.tree_distance(1, 3) == 2
        assert net.tree_distance(1, 1) == 0

    def test_splaynet_adapts_to_skew(self):
        requests = generate_workload("hot-pairs", KEYS, 400, seed=9, pairs=2, hot_fraction=1.0)
        adaptive = SplayNetBaseline(KEYS).serve(requests)
        static = SplayNetBaseline(KEYS, adjust=False).serve(requests)
        assert adaptive.total_routing < static.total_routing
