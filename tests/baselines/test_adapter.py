"""Tests for the unified algorithm adapter layer (baselines.adapter).

Covers the two properties the adapter refactor promises:

* **Streaming == retained.** Every aggregate a streaming
  (``keep_costs=False``) run reports equals the sum over the retained
  per-request costs of an identical retained run — for the raw
  :class:`BaselineRun` counters (hypothesis property) and for every
  algorithm end to end.
* **Cache == scan.** The static baselines' cached per-pair routing
  distances equal the scan-based executable specification
  (``route_reference``) on randomized graphs, including across
  join/leave cache invalidations.

Plus the churn-capable driving contract: all five algorithms replay the
same churn schedule through ``play_scenario``/``run_scenario`` with
consistent accounting, and SplayNet's single-walk serving fast path agrees
with its reference tree helpers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BaselineRun,
    DSGAdapter,
    DirectLinkOracle,
    OfflineStaticBaseline,
    RequestCost,
    SplayNetBaseline,
    StaticSkipGraphBaseline,
    make_comparison_algorithms,
    play_scenario,
)
from repro.core.dsg import DSGConfig
from repro.simulation.rng import make_rng
from repro.skipgraph.routing import route_reference
from repro.workloads import (
    churn_scenario,
    generate_workload,
    run_scenario,
    scenario_requests,
)

KEYS = list(range(1, 33))

cost_lists = st.lists(
    st.builds(
        RequestCost,
        source=st.integers(1, 50),
        destination=st.integers(1, 50),
        routing=st.integers(0, 40),
        adjustment=st.integers(0, 25),
    ),
    max_size=60,
)


class TestBaselineRunStreaming:
    @given(costs=cost_lists)
    @settings(max_examples=60, deadline=None)
    def test_streaming_counters_equal_retained_sums(self, costs):
        retained = BaselineRun(name="r", keep_costs=True)
        streaming = BaselineRun(name="s", keep_costs=False)
        for cost in costs:
            retained.record(cost)
            streaming.record(cost)

        assert retained.costs == costs
        assert streaming.costs == []
        # The retained list is the ground truth; both counter sets must match it.
        for run in (retained, streaming):
            assert run.requests == len(costs)
            assert run.total_routing == sum(c.routing for c in costs)
            assert run.total_adjustment == sum(c.adjustment for c in costs)
            assert run.total_cost == sum(c.total for c in costs)
            assert run.max_routing == max((c.routing for c in costs), default=0)

    @given(costs=cost_lists)
    @settings(max_examples=30, deadline=None)
    def test_prefilled_cost_list_seeds_counters(self, costs):
        run = BaselineRun(name="x", costs=list(costs))
        assert run.requests == len(costs)
        assert run.total_cost == sum(c.total for c in costs)

    def test_empty_streaming_run(self):
        run = BaselineRun(name="x", keep_costs=False)
        assert run.average_cost == 0.0
        assert run.routing_series() == []


def build_algorithms(requests, seed=11):
    return make_comparison_algorithms(KEYS, requests, seed=seed)


class TestStreamingEqualsRetained:
    @pytest.mark.parametrize("workload", ["hot-pairs", "temporal", "uniform"])
    def test_every_algorithm_streams_exactly(self, workload):
        requests = generate_workload(workload, KEYS, 120, seed=7)
        retained_algos = build_algorithms(requests)
        streaming_algos = build_algorithms(requests)
        for retained_algo, streaming_algo in zip(retained_algos, streaming_algos):
            retained = retained_algo.serve(requests, keep_costs=True)
            streaming = streaming_algo.serve(requests, keep_costs=False)
            assert retained.name == streaming.name
            assert streaming.costs == []
            assert streaming.requests == retained.requests == len(requests)
            assert streaming.total_routing == sum(c.routing for c in retained.costs)
            assert streaming.total_adjustment == sum(c.adjustment for c in retained.costs)
            assert streaming.total_cost == sum(c.total for c in retained.costs)

    def test_lifetime_counters_accumulate_across_serves(self):
        requests = generate_workload("hot-pairs", KEYS, 60, seed=3)
        algo = StaticSkipGraphBaseline(KEYS, topology="balanced")
        first = algo.serve(requests)
        second = algo.serve(requests)
        assert algo.requests_served == 120
        assert algo.total_cost == first.total_cost + second.total_cost

    def test_dsg_batch_lifetime_matches_per_request_path(self):
        requests = generate_workload("temporal", KEYS, 100, seed=7)
        batched = DSGAdapter(keys=KEYS, config=DSGConfig(seed=2))
        batched.request_batch(requests)
        sequential = DSGAdapter(keys=KEYS, config=DSGConfig(seed=2))
        for u, v in requests:
            sequential.request(u, v)
        # Every lifetime aggregate — including max_routing — must agree.
        assert batched._lifetime.requests == sequential._lifetime.requests
        assert batched._lifetime.total_routing == sequential._lifetime.total_routing
        assert batched._lifetime.total_adjustment == sequential._lifetime.total_adjustment
        assert batched._lifetime.max_routing == sequential._lifetime.max_routing
        assert batched._lifetime.max_routing > 0

    def test_record_batch_rejects_retained_runs(self):
        run = BaselineRun(name="x", keep_costs=True)
        with pytest.raises(ValueError):
            run.record_batch(requests=1, total_routing=1, total_adjustment=0, max_routing=1)


class TestCachedRoutingEqualsScanReference:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_static_random_graphs(self, seed):
        baseline = StaticSkipGraphBaseline(KEYS, topology="random", rng=make_rng(seed))
        rng = make_rng(100 + seed)
        pairs = [tuple(rng.sample(KEYS, 2)) for _ in range(40)]
        for source, destination in pairs:
            expected = route_reference(baseline.graph, source, destination).distance
            assert baseline.routing_cost(source, destination) == expected
            # Second lookup hits the cache and must agree.
            assert baseline.routing_cost(source, destination) == expected

    def test_offline_static_graph(self):
        requests = generate_workload("hot-pairs", KEYS, 150, seed=5)
        baseline = OfflineStaticBaseline(KEYS, requests, rng=make_rng(9))
        rng = make_rng(77)
        for source, destination in [tuple(rng.sample(KEYS, 2)) for _ in range(25)]:
            expected = route_reference(baseline.graph, source, destination).distance
            assert baseline.routing_cost(source, destination) == expected

    def test_cache_invalidated_on_churn(self):
        baseline = StaticSkipGraphBaseline(KEYS, topology="random", rng=make_rng(4))
        rng = make_rng(42)
        pairs = [tuple(rng.sample(KEYS, 2)) for _ in range(20)]
        for pair in pairs:
            baseline.routing_cost(*pair)  # warm the cache
        baseline.join(100)
        baseline.leave(KEYS[5])
        survivors = [p for p in pairs if KEYS[5] not in p]
        for source, destination in survivors:
            expected = route_reference(baseline.graph, source, destination).distance
            assert baseline.routing_cost(source, destination) == expected
        assert baseline.population() == len(KEYS)  # +1 join, -1 leave


class TestChurnCapableAdapters:
    def test_all_five_absorb_a_churn_schedule(self):
        scenario = churn_scenario(n=32, length=300, seed=13, base="temporal", churn_rate=0.05)
        requests = scenario_requests(scenario)
        expected_population = 32 + scenario.join_count - scenario.leave_count
        for algorithm in make_comparison_algorithms(scenario.initial_keys, requests, seed=13):
            run = play_scenario(algorithm, scenario, keep_costs=True)
            assert run.requests == scenario.request_count
            assert algorithm.population() == expected_population
            assert run.total_cost >= run.requests  # Equation 1: >= 1 each
        # churn_scenario with this seed must actually churn for the test to bite
        assert scenario.join_count > 0

    def test_run_scenario_generic_matches_play_scenario_for_dsg(self):
        scenario = churn_scenario(n=32, length=250, seed=21, base="temporal", churn_rate=0.04)
        played = play_scenario(
            DSGAdapter(keys=scenario.initial_keys, config=DSGConfig(seed=5)),
            scenario,
            keep_costs=True,
        )
        report = run_scenario(scenario, DSGConfig(seed=5), keep_costs=True)
        assert report.algorithm == "dsg"
        assert [cost.total for cost in played.costs] == report.costs
        assert played.total_cost == report.total_cost
        assert played.total_routing == report.total_routing_cost

    def test_run_scenario_with_baseline_algorithm(self):
        scenario = churn_scenario(n=32, length=200, seed=31, base="hot-pairs", churn_rate=0.03)
        algorithm = SplayNetBaseline(scenario.initial_keys)
        report = run_scenario(scenario, algorithm=algorithm, keep_costs=True)
        assert report.algorithm == "splaynet"
        assert report.requests == scenario.request_count
        assert report.total_cost == sum(report.costs)
        assert report.working_set_bound == 0.0  # only DSG tracks it
        assert algorithm.is_valid_bst()

    def test_run_scenario_rejects_config_with_explicit_algorithm(self):
        scenario = churn_scenario(n=32, length=50, seed=1, churn_rate=0.0)
        with pytest.raises(ValueError):
            run_scenario(scenario, DSGConfig(seed=1), algorithm=DirectLinkOracle(KEYS))

    def test_reused_adapter_reports_per_scenario_ws_bound(self):
        # working_set_bound (like every other report field) must cover only
        # the scenario just served, even when one adapter serves several.
        first = churn_scenario(n=32, length=120, seed=5, base="temporal", churn_rate=0.0)
        second = churn_scenario(n=32, length=120, seed=6, base="temporal", churn_rate=0.0)
        adapter = DSGAdapter(keys=first.initial_keys, config=DSGConfig(seed=3))
        report_one = run_scenario(first, algorithm=adapter)
        report_two = run_scenario(second, algorithm=adapter)
        lifetime_bound = adapter.working_set_bound()
        assert report_one.working_set_bound > 0
        assert report_two.working_set_bound > 0
        assert report_one.working_set_bound + report_two.working_set_bound == pytest.approx(lifetime_bound)
        assert report_two.requests == second.request_count

    def test_oracle_tracks_population(self):
        oracle = DirectLinkOracle(KEYS)
        oracle.join(100)
        oracle.leave(1)
        assert oracle.population() == len(KEYS)
        with pytest.raises(ValueError):
            oracle.join(100)
        with pytest.raises(KeyError):
            oracle.leave(999)


class TestSplayNetFastPathAndChurn:
    def test_fast_path_agrees_with_reference_helpers(self):
        net = SplayNetBaseline(KEYS)
        rng = make_rng(17)
        for _ in range(150):
            u, v = rng.sample(KEYS, 2)
            expected_routing = max(0, net.tree_distance(u, v) - 1)
            cost = net.request(u, v)
            assert cost.routing == expected_routing
            assert net.is_valid_bst()

    def test_join_inserts_as_leaf_and_keeps_bst(self):
        net = SplayNetBaseline(KEYS)
        net.join(100)
        assert net.population() == len(KEYS) + 1
        assert net.is_valid_bst()
        assert net.request(100, 1).routing >= 0
        with pytest.raises(ValueError):
            net.join(100)

    @pytest.mark.parametrize("victim_picker", ["leaf", "root", "inner"])
    def test_leave_handles_every_node_shape(self, victim_picker):
        net = SplayNetBaseline(KEYS)
        net.request(5, 20)  # deform the tree a bit first
        if victim_picker == "root":
            victim = net.root.key
        elif victim_picker == "leaf":
            node = net.root
            while node.left is not None or node.right is not None:
                node = node.left if node.left is not None else node.right
            victim = node.key
        else:
            victim = 13
        net.leave(victim)
        assert net.population() == len(KEYS) - 1
        assert net.is_valid_bst()
        assert victim not in net.in_order()
        with pytest.raises(KeyError):
            net.leave(victim)

    def test_leave_refuses_to_empty_the_tree(self):
        net = SplayNetBaseline([7])
        with pytest.raises(ValueError):
            net.leave(7)

    def test_structure_walks_survive_degenerate_spines(self):
        # Splay trees degenerate to Θ(n)-deep spines; height()/in_order()
        # must stay iterative so scale runs cannot hit the recursion limit.
        import sys

        depth = sys.getrecursionlimit() + 500
        net = SplayNetBaseline([1], adjust=False)
        for key in range(2, depth + 2):
            net.join(key)  # sorted inserts build a right spine
        assert net.height() == depth + 1
        assert net.in_order() == list(range(1, depth + 2))
        assert net.is_valid_bst()
