"""Property-based tests (hypothesis) for the core data-structure invariants.

These complement the example-based suites: instead of fixed scenarios they
assert invariants over randomly generated inputs —

* membership-vector algebra (prefixes, extensions, common prefixes),
* skip graph structural invariants and routing totality,
* the classic skip list against a model implementation,
* AMF's Lemma 1 rank bound,
* working set number bounds,
* message size accounting,
* end-to-end DSG invariants under arbitrary request sequences.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.amf import approximate_median, rank_interval
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.working_set import working_set_numbers
from repro.simulation.message import payload_size_bits
from repro.simulation.rng import make_rng
from repro.skipgraph import (
    MembershipVector,
    build_balanced_skip_graph,
    build_skip_graph,
    common_prefix_length,
    route,
)
from repro.skiplist import BalancedSkipList, SkipList

SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
FAST = settings(max_examples=60, deadline=None)

bits = st.lists(st.integers(min_value=0, max_value=1), max_size=12)


class TestMembershipVectorProperties:
    @FAST
    @given(bits)
    def test_roundtrip_via_string(self, raw):
        vector = MembershipVector(raw)
        assert MembershipVector(str(vector)) == vector
        assert len(vector) == len(raw)

    @FAST
    @given(bits, bits)
    def test_common_prefix_symmetric_and_bounded(self, a, b):
        length = common_prefix_length(a, b)
        assert length == common_prefix_length(b, a)
        assert 0 <= length <= min(len(a), len(b))
        assert MembershipVector(a).prefix(length) == MembershipVector(b).prefix(length)

    @FAST
    @given(bits, bits)
    def test_extension_preserves_prefix(self, a, extra):
        vector = MembershipVector(a)
        extended = vector.extended(extra)
        assert extended.prefix(len(a)) == vector
        assert len(extended) == len(a) + len(extra)

    @FAST
    @given(bits, st.integers(min_value=1, max_value=14), st.integers(min_value=0, max_value=1))
    def test_with_bit_sets_exactly_that_level(self, raw, level, bit):
        vector = MembershipVector(raw).with_bit(level, bit)
        assert vector.bit(level) == bit
        assert len(vector) >= level


class TestSkipGraphProperties:
    @SLOW
    @given(st.sets(st.integers(min_value=1, max_value=400), min_size=2, max_size=48), st.integers(0, 2**20))
    def test_random_build_is_valid_and_fully_routable(self, keys, seed):
        graph = build_skip_graph(keys, rng=make_rng(seed))
        graph.validate()
        keys = sorted(keys)
        source = keys[0]
        for destination in keys:
            assert route(graph, source, destination).path[-1] == destination

    @SLOW
    @given(st.integers(min_value=2, max_value=200))
    def test_balanced_height_formula(self, n):
        graph = build_balanced_skip_graph(range(1, n + 1))
        assert graph.height() == math.ceil(math.log2(n)) + 1
        # Every node's deepest list is a singleton.
        for key in graph.keys:
            assert len(graph.list_of(key, len(graph.membership(key)))) == 1

    @SLOW
    @given(st.sets(st.integers(min_value=1, max_value=300), min_size=2, max_size=40), st.integers(0, 2**20))
    def test_level_lists_partition_nodes(self, keys, seed):
        graph = build_skip_graph(keys, rng=make_rng(seed))
        for level in range(1, graph.height()):
            lists = graph.lists_at_level(level)
            members = sorted(key for group in lists.values() for key in group)
            assert members == sorted(keys)


class TestSkipListProperties:
    @SLOW
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=120),
           st.integers(0, 2**20))
    def test_matches_sorted_set_model(self, values, seed):
        skiplist = SkipList(rng=make_rng(seed))
        model = {}
        for value in values:
            skiplist.insert(value, value * 2)
            model[value] = value * 2
        assert list(skiplist.keys()) == sorted(model)
        for key, expected in model.items():
            assert skiplist.search(key) == expected
        # Delete half of them and re-check.
        for key in list(model)[::2]:
            skiplist.delete(key)
            del model[key]
        assert list(skiplist.keys()) == sorted(model)

    @SLOW
    @given(st.integers(min_value=2, max_value=300), st.integers(min_value=2, max_value=6), st.integers(0, 2**20))
    def test_balanced_skiplist_invariants(self, n, a, seed):
        skiplist = BalancedSkipList(list(range(n)), a=a, rng=make_rng(seed))
        assert skiplist.levels[0] == list(range(n))
        assert skiplist.levels[-1] == [0]
        assert skiplist.is_support_bounded()
        sizes = [len(level) for level in skiplist.levels]
        assert all(later <= earlier for earlier, later in zip(sizes, sizes[1:]))


class TestAMFProperties:
    @SLOW
    @given(st.integers(min_value=8, max_value=400), st.integers(min_value=3, max_value=8), st.integers(0, 2**20))
    def test_lemma1_rank_bound(self, n, a, seed):
        rng = make_rng(seed)
        values = {i: float(rng.randrange(5 * n)) for i in range(n)}
        result = approximate_median(values, a=a, rng=make_rng(seed + 1))
        assert result.satisfies_lemma1(a)
        assert result.median in set(values.values())

    @FAST
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_rank_interval_is_consistent(self, values, chosen):
        low, high = rank_interval(values, chosen)
        assert 1 <= low <= len(values) + 1
        assert low <= high <= len(values) + 1


class TestWorkingSetProperties:
    @FAST
    @given(st.lists(st.tuples(st.integers(1, 12), st.integers(1, 12)).filter(lambda p: p[0] != p[1]),
                    min_size=1, max_size=40))
    def test_bounds(self, history):
        n = 12
        numbers = working_set_numbers(history, total_nodes=n)
        seen = set()
        for (u, v), number in zip(history, numbers):
            if frozenset((u, v)) in seen:
                assert 2 <= number <= n
            else:
                assert number == n
            seen.add(frozenset((u, v)))


class TestMessageSizeProperties:
    @FAST
    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(-10**9, 10**9), st.text(max_size=8)),
        lambda children: st.lists(children, max_size=4),
        max_leaves=10,
    ))
    def test_sizes_are_nonnegative_and_monotone(self, payload):
        size = payload_size_bits(payload)
        assert size >= 0
        assert payload_size_bits([payload, 1]) >= size


class TestDSGProperties:
    @SLOW
    @given(
        st.integers(min_value=4, max_value=20),
        st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 1000)), min_size=1, max_size=15),
        st.integers(0, 2**20),
    )
    def test_end_to_end_invariants(self, n, raw_requests, seed):
        keys = list(range(1, n + 1))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed))
        for raw_u, raw_v in raw_requests:
            u = keys[raw_u % n]
            v = keys[raw_v % n]
            if u == v:
                continue
            result = dsg.request(u, v)
            # The self-adjusting model: the pair is directly linked afterwards.
            assert dsg.are_adjacent(u, v)
            assert result.cost >= result.routing_cost + 1
            # Lemma 5 (plus one level of slack for the alpha offset).
            assert dsg.height() <= math.log(max(n, 2), 1.5) + 2
        dsg.graph.validate()
