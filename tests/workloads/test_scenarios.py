"""Tests for the churn-capable scenario layer (workloads.scenarios)."""

import pytest

from repro.core.dsg import DSGConfig
from repro.workloads import (
    JoinEvent,
    LeaveEvent,
    RequestEvent,
    churn_scenario,
    run_scenario,
    scale_scenario,
)


def replay_validity(scenario):
    """Every request references peers alive at that point of the schedule."""
    alive = set(scenario.initial_keys)
    for event in scenario.events:
        if isinstance(event, RequestEvent):
            assert event.source in alive and event.destination in alive
            assert event.source != event.destination
        elif isinstance(event, JoinEvent):
            assert event.key not in alive
            alive.add(event.key)
        else:
            assert event.key in alive
            alive.remove(event.key)
    return alive


class TestChurnScenario:
    @pytest.mark.parametrize("base", ["temporal", "hot-pairs", "uniform"])
    def test_schedule_is_valid_and_deterministic(self, base):
        first = churn_scenario(n=48, length=400, seed=7, base=base, churn_rate=0.05)
        second = churn_scenario(n=48, length=400, seed=7, base=base, churn_rate=0.05)
        assert first.events == second.events
        assert len(first.events) == 400
        replay_validity(first)
        assert first.join_count > 0

    def test_unknown_base_rejected(self):
        with pytest.raises(KeyError):
            churn_scenario(n=48, length=10, seed=1, base="nope")

    def test_run_scenario_accounting(self):
        scenario = churn_scenario(n=48, length=400, seed=3, base="temporal", churn_rate=0.04)
        report = run_scenario(scenario, DSGConfig(seed=5), keep_costs=True)
        assert report.requests == scenario.request_count
        assert report.joins == scenario.join_count
        assert report.leaves == scenario.leave_count
        assert report.final_nodes == report.initial_nodes + report.joins - report.leaves
        assert len(report.costs) == report.requests
        assert report.total_cost == sum(report.costs)
        assert report.average_cost == pytest.approx(report.total_cost / report.requests)
        assert report.elapsed_seconds > 0
        assert report.batches >= 1

    def test_batched_replay_matches_sequential_replay(self):
        from repro.core.dsg import DynamicSkipGraph

        scenario = churn_scenario(n=32, length=250, seed=11, base="temporal", churn_rate=0.06)
        report = run_scenario(scenario, DSGConfig(seed=13), keep_costs=True)

        dsg = DynamicSkipGraph(keys=scenario.initial_keys, config=DSGConfig(seed=13))
        sequential_costs = []
        for event in scenario.events:
            if isinstance(event, RequestEvent):
                sequential_costs.append(dsg.request(event.source, event.destination).cost)
            elif isinstance(event, JoinEvent):
                dsg.add_node(event.key)
            else:
                dsg.remove_node(event.key)
        assert report.costs == sequential_costs


class TestScaleScenario:
    def test_schedule_shape(self):
        scenario = scale_scenario(
            n=512, length=1200, seed=19, hot_pair_count=8, cross_pair_count=2,
            flash_count=2, crowd_size=6, churn_rate=0.01,
        )
        assert len(scenario.events) == 1200
        alive = replay_validity(scenario)
        assert scenario.request_count + scenario.join_count + scenario.leave_count == 1200
        assert len(alive) == 512 + scenario.join_count - scenario.leave_count

    def test_warmup_prologue_touches_hot_pairs_first(self):
        scenario = scale_scenario(
            n=512, length=600, seed=23, hot_pair_count=8, cross_pair_count=2,
            flash_count=1, crowd_size=6, churn_rate=0.0,
        )
        prologue = scenario.events[:8]
        assert all(isinstance(event, RequestEvent) for event in prologue)
        seen_pairs = {frozenset((e.source, e.destination)) for e in prologue}
        assert len(seen_pairs) == 8

    def test_deterministic(self):
        first = scale_scenario(n=512, length=500, seed=29, hot_pair_count=8, crowd_size=6)
        second = scale_scenario(n=512, length=500, seed=29, hot_pair_count=8, crowd_size=6)
        assert first.events == second.events

    def test_runs_to_completion_small(self):
        scenario = scale_scenario(
            n=256, length=600, seed=31, hot_pair_count=8, cross_pair_count=1,
            flash_count=1, crowd_size=6, churn_rate=0.005,
        )
        report = run_scenario(scenario, DSGConfig(seed=7))
        assert report.requests == scenario.request_count
        assert report.requests_per_second > 0
        assert report.final_nodes == report.initial_nodes + report.joins - report.leaves
