"""Tests for the churn-capable scenario layer (workloads.scenarios)."""

import pytest

from repro.core.dsg import DSGConfig
from repro.workloads import (
    JoinEvent,
    LeaveEvent,
    RequestEvent,
    Scenario,
    churn_scenario,
    replay_scenario,
    run_scenario,
    scale_scenario,
)


def replay_validity(scenario):
    """Every request references peers alive at that point of the schedule."""
    alive = set(scenario.initial_keys)
    for event in scenario.events:
        if isinstance(event, RequestEvent):
            assert event.source in alive and event.destination in alive
            assert event.source != event.destination
        elif isinstance(event, JoinEvent):
            assert event.key not in alive
            alive.add(event.key)
        else:
            assert event.key in alive
            alive.remove(event.key)
    return alive


class TestChurnScenario:
    @pytest.mark.parametrize("base", ["temporal", "hot-pairs", "uniform"])
    def test_schedule_is_valid_and_deterministic(self, base):
        first = churn_scenario(n=48, length=400, seed=7, base=base, churn_rate=0.05)
        second = churn_scenario(n=48, length=400, seed=7, base=base, churn_rate=0.05)
        assert first.events == second.events
        assert len(first.events) == 400
        replay_validity(first)
        assert first.join_count > 0

    def test_unknown_base_rejected(self):
        with pytest.raises(KeyError):
            churn_scenario(n=48, length=10, seed=1, base="nope")

    def test_run_scenario_accounting(self):
        scenario = churn_scenario(n=48, length=400, seed=3, base="temporal", churn_rate=0.04)
        report = run_scenario(scenario, DSGConfig(seed=5), keep_costs=True)
        assert report.requests == scenario.request_count
        assert report.joins == scenario.join_count
        assert report.leaves == scenario.leave_count
        assert report.final_nodes == report.initial_nodes + report.joins - report.leaves
        assert len(report.costs) == report.requests
        assert report.total_cost == sum(report.costs)
        assert report.average_cost == pytest.approx(report.total_cost / report.requests)
        assert report.elapsed_seconds > 0
        assert report.batches >= 1

    def test_batched_replay_matches_sequential_replay(self):
        from repro.core.dsg import DynamicSkipGraph

        scenario = churn_scenario(n=32, length=250, seed=11, base="temporal", churn_rate=0.06)
        report = run_scenario(scenario, DSGConfig(seed=13), keep_costs=True)

        dsg = DynamicSkipGraph(keys=scenario.initial_keys, config=DSGConfig(seed=13))
        sequential_costs = []
        for event in scenario.events:
            if isinstance(event, RequestEvent):
                sequential_costs.append(dsg.request(event.source, event.destination).cost)
            elif isinstance(event, JoinEvent):
                dsg.add_node(event.key)
            else:
                dsg.remove_node(event.key)
        assert report.costs == sequential_costs


class TestScaleScenario:
    def test_schedule_shape(self):
        scenario = scale_scenario(
            n=512, length=1200, seed=19, hot_pair_count=8, cross_pair_count=2,
            flash_count=2, crowd_size=6, churn_rate=0.01,
        )
        assert len(scenario.events) == 1200
        alive = replay_validity(scenario)
        assert scenario.request_count + scenario.join_count + scenario.leave_count == 1200
        assert len(alive) == 512 + scenario.join_count - scenario.leave_count

    def test_warmup_prologue_touches_hot_pairs_first(self):
        scenario = scale_scenario(
            n=512, length=600, seed=23, hot_pair_count=8, cross_pair_count=2,
            flash_count=1, crowd_size=6, churn_rate=0.0,
        )
        prologue = scenario.events[:8]
        assert all(isinstance(event, RequestEvent) for event in prologue)
        seen_pairs = {frozenset((e.source, e.destination)) for e in prologue}
        assert len(seen_pairs) == 8

    def test_deterministic(self):
        first = scale_scenario(n=512, length=500, seed=29, hot_pair_count=8, crowd_size=6)
        second = scale_scenario(n=512, length=500, seed=29, hot_pair_count=8, crowd_size=6)
        assert first.events == second.events

    def test_runs_to_completion_small(self):
        scenario = scale_scenario(
            n=256, length=600, seed=31, hot_pair_count=8, cross_pair_count=1,
            flash_count=1, crowd_size=6, churn_rate=0.005,
        )
        report = run_scenario(scenario, DSGConfig(seed=7))
        assert report.requests == scenario.request_count
        assert report.requests_per_second > 0
        assert report.final_nodes == report.initial_nodes + report.joins - report.leaves


class TestReplayScenario:
    """The bridge from scenario schedules to the CONGEST simulator."""

    def _arena(self, n=32, seed=5):
        from repro.distributed import skip_graph_network
        from repro.simulation import Simulator, SimulatorConfig
        from repro.skipgraph import build_balanced_skip_graph

        graph = build_balanced_skip_graph(range(1, n + 1))
        network = skip_graph_network(graph)
        simulator = Simulator(
            network,
            SimulatorConfig(seed=seed, strict_links=False, strict_congest=False,
                            max_rounds=10_000),
        )
        return graph, simulator

    def test_join_and_leave_events_rewire_the_network(self):
        from repro.distributed import skip_graph_network

        graph, simulator = self._arena()
        scenario = churn_scenario(n=32, length=40, seed=11, churn_rate=0.5)
        replay = replay_scenario(simulator, scenario, graph=graph)
        assert replay.joins > 0 and replay.leaves > 0
        simulator.run()
        # The incrementally rewired network equals one rebuilt from scratch
        # off the mirrored skip graph (links and per-level labels).
        rebuilt = skip_graph_network(graph)
        assert set(simulator.network.nodes) == set(rebuilt.nodes)
        assert {frozenset(e) for e in simulator.network.edges()} == {
            frozenset(e) for e in rebuilt.edges()
        }
        for u, v in rebuilt.edges():
            assert simulator.network.labels(u, v) == rebuilt.labels(u, v)
        expected = 32 + replay.joins - replay.leaves
        assert len(simulator.network) == expected

    def test_joiner_process_factory_receives_on_start(self):
        from repro.simulation import NodeProcess

        started = []

        class Recorder(NodeProcess):
            def __init__(self, key):
                super().__init__(key)
                self.done = True

            def on_start(self, ctx):
                started.append((self.node_id, ctx.round))

            def on_round(self, ctx, inbox):
                pass

        graph, simulator = self._arena()
        scenario = Scenario(
            name="one-join", initial_keys=list(range(1, 33)),
            events=[JoinEvent(40)], params={"seed": 3},
        )
        replay = replay_scenario(simulator, scenario, process_factory=Recorder, graph=graph)
        simulator.run()
        assert started == [(40, replay.first_round)]
        assert 40 in simulator.processes

    def test_leaving_node_process_is_retired(self):
        from repro.distributed import install_routing

        graph, simulator = self._arena()
        install_routing(simulator, graph)  # every node runs a (passive) router
        scenario = Scenario(
            name="one-leave", initial_keys=list(range(1, 33)),
            events=[LeaveEvent(5)], params={"seed": 3},
        )
        replay_scenario(simulator, scenario, graph=graph)
        simulator.run()
        assert 5 not in simulator.processes
        assert 5 in simulator.retired
        assert not simulator.network.has_node(5)

    def test_requests_need_a_handler_and_churn_needs_a_graph(self):
        graph, simulator = self._arena()
        seen = []
        scenario = Scenario(
            name="requests", initial_keys=list(range(1, 33)),
            events=[RequestEvent(1, 2), RequestEvent(3, 4)], params={},
        )
        replay = replay_scenario(
            simulator, scenario,
            on_request=lambda sim, event: seen.append((event.source, event.destination)),
        )
        simulator.run()
        assert seen == [(1, 2), (3, 4)]
        assert replay.requests == 2

        churny = Scenario(
            name="churny", initial_keys=list(range(1, 33)),
            events=[JoinEvent(50)], params={},
        )
        with pytest.raises(ValueError):
            replay_scenario(simulator, churny)  # no graph mirror given

    def test_second_wave_joins_do_not_collide_with_first_wave(self):
        first = churn_scenario(n=32, length=60, seed=1, churn_rate=0.5)
        alive = replay_validity(first)
        second = churn_scenario(length=60, seed=2, churn_rate=0.5,
                                initial_keys=sorted(alive))
        assert set(second.initial_keys) == alive
        first_joins = {e.key for e in first.events if isinstance(e, JoinEvent)}
        second_joins = {e.key for e in second.events if isinstance(e, JoinEvent)}
        assert not (first_joins & second_joins)
        replay_validity(second)
