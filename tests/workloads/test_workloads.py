"""Tests for workload generators, paper examples and trace IO."""

import collections

import pytest

from repro.core.working_set import working_set_number
from repro.workloads import (
    WORKLOADS,
    fig2_access_pattern,
    fig3_communication_graph,
    fig4_membership_s8,
    fig4_setup,
    generate_workload,
    load_trace,
    save_trace,
)
from repro.workloads.paper_examples import FIG4_KEYS

KEYS = list(range(1, 65))


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_generates_valid_pairs(self, name):
        requests = generate_workload(name, KEYS, 100, seed=3)
        assert len(requests) == 100
        for u, v in requests:
            assert u in KEYS and v in KEYS
            assert u != v

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_given_seed(self, name):
        first = generate_workload(name, KEYS, 60, seed=11)
        second = generate_workload(name, KEYS, 60, seed=11)
        assert first == second

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            generate_workload("nope", KEYS, 10)

    def test_uniform_needs_two_keys(self):
        with pytest.raises(ValueError):
            generate_workload("uniform", [1], 10)

    def test_repeated_pair_is_constant(self):
        requests = generate_workload("repeated-pair", KEYS, 20, seed=1)
        assert len(set(requests)) == 1

    def test_hot_pairs_concentrate_traffic(self):
        requests = generate_workload("hot-pairs", KEYS, 500, seed=2, pairs=3, hot_fraction=0.9)
        counts = collections.Counter(requests)
        top3 = sum(count for _, count in counts.most_common(3))
        assert top3 >= 0.7 * len(requests)

    def test_zipf_skews_toward_few_nodes(self):
        requests = generate_workload("zipf", KEYS, 800, seed=3, exponent=1.5)
        endpoint_counts = collections.Counter()
        for u, v in requests:
            endpoint_counts[u] += 1
            endpoint_counts[v] += 1
        top_share = sum(count for _, count in endpoint_counts.most_common(8)) / (2 * len(requests))
        assert top_share > 0.5

    def test_temporal_uses_small_active_set(self):
        requests = generate_workload("temporal", KEYS, 200, seed=4, working_set_size=6,
                                     drift_probability=0.0)
        nodes = {node for pair in requests for node in pair}
        assert len(nodes) <= 6

    def test_temporal_drifts_when_enabled(self):
        requests = generate_workload("temporal", KEYS, 400, seed=5, working_set_size=6,
                                     drift_probability=0.2)
        nodes = {node for pair in requests for node in pair}
        assert len(nodes) > 6

    def test_community_traffic_mostly_intra(self):
        requests = generate_workload("community", KEYS, 400, seed=6, communities=4,
                                     intra_probability=1.0)
        # With intra probability 1 every pair stays inside one of 4 groups of 16.
        groups = [set(KEYS[i::4]) for i in range(4)]

        def same_group(u, v):
            return any(u in g and v in g for g in groups)

        # Communities are built from a shuffled key list, so recompute them
        # indirectly: each node should only ever talk to a bounded set of peers.
        peers = collections.defaultdict(set)
        for u, v in requests:
            peers[u].add(v)
            peers[v].add(u)
        assert max(len(p) for p in peers.values()) <= 16

    def test_adversarial_pairs_are_far_apart_statically(self):
        from repro.baselines import StaticSkipGraphBaseline

        requests = generate_workload("adversarial-static", KEYS, 100, seed=7)
        baseline = StaticSkipGraphBaseline(KEYS, topology="balanced")
        average = sum(baseline.routing_cost(u, v) for u, v in set(requests)) / len(set(requests))
        assert average >= 3


class TestPaperExamples:
    def test_fig2_working_set_number_is_5(self):
        pattern = fig2_access_pattern()
        assert working_set_number(pattern, len(pattern) - 1, total_nodes=100) == 5

    def test_fig3_sequence_shape(self):
        sequence = fig3_communication_graph(8)
        assert sequence[0] == (1, 2)
        assert sequence[-1] == (1, 2)
        assert len(sequence) == 2 + 6 + 1

    def test_fig3_working_set_is_k_plus_1(self):
        for k in (4, 8, 16):
            sequence = fig3_communication_graph(k)
            nodes = {node for pair in sequence for node in pair}
            assert working_set_number(sequence, len(sequence) - 1, total_nodes=len(nodes)) == k + 1

    def test_fig3_rejects_tiny_k(self):
        with pytest.raises(ValueError):
            fig3_communication_graph(1)

    def test_fig4_membership_matches_figure_lists(self):
        from repro.skipgraph.build import build_skip_graph_from_membership

        graph = build_skip_graph_from_membership(fig4_membership_s8())
        K = FIG4_KEYS
        zero_level1 = graph.list_of(K["E"], 1)
        assert sorted(zero_level1) == sorted([K["E"], K["F"], K["H"], K["I"], K["J"], K["V"]])
        assert sorted(graph.list_of(K["B"], 1)) == sorted([K["B"], K["D"], K["G"], K["U"]])
        assert sorted(graph.list_of(K["H"], 3)) == sorted([K["H"], K["J"]])
        assert sorted(graph.list_of(K["V"], 3)) == sorted([K["V"], K["E"]])

    def test_fig4_setup_initial_state(self):
        dsg = fig4_setup()
        K = FIG4_KEYS
        assert dsg.time == 7
        assert dsg.state(K["B"]).timestamp(2) == 6
        assert dsg.state(K["U"]).timestamp(1) == 2
        assert dsg.state(K["V"]).timestamp(3) == 5
        assert dsg.state(K["H"]).group_base == 3
        assert dsg.state(K["B"]).group_base == 1

    def test_fig4_transformation_reproduces_s9_groups(self):
        """The (U, V) request at t=8 must merge {U,V,E,B,G,D} into the
        0-subgraph and leave {F,I,H,J} in the 1-subgraph (Fig. 4(c))."""
        dsg = fig4_setup()
        K = FIG4_KEYS
        result = dsg.request(K["U"], K["V"])
        assert result.time == 8
        assert dsg.are_adjacent(K["U"], K["V"])
        zero_side = [k for k in dsg.graph.list_of(K["U"], 1) if not dsg.graph.node(k).is_dummy]
        one_side = [k for k in dsg.graph.list_of(K["H"], 1) if not dsg.graph.node(k).is_dummy]
        assert sorted(zero_side) == sorted([K["U"], K["V"], K["E"], K["B"], K["G"], K["D"]])
        assert sorted(one_side) == sorted([K["F"], K["I"], K["H"], K["J"]])
        # The merged group carries U's identifier at level 1.
        for letter in ("U", "V", "E", "B", "G", "D"):
            assert dsg.state(K[letter]).group_id(1) == dsg.state(K["U"]).uid
        # The pair is stamped with the communication time.
        assert dsg.state(K["U"]).timestamp(result.d_prime) == 8
        assert dsg.state(K["V"]).timestamp(result.d_prime) == 8


class TestTraces:
    def test_roundtrip(self, tmp_path):
        requests = generate_workload("uniform", KEYS, 30, seed=8)
        path = tmp_path / "trace.csv"
        save_trace(requests, path)
        assert load_trace(path) == requests

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert load_trace(path) == []

    def test_string_keys_roundtrip(self, tmp_path):
        requests = [("a", "b"), ("b", "c")]
        path = tmp_path / "strings.csv"
        save_trace(requests, path)
        assert load_trace(path) == requests

    def test_float_keys_roundtrip(self, tmp_path):
        requests = [(1.5, 2), (2, 1.5)]
        path = tmp_path / "floats.csv"
        save_trace(requests, path)
        assert load_trace(path) == requests
