"""Tests for cost summaries, competitive reports, statistics and tables."""

import math

import pytest

from repro.analysis import (
    CostSummary,
    Table,
    competitive_report,
    describe,
    log2_fit_slope,
    percentile,
    render_table,
    summarize_baseline_run,
    summarize_dsg_run,
    to_csv,
)
from repro.baselines import DirectLinkOracle, StaticSkipGraphBaseline
from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.workloads import generate_workload

KEYS = list(range(1, 33))


class TestCostSummaries:
    def test_summarize_dsg_run(self):
        dsg = DynamicSkipGraph(keys=KEYS, config=DSGConfig(seed=1))
        requests = generate_workload("hot-pairs", KEYS, 40, seed=1)
        dsg.run_sequence(requests)
        summary = summarize_dsg_run(dsg)
        assert summary.requests == 40
        assert summary.total_cost == dsg.total_cost()
        assert summary.average_cost == pytest.approx(dsg.average_cost())
        assert summary.max_routing == max(summary.routing_series)

    def test_summarize_baseline_run(self):
        baseline = StaticSkipGraphBaseline(KEYS, topology="balanced")
        run = baseline.serve(generate_workload("uniform", KEYS, 25, seed=2))
        summary = summarize_baseline_run(run)
        assert summary.requests == 25
        assert summary.total_adjustment == 0
        assert summary.total_cost == run.total_cost

    def test_routing_tail(self):
        summary = CostSummary(
            name="x", requests=4, total_routing=10, total_adjustment=0,
            average_routing=2.5, average_adjustment=0, average_cost=3.5,
            max_routing=4, routing_series=[4, 4, 1, 1],
        )
        assert summary.routing_tail(0.5) == 1.0
        assert summary.routing_tail(1.0) == 2.5

    def test_empty_tail(self):
        summary = CostSummary(
            name="x", requests=0, total_routing=0, total_adjustment=0,
            average_routing=0, average_adjustment=0, average_cost=0,
            max_routing=0, routing_series=[],
        )
        assert summary.routing_tail() == 0.0


class TestCompetitive:
    def test_oracle_is_below_every_bound(self):
        requests = generate_workload("repeated-pair", KEYS, 50, seed=3)
        run = DirectLinkOracle().serve(requests)
        report = competitive_report(summarize_baseline_run(run), requests, len(KEYS))
        assert report.routing_ratio <= 1.0
        assert report.working_set_bound > 0

    def test_dsg_routing_within_constant_on_skewed_traffic(self):
        dsg = DynamicSkipGraph(keys=KEYS, config=DSGConfig(seed=5))
        requests = generate_workload("temporal", KEYS, 150, seed=5, working_set_size=6)
        dsg.run_sequence(requests)
        report = competitive_report(summarize_dsg_run(dsg), requests, len(KEYS))
        assert report.routing_within_constant
        assert report.log_n == pytest.approx(5.0)

    def test_precomputed_bound_is_used(self):
        summary = CostSummary(
            name="x", requests=1, total_routing=10, total_adjustment=0,
            average_routing=10, average_adjustment=0, average_cost=11,
            max_routing=10, routing_series=[10],
        )
        report = competitive_report(summary, [(1, 2)], 32, precomputed_bound=5.0)
        assert report.routing_ratio == pytest.approx(2.0)


class TestStatistics:
    def test_percentile_basic(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 50) == 3
        assert percentile(values, 100) == 5
        assert percentile(values, 25) == 2.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_percentile_single_value(self):
        assert percentile([7], 95) == 7.0

    def test_describe(self):
        stats = describe([1, 2, 3, 4])
        assert stats["count"] == 4
        assert stats["mean"] == 2.5
        assert stats["min"] == 1 and stats["max"] == 4

    def test_describe_empty(self):
        assert describe([])["count"] == 0

    def test_log2_fit_slope_recovers_constant(self):
        points = [(n, 3 * math.log2(n) + 1) for n in (16, 32, 64, 128, 256)]
        assert log2_fit_slope(points) == pytest.approx(3.0)

    def test_log2_fit_slope_validation(self):
        with pytest.raises(ValueError):
            log2_fit_slope([(4, 1)])
        with pytest.raises(ValueError):
            log2_fit_slope([(4, 1), (4, 2)])


class TestTables:
    def make_table(self):
        table = Table(title="Example", columns=["name", "value", "ok"])
        table.add_row("alpha", 1.23456, True)
        table.add_row("beta", None, False)
        return table

    def test_add_row_validates_arity(self):
        table = self.make_table()
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_render_contains_all_cells(self):
        table = self.make_table()
        text = render_table(table)
        assert "Example" in text
        assert "alpha" in text and "beta" in text
        assert "1.235" in text
        assert "yes" in text and "no" in text
        assert "-" in text  # None cell

    def test_notes_rendered(self):
        table = self.make_table()
        table.add_note("footnote")
        assert "note: footnote" in table.render()

    def test_column_accessor(self):
        table = self.make_table()
        assert table.column("name") == ["alpha", "beta"]

    def test_to_csv(self):
        table = self.make_table()
        text = to_csv(table)
        lines = text.strip().splitlines()
        assert lines[0] == "name,value,ok"
        assert lines[1].startswith("alpha,")

    def test_write_csv(self, tmp_path):
        table = self.make_table()
        path = tmp_path / "out" / "table.csv"
        table.write_csv(path)
        assert path.read_text().startswith("name,value,ok")
