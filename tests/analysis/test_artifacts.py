"""Tests for the benchmark artifact pipeline (analysis.artifacts + CLI)."""

import json

import pytest

from repro.analysis.artifacts import (
    SCHEMA_VERSION,
    AlgorithmResult,
    BenchmarkArtifact,
    PipelineResult,
    PlanSizeStats,
    ProtocolResult,
    load_artifact,
    load_artifacts,
    render_comparison,
    write_artifact,
)
from repro.experiments.cli import main


def sample_artifact():
    return BenchmarkArtifact(
        benchmark="e09_comparison",
        config={"n": 256, "length": 2000, "seed": 42},
        wall_seconds=12.5,
        working_set_bound=2400.0,
        algorithms=[
            AlgorithmResult(
                name="dsg",
                requests=2000,
                total_routing=600,
                total_adjustment=56000,
                total_cost=58600,
                wall_seconds=10.0,
                ws_bound_ratio=0.25,
                final_height=11,
                joins=4,
                leaves=2,
            ),
            AlgorithmResult(
                name="static-random",
                requests=2000,
                total_routing=12800,
                total_adjustment=0,
                total_cost=14800,
                wall_seconds=0.5,
                ws_bound_ratio=5.33,
                final_height=19,
            ),
        ],
        checks={"dsg_routing_beats_static_on_scale_mix": True},
    )


class TestArtifactRoundTrip:
    def test_write_then_load(self, tmp_path):
        artifact = sample_artifact()
        path = write_artifact(artifact, tmp_path)
        assert path.name == "BENCH_e09_comparison.json"
        loaded = load_artifact(path)
        assert loaded == artifact
        assert loaded.algorithm("dsg").average_cost == pytest.approx(29.3)
        assert loaded.all_checks_passed

    def test_filename_is_sanitised(self, tmp_path):
        artifact = BenchmarkArtifact(benchmark="weird name/with:chars")
        path = write_artifact(artifact, tmp_path)
        assert path.name == "BENCH_weird_name_with_chars.json"

    def test_load_artifacts_sorted(self, tmp_path):
        write_artifact(BenchmarkArtifact(benchmark="zeta"), tmp_path)
        write_artifact(BenchmarkArtifact(benchmark="alpha"), tmp_path)
        names = [artifact.benchmark for artifact in load_artifacts(tmp_path)]
        assert names == ["alpha", "zeta"]

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        path.write_text(json.dumps({"benchmark": "future", "schema_version": 999}))
        with pytest.raises(ValueError):
            load_artifact(path)

    def test_unknown_algorithm_lookup(self):
        with pytest.raises(KeyError):
            sample_artifact().algorithm("nope")


class TestAlgorithmResultDerived:
    def test_averages_and_throughput(self):
        result = sample_artifact().algorithm("static-random")
        assert result.average_routing == pytest.approx(6.4)
        assert result.average_cost == pytest.approx(7.4)
        assert result.requests_per_second == pytest.approx(4000.0)

    def test_empty_run_is_safe(self):
        result = AlgorithmResult(
            name="x", requests=0, total_routing=0, total_adjustment=0,
            total_cost=0, wall_seconds=0.0,
        )
        assert result.average_cost == 0.0
        assert result.requests_per_second == 0.0


class TestRenderComparison:
    def test_report_structure(self):
        report = render_comparison([sample_artifact()])
        assert report.startswith("# Benchmark comparison")
        assert "## e09_comparison" in report
        assert "working set bound WS(σ): 2400.0" in report
        assert "| dsg |" in report and "| static-random |" in report
        assert "[PASS] dsg_routing_beats_static_on_scale_mix" in report
        # Cheapest algorithm (static here) is listed before the pricier one.
        assert report.index("| static-random |") < report.index("| dsg |")

    def test_empty_directory_renders_placeholder(self):
        assert "No BENCH_*.json artifacts" in render_comparison([])

    def test_failed_check_rendered(self):
        artifact = BenchmarkArtifact(benchmark="b", checks={"broken": False})
        assert "[FAIL] broken" in render_comparison([artifact])
        assert not artifact.all_checks_passed


class TestCompareCLI:
    def test_compare_prints_and_writes(self, tmp_path, capsys):
        write_artifact(sample_artifact(), tmp_path)
        output = tmp_path / "report.md"
        assert main(["compare", str(tmp_path), "--output", str(output)]) == 0
        printed = capsys.readouterr().out
        assert "## e09_comparison" in printed
        assert output.read_text() == printed.rstrip("\n") + "\n" or output.exists()

    def test_compare_missing_directory_fails(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "missing")]) == 1

    def test_run_artifact_dir_writes_experiment_artifact(self, tmp_path, capsys):
        assert main(["run", "E4", "--artifact-dir", str(tmp_path)]) == 0
        artifact = load_artifact(tmp_path / "BENCH_E4.json")
        assert artifact.benchmark == "E4"
        assert artifact.all_checks_passed
        assert artifact.config.get("quick") is False


def protocol_artifact():
    return BenchmarkArtifact(
        benchmark="e11_congest",
        config={"n": 4096, "seed": 42},
        wall_seconds=3.1,
        protocols=[
            ProtocolResult(
                name="routing", n=4096, rounds=205, messages=89, total_bits=23000,
                max_message_bits=264, budget_bits=3072, congestion_violations=0,
                dropped_messages=1, joins=103, leaves=102, wall_seconds=1.2,
            ),
            ProtocolResult(
                name="amf", n=4096, rounds=139, messages=18914, total_bits=1_500_000,
                max_message_bits=136, budget_bits=3072, congestion_violations=0,
            ),
        ],
        checks={"zero_congestion_violations": True},
    )


class TestProtocolArtifacts:
    def test_round_trip_preserves_protocol_rows(self, tmp_path):
        path = write_artifact(protocol_artifact(), tmp_path)
        loaded = load_artifact(path)
        assert loaded.schema_version == SCHEMA_VERSION
        routing = loaded.protocol("routing")
        assert routing.rounds == 205
        assert routing.dropped_messages == 1
        assert routing.joins == 103 and routing.leaves == 102
        assert routing.conformant and routing.within_budget
        with pytest.raises(KeyError):
            loaded.protocol("missing")

    def test_schema_v1_files_load_without_protocols(self, tmp_path):
        path = write_artifact(sample_artifact(), tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = 1
        del data["protocols"]
        path.write_text(json.dumps(data))
        loaded = load_artifact(path)
        assert loaded.protocols == []
        assert loaded.algorithm("dsg").requests == 2000

    def test_render_includes_protocol_table(self):
        report = render_comparison([protocol_artifact()])
        assert "| protocol | n | rounds |" in report
        assert "| routing | 4096 | 205 |" in report
        assert "+103/-102" in report

    def test_nonconformant_protocol_flagged(self):
        row = ProtocolResult(
            name="bad", n=8, rounds=1, messages=1, total_bits=9999,
            max_message_bits=9999, budget_bits=96, congestion_violations=2,
        )
        assert not row.within_budget
        assert not row.conformant


class TestPlanSizeArtifacts:
    def test_from_histogram_percentiles(self):
        stats = PlanSizeStats.from_histogram("scale-mix", {0: 60, 4: 30, 18: 9, 5000: 1})
        assert stats.requests == 100
        assert stats.p50_ops == 0
        assert stats.p90_ops == 4
        assert stats.p99_ops == 18
        assert stats.max_ops == 5000
        assert stats.empty_fraction == 0.6
        assert stats.mean_ops == (4 * 30 + 18 * 9 + 5000) / 100

    def test_from_empty_histogram(self):
        stats = PlanSizeStats.from_histogram("idle", {})
        assert stats.requests == 0 and stats.max_ops == 0 and stats.empty_fraction == 0.0

    def test_round_trip_preserves_plan_size_rows(self, tmp_path):
        artifact = protocol_artifact()
        artifact.plan_sizes = [PlanSizeStats.from_histogram("churn", {0: 5, 4: 5})]
        path = write_artifact(artifact, tmp_path)
        loaded = load_artifact(path)
        assert len(loaded.plan_sizes) == 1
        row = loaded.plan_sizes[0]
        assert row.workload == "churn"
        assert row.requests == 10 and row.p90_ops == 4 and row.empty_fraction == 0.5

    def test_schema_v2_files_load_without_plan_sizes(self, tmp_path):
        path = write_artifact(protocol_artifact(), tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = 2
        del data["plan_sizes"]
        path.write_text(json.dumps(data))
        loaded = load_artifact(path)
        assert loaded.plan_sizes == []
        assert loaded.protocol("routing").rounds == 205

    def test_render_includes_plan_size_table(self):
        artifact = protocol_artifact()
        artifact.plan_sizes = [PlanSizeStats.from_histogram("scale-mix", {0: 3, 2: 1})]
        report = render_comparison([artifact])
        assert "| plan sizes (workload) | requests |" in report
        assert "| scale-mix | 4 |" in report
        assert "75.0%" in report


def pipeline_artifact():
    return BenchmarkArtifact(
        benchmark="e17_pipeline",
        config={"n": 4096, "seed": 42},
        wall_seconds=9.0,
        pipelines=[
            PipelineResult(
                name="sequential", n=4096, window=1, requests=200, rounds=3000,
                sequential_rounds=3000, max_in_flight=1, conflict_stalls=0,
                messages=52000, congestion_violations=0, total_cost=4100,
                wall_seconds=4.0,
            ),
            PipelineResult(
                name="window-8", n=4096, window=8, requests=200, rounds=1000,
                sequential_rounds=3000, max_in_flight=8, conflict_stalls=12,
                messages=52000, congestion_violations=0, dropped_messages=0,
                total_cost=4100, matches_sequential=True, wall_seconds=3.5,
            ),
        ],
        checks={"pipelined_matches_sequential": True},
    )


class TestPipelineArtifacts:
    def test_round_trip_preserves_pipeline_rows(self, tmp_path):
        path = write_artifact(pipeline_artifact(), tmp_path)
        loaded = load_artifact(path)
        assert loaded.schema_version == SCHEMA_VERSION
        row = loaded.pipeline("window-8")
        assert row.window == 8
        assert row.rounds == 1000 and row.sequential_rounds == 3000
        assert row.max_in_flight == 8 and row.conflict_stalls == 12
        assert row.matches_sequential
        with pytest.raises(KeyError):
            loaded.pipeline("missing")

    def test_speedup_and_rounds_per_request(self):
        row = pipeline_artifact().pipeline("window-8")
        assert row.speedup == pytest.approx(3.0)
        assert row.rounds_per_request == pytest.approx(5.0)
        empty = PipelineResult(
            name="idle", n=8, window=4, requests=0, rounds=0, sequential_rounds=0,
            max_in_flight=0, conflict_stalls=0, messages=0, congestion_violations=0,
        )
        assert empty.speedup == 0.0 and empty.rounds_per_request == 0.0

    def test_schema_v4_files_load_without_pipelines(self, tmp_path):
        path = write_artifact(protocol_artifact(), tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = 4
        del data["pipelines"]
        path.write_text(json.dumps(data))
        loaded = load_artifact(path)
        assert loaded.pipelines == []
        assert loaded.protocol("routing").rounds == 205

    def test_render_includes_pipeline_table(self):
        report = render_comparison([pipeline_artifact()])
        assert "| pipeline | n | window | requests | rounds |" in report
        assert "| window-8 | 4096 | 8 | 200 | 1000 | 5.0 | 3.00x | 8 | 12 | 0 | 0 | yes |" in report

    def test_divergent_row_flagged(self):
        artifact = pipeline_artifact()
        artifact.pipelines[1].matches_sequential = False
        assert "| NO |" in render_comparison([artifact])


def phased_artifact():
    artifact = sample_artifact()
    artifact.algorithms[0].phases = {
        "route": 0.4, "plan": 6.0, "apply": 2.1, "repair": 1.0,
    }
    return artifact


class TestPhaseArtifacts:
    def test_round_trip_preserves_phase_rows(self, tmp_path):
        path = write_artifact(phased_artifact(), tmp_path)
        loaded = load_artifact(path)
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.algorithm("dsg").phases == {
            "route": 0.4, "plan": 6.0, "apply": 2.1, "repair": 1.0,
        }
        # Algorithms without instrumentation round-trip an empty mapping.
        assert loaded.algorithm("static-random").phases == {}

    def test_schema_v5_files_load_without_phases(self, tmp_path):
        path = write_artifact(sample_artifact(), tmp_path)
        data = json.loads(path.read_text())
        data["schema_version"] = 5
        for entry in data["algorithms"]:
            del entry["phases"]
        path.write_text(json.dumps(data))
        loaded = load_artifact(path)
        assert loaded.algorithm("dsg").phases == {}
        assert loaded.algorithm("dsg").requests == 2000

    def test_render_includes_phase_table(self):
        report = render_comparison([phased_artifact()])
        assert "| phase breakdown | route s | plan s | apply s | repair s | accounted |" in report
        assert "| dsg | 0.4 | 6.0 | 2.1 | 1.0 | 9.5 (95%) |" in report
        # The uninstrumented algorithm contributes no phase row.
        assert report.count("| static-random |") == 1

    def test_render_without_phases_omits_table(self):
        report = render_comparison([sample_artifact()])
        assert "phase breakdown" not in report
