"""Smoke tests for the top-level public API (`import repro`)."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_core_types_exposed(self):
        assert repro.DynamicSkipGraph is not None
        assert repro.DSGConfig is not None
        assert repro.SkipGraph is not None
        assert repro.BalancedSkipList is not None

    def test_workload_registry_exposed(self):
        assert "uniform" in repro.WORKLOADS
        assert "hot-pairs" in repro.WORKLOADS

    def test_experiment_registry_exposed(self):
        assert set(repro.EXPERIMENTS) == {f"E{i}" for i in range(1, 14)}

    def test_quickstart_docstring_flow(self):
        dsg = repro.DynamicSkipGraph(keys=range(1, 17), config=repro.DSGConfig(seed=1))
        dsg.request(3, 12)
        assert dsg.request(3, 12).routing_cost == 0

    def test_module_docstring_mentions_paper(self):
        assert "Self-Adjusting Skip Graphs" in repro.__doc__
