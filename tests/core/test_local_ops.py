"""Tests for the local-operation kernel (repro.core.local_ops).

Covers the op vocabulary itself (application semantics, wire format,
anchors), the planner contract (request and churn plans replay to the
exact post-plan topology on a copy of the pre-plan graph), and the
transformation edge cases reachable through the planner: adjustment at
the height boundaries (alpha = 0 full rebuilds and the deepest
pair-only case), dummy-key exhaustion, and removal of a node that sits
in another node's working set.
"""

import pytest

from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.local_ops import (
    DemoteOp,
    DummyInsertOp,
    DummyRemoveOp,
    NodeJoinOp,
    NodeLeaveOp,
    OpRecorder,
    PromoteOp,
    apply_op,
    apply_ops,
    op_anchor,
    op_from_payload,
    op_to_payload,
)
from repro.skipgraph import build_balanced_skip_graph
from repro.workloads import generate_workload

ALL_OPS = [
    PromoteOp(5, 3, 1),
    DemoteOp(5, 1),
    DummyInsertOp(5.5, (0, 1, 1)),
    DummyRemoveOp(5.5),
    NodeJoinOp(9, (1, 0)),
    NodeLeaveOp(9),
]


class TestOpApplication:
    def test_promote_appends_bit(self):
        graph = build_balanced_skip_graph(range(1, 9))
        before = graph.membership(3).bits
        apply_op(graph, PromoteOp(3, len(before) + 1, 1))
        assert graph.membership(3).bits == before + (1,)

    def test_demote_truncates_and_is_idempotent(self):
        graph = build_balanced_skip_graph(range(1, 9))
        apply_op(graph, DemoteOp(3, 1))
        assert len(graph.membership(3)) == 1
        apply_op(graph, DemoteOp(3, 2))  # already shorter: no-op
        assert len(graph.membership(3)) == 1

    def test_dummy_insert_and_remove(self):
        graph = build_balanced_skip_graph(range(1, 9))
        apply_op(graph, DummyInsertOp(3.5, (0, 1)))
        assert graph.has_node(3.5) and graph.node(3.5).is_dummy
        apply_op(graph, DummyRemoveOp(3.5))
        assert not graph.has_node(3.5)

    def test_join_and_leave(self):
        graph = build_balanced_skip_graph(range(1, 9))
        apply_op(graph, NodeJoinOp(100, (1, 1, 0)))
        assert graph.has_node(100) and not graph.node(100).is_dummy
        apply_op(graph, NodeLeaveOp(100))
        assert not graph.has_node(100)

    def test_unknown_op_rejected(self):
        graph = build_balanced_skip_graph(range(1, 5))
        with pytest.raises(TypeError):
            apply_op(graph, ("not", "an", "op"))

    def test_recorder_matches_replay(self):
        """Eager recorder application == apply_ops replay, op for op."""
        recorded = build_balanced_skip_graph(range(1, 17))
        replayed = recorded.copy()
        recorder = OpRecorder(recorded)
        recorder.demote(5, 1)
        recorder.promote(5, 2, 1)
        recorder.promote(5, 3, 0)
        recorder.insert_dummy(5.25, (0, 1))
        recorder.remove_dummy(5.25)
        recorder.join(40, (1, 0, 1))
        recorder.leave(40)
        apply_ops(replayed, recorder.ops)
        assert replayed.membership_table() == recorded.membership_table()


class TestWireFormat:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: type(op).__name__)
    def test_payload_roundtrip(self, op):
        assert op_from_payload(op_to_payload(op)) == op

    def test_bit_strings_keep_leading_zeros(self):
        op = DummyInsertOp(1.5, (0, 0, 1, 0))
        assert op_from_payload(op_to_payload(op)).bits == (0, 0, 1, 0)

    def test_payloads_are_constant_words(self):
        for op in ALL_OPS:
            payload = op_to_payload(op)
            assert len(payload) <= 4
            assert all(isinstance(key, str) and len(key) == 1 for key in payload)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            op_from_payload({"t": 99, "k": 1})

    def test_anchor_rules(self):
        graph = build_balanced_skip_graph(range(1, 9))
        assert op_anchor(PromoteOp(3, 4, 1), graph) == 3
        assert op_anchor(DemoteOp(3, 1), graph) == 3
        assert op_anchor(DummyRemoveOp(3.5), graph) == 3.5
        assert op_anchor(NodeLeaveOp(3), graph) == 3
        # An insertion is executed by the new key's base-list predecessor.
        assert op_anchor(DummyInsertOp(3.5, (0, 1)), graph) == 3
        assert op_anchor(NodeJoinOp(100, (1,)), graph) == 8
        # A key below the minimum anchors at the successor instead.
        assert op_anchor(NodeJoinOp(0.5, (1,)), graph) == 1


class TestPlannerPlans:
    """Request and churn plans are self-contained: replay == reality."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_request_plans_replay_to_identical_topology(self, seed):
        keys = list(range(1, 33))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed))
        shadow = dsg.graph.copy()
        for u, v in generate_workload("temporal", keys, 60, seed=seed, working_set_size=6):
            result = dsg.request(u, v, keep_result=False)
            apply_ops(shadow, result.ops)
            assert shadow.membership_table() == dsg.graph.membership_table()

    def test_churn_plans_replay_to_identical_topology(self):
        dsg = DynamicSkipGraph(keys=range(1, 25), config=DSGConfig(seed=5))
        shadow = dsg.graph.copy()
        for key in (100, 101, 102):
            dsg.add_node(key)
            apply_ops(shadow, dsg.last_churn_ops)
            assert shadow.membership_table() == dsg.graph.membership_table()
        for key in (7, 100, 13):
            dsg.remove_node(key)
            apply_ops(shadow, dsg.last_churn_ops)
            assert shadow.membership_table() == dsg.graph.membership_table()

    def test_join_plan_starts_with_the_join(self):
        dsg = DynamicSkipGraph(keys=range(1, 17), config=DSGConfig(seed=2))
        dsg.add_node(50)
        ops = dsg.last_churn_ops
        assert type(ops[0]) is NodeJoinOp and ops[0].key == 50
        assert all(type(op) is DummyInsertOp for op in ops[1:])

    def test_leave_plan_starts_with_the_leave(self):
        dsg = DynamicSkipGraph(keys=range(1, 17), config=DSGConfig(seed=2))
        dsg.remove_node(9)
        ops = dsg.last_churn_ops
        assert type(ops[0]) is NodeLeaveOp and ops[0].key == 9

    def test_plan_recording_leaves_costs_untouched(self):
        """Two identical instances produce identical per-request costs while
        one of them also replays every plan on a shadow — recording and
        replaying are observers, never participants."""
        keys = list(range(1, 33))
        observed = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=13))
        control = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=13))
        shadow = observed.graph.copy()
        for u, v in generate_workload("zipf", keys, 50, seed=8, exponent=1.2):
            first = observed.request(u, v, keep_result=False)
            second = control.request(u, v, keep_result=False)
            apply_ops(shadow, first.ops)
            assert first.cost == second.cost
            assert first.transformation_rounds == second.transformation_rounds
        assert observed.total_cost() == control.total_cost()


class TestTransformationEdgeCases:
    """Edge cases of the transformation, reached through the op planner."""

    def test_alpha_zero_full_rebuild(self):
        """A first contact between maximally distant keys transforms from
        level 0: every real node is demoted to the root and re-promoted."""
        keys = list(range(1, 33))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=4))
        u, v = 1, 32
        assert dsg.graph.common_level(u, v) == 0
        shadow = dsg.graph.copy()
        result = dsg.request(u, v)
        assert result.alpha == 0
        demoted = {op.key for op in result.ops if type(op) is DemoteOp}
        assert demoted == set(keys)
        apply_ops(shadow, result.ops)
        assert shadow.membership_table() == dsg.graph.membership_table()
        assert dsg.are_adjacent(u, v)

    def test_deepest_pair_request_is_minimal(self):
        """A repeated request finds the pair alone in its deepest list; the
        plan is the two-promote 'pair' split (plus any dummy bookkeeping)."""
        dsg = DynamicSkipGraph(keys=range(1, 33), config=DSGConfig(seed=4))
        dsg.request(5, 21)
        result = dsg.request(5, 21)
        assert result.routing.distance == 0
        promotes = [op for op in result.ops if type(op) is PromoteOp]
        assert {op.key for op in promotes} == {5, 21}
        # The pair was already singleton below alpha: one split level each.
        assert result.d_prime == result.alpha

    def test_adjustment_at_graph_height_ceiling(self):
        """Serving every pair of a tiny graph repeatedly keeps the height
        within the Lemma 5 style bound while plans keep replaying."""
        keys = list(range(1, 9))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=6))
        shadow = dsg.graph.copy()
        for _ in range(3):
            for u in keys:
                for v in keys:
                    if u < v:
                        result = dsg.request(u, v, keep_result=False)
                        apply_ops(shadow, result.ops)
        assert shadow.membership_table() == dsg.graph.membership_table()
        assert dsg.height() <= dsg.config.a * 6  # a * log2(n) slack

    def test_dummy_key_exhaustion_in_transformation(self, monkeypatch):
        """_pick_dummy_key returning None skips the dummy without corrupting
        the plan: the request completes and the plan still replays."""
        import repro.core.transformation as transformation

        monkeypatch.setattr(transformation, "_pick_dummy_key", lambda *args, **kwargs: None)
        dsg = DynamicSkipGraph(keys=range(1, 33), config=DSGConfig(seed=4))
        shadow = dsg.graph.copy()
        result = dsg.request(1, 32)  # alpha = 0: maximal dummy pressure
        assert result.dummies_added == 0
        assert not any(type(op) is DummyInsertOp for op in result.ops)
        apply_ops(shadow, result.ops)
        assert shadow.membership_table() == dsg.graph.membership_table()

    def test_dummy_key_exhaustion_in_restore_a_balance(self, monkeypatch):
        """_dummy_key_between returning None makes restore_a_balance stop
        (no progress) instead of looping, and the churn plan stays clean."""
        monkeypatch.setattr(
            DynamicSkipGraph, "_dummy_key_between", lambda self, lower, upper: None
        )
        dsg = DynamicSkipGraph(keys=range(1, 33), config=DSGConfig(seed=4, a=2))
        dsg.remove_node(16)
        assert not any(type(op) is DummyInsertOp for op in dsg.last_churn_ops)
        inserted = dsg.restore_a_balance()
        assert inserted == 0

    def test_remove_node_in_another_nodes_working_set(self):
        """Removing a peer that an earlier request put in the history: the
        working-set accounting and later plans keep working."""
        keys = list(range(1, 25))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=9))
        shadow = dsg.graph.copy()
        dsg.request(3, 10)  # 10 enters 3's working set
        apply_ops(shadow, dsg.results[-1].ops)
        dsg.remove_node(10)
        apply_ops(shadow, dsg.last_churn_ops)
        assert not dsg.graph.has_node(10)
        result = dsg.request(3, 17)
        apply_ops(shadow, result.ops)
        # The departed peer still separates (3, 17) in the recency history.
        assert result.working_set_number is not None and result.working_set_number >= 3
        assert shadow.membership_table() == dsg.graph.membership_table()
        assert dsg.graph.is_valid()
