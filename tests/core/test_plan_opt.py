"""Property tests for peephole plan compaction (:mod:`repro.core.plan_opt`).

The contract under test: for any valid plan, applying
:func:`~repro.core.plan_opt.compact_plan`'s rewrite to a copy of the
pre-plan graph yields the *same final topology* as the original plan —
identical membership table, identical real/dummy populations, identical
derived level lists — while never growing the op count.

Plans come from two generators: synthetic valid op streams built
constructively against a live graph (each op is chosen to be applicable in
the state the previous ops produced, which is exactly the validity contract
recorded plans satisfy), and real plans recorded by DSG runs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsg import DSGConfig, DynamicSkipGraph
from repro.core.local_ops import (
    DemoteOp,
    DummyInsertOp,
    DummyRemoveOp,
    ExtendOp,
    NodeJoinOp,
    NodeLeaveOp,
    PromoteOp,
    apply_ops,
    op_from_payload,
    op_to_payload,
)
from repro.core.plan_opt import compact_plan
from repro.skipgraph.build import build_skip_graph
from repro.workloads import generate_workload


def graph_state(graph):
    """Full derived topology: memberships, populations and every level list."""
    lists = {
        level: graph.lists_at_level(level) for level in range(graph.height() + 1)
    }
    return (
        graph.membership_table(),
        graph.real_keys,
        graph.dummy_keys(),
        lists,
    )


def synthesize_plan(graph, choices):
    """Turn a stream of integers into a valid plan for ``graph``.

    Ops are applied eagerly to ``graph`` (mirroring the recorder's
    plan-as-you-apply contract) so each subsequent op is chosen against the
    state its predecessors produced.
    """
    rng = random.Random(0)
    ops = []
    next_dummy = max(graph.keys, default=0) + 1000
    for word in choices:
        keys = list(graph.keys)
        if not keys:
            break
        kind = word % 6
        key = keys[(word // 6) % len(keys)]
        length = len(graph.membership(key))
        if kind == 0:  # append one bit
            op = PromoteOp(key, length + 1, (word >> 7) & 1)
        elif kind == 1:  # rewrite an existing bit
            if length == 0:
                continue
            op = PromoteOp(key, 1 + (word // 11) % length, (word >> 8) & 1)
        elif kind == 2:  # truncate
            if length == 0:
                continue
            op = DemoteOp(key, (word // 13) % length)
        elif kind == 3:  # multi-bit extension
            width = 1 + (word // 17) % 3
            bits = tuple((word >> shift) & 1 for shift in range(width))
            op = ExtendOp(key, length + 1, bits)
        elif kind == 4:  # dummy creation
            width = (word // 19) % 4
            bits = tuple(rng.randint(0, 1) for _ in range(width))
            op = DummyInsertOp(next_dummy, bits)
            next_dummy += 1
        else:  # dummy destruction
            dummies = graph.dummy_keys()
            if not dummies:
                continue
            op = DummyRemoveOp(dummies[(word // 23) % len(dummies)])
        apply_ops(graph, [op])
        ops.append(op)
    return ops


class TestCompactionTopology:
    @given(
        st.sets(st.integers(min_value=1, max_value=200), min_size=2, max_size=24),
        st.lists(st.integers(min_value=0, max_value=2**24), min_size=0, max_size=40),
        st.integers(0, 2**20),
    )
    @settings(max_examples=60, deadline=None)
    def test_compacted_plan_reaches_the_same_topology(self, keys, choices, seed):
        initial = build_skip_graph(sorted(keys), rng=random.Random(seed))
        scratch = initial.copy()
        ops = synthesize_plan(scratch, choices)
        compacted = compact_plan(ops)
        assert len(compacted) <= len(ops)

        # Synthetic plans may leave states no planner would (e.g. two real
        # nodes sharing a vector), which is fine here: the property under
        # test is state equivalence, not planner-level well-formedness.
        replay = initial.copy()
        apply_ops(replay, compacted)
        assert graph_state(replay) == graph_state(scratch)

    @given(st.integers(min_value=6, max_value=24), st.integers(0, 2**20))
    @settings(max_examples=15, deadline=None)
    def test_recorded_dsg_plans_compact_equivalently(self, n, seed):
        keys = list(range(1, n + 1))
        dsg = DynamicSkipGraph(keys=keys, config=DSGConfig(seed=seed))
        baseline = dsg.graph.copy()
        requests = generate_workload("temporal", keys, 12, seed=seed, working_set_size=4)
        for result in dsg.run_sequence(requests):
            apply_ops(baseline, compact_plan(result.ops))
        assert graph_state(baseline) == graph_state(dsg.graph)

    def test_compaction_coalesces_a_promote_run_into_one_extend(self):
        key = 7
        ops = [PromoteOp(key, 3, 1), PromoteOp(key, 4, 0), PromoteOp(key, 5, 1)]
        assert compact_plan(ops) == [ExtendOp(key, 3, (1, 0, 1))]

    def test_dummy_insert_remove_annihilates(self):
        ops = [DummyInsertOp(99, (1, 0)), PromoteOp(99, 3, 1), DummyRemoveOp(99)]
        assert compact_plan(ops) == []

    def test_cost_is_never_charged_for_compacted_ops(self):
        # Compaction rewrites execution only: the emitted plan must never be
        # longer than the original, so Equation-1 accounting charged on the
        # original plan is an upper bound on the executed work.
        ops = [DemoteOp(5, 2), PromoteOp(5, 3, 1), PromoteOp(5, 4, 1)]
        compacted = compact_plan(ops)
        assert len(compacted) <= len(ops)
        assert compacted == [DemoteOp(5, 2), ExtendOp(5, 3, (1, 1))]


class TestOpWireFormat:
    @given(
        st.sampled_from([
            PromoteOp(3, 4, 1),
            DemoteOp(3, 2),
            DummyInsertOp(9, (1, 0, 1)),
            DummyInsertOp(9, ()),
            DummyRemoveOp(9),
            NodeJoinOp(11, (0, 1)),
            NodeLeaveOp(11),
            ExtendOp(5, 2, (1,)),
            ExtendOp(5, 7, (0, 1, 1, 0)),
        ])
    )
    def test_payload_roundtrip(self, op):
        payload = op_to_payload(op)
        assert op_from_payload(payload) == op

    def test_extend_op_uses_tag_6_with_packed_bits(self):
        payload = op_to_payload(ExtendOp(5, 7, (1, 0, 1)))
        assert payload == {"t": 6, "k": 5, "l": 7, "n": 3, "b": 0b101}
