"""Tests for DSG node state, priority rules P1-P4 and group management."""


import pytest

from repro.core.groups import (
    assign_group_ids_after_split,
    find_straddled_group,
    glower_update,
    initial_group_base,
    merge_groups_at_alpha,
    update_group_bases_after_transformation,
)
from repro.core.priorities import (
    COMMUNICATING_PRIORITY,
    compute_priorities,
    priority_band,
    recompute_priority_p4,
)
from repro.core.state import DSGNodeState, default_uid


def make_states(keys):
    return {key: DSGNodeState(key=key) for key in keys}


class TestDSGNodeState:
    def test_defaults(self):
        state = DSGNodeState(key=5)
        assert state.timestamp(0) == 0
        assert state.timestamp(3) == 0
        assert state.group_id(2) == state.uid
        assert state.is_dominating(1) is False
        assert state.group_base == 0

    def test_uid_is_positive_and_stable(self):
        assert DSGNodeState(key=5).uid == DSGNodeState(key=5).uid
        assert DSGNodeState(key=5).uid > 0
        assert default_uid("anything") > 0

    def test_uid_decorrelated_from_key_order(self):
        uids = [DSGNodeState(key=k).uid for k in range(1, 50)]
        assert uids != sorted(uids)

    def test_setters(self):
        state = DSGNodeState(key=1)
        state.set_timestamp(2, 7)
        state.set_group_id(2, 99)
        state.set_dominating(2, True)
        assert state.timestamp(2) == 7
        assert state.group_id(2) == 99
        assert state.is_dominating(2)

    def test_reset(self):
        state = DSGNodeState(key=1)
        state.set_timestamp(2, 7)
        state.set_group_id(2, 99)
        state.group_base = 3
        state.reset()
        assert state.timestamp(2) == 0
        assert state.group_id(2) == state.uid
        assert state.group_base == 0

    def test_memory_words_scales_with_height(self):
        state = DSGNodeState(key=1)
        assert state.memory_words(height=10) > state.memory_words(height=5)

    def test_snapshot(self):
        state = DSGNodeState(key=1)
        state.set_timestamp(1, 4)
        snap = state.snapshot(height=2)
        assert snap["timestamps"] == [0, 4, 0]
        assert snap["group_base"] == 0


class TestPriorityRules:
    def test_p1_communicating_nodes_infinite(self):
        states = make_states([1, 2, 3])
        priorities = compute_priorities(states, [1, 2, 3], u=1, v=2, alpha=0, t=5, height=3)
        assert priorities[1] == COMMUNICATING_PRIORITY
        assert priorities[2] == COMMUNICATING_PRIORITY

    def test_p2_group_members_get_min_timestamp(self):
        states = make_states([1, 2, 3])
        # Node 3 is in node 1's group at level 0; they share group-id at level 1 too.
        states[3].set_group_id(0, states[1].uid)
        states[3].set_group_id(1, states[1].uid)
        states[1].set_group_id(1, states[1].uid)
        states[3].set_timestamp(1, 4)
        states[1].set_timestamp(1, 9)
        priorities = compute_priorities(states, [1, 2, 3], u=1, v=2, alpha=0, t=10, height=3)
        assert priorities[3] == 4.0  # min(T^3_1, T^1_1)

    def test_p3_other_nodes_negative(self):
        states = make_states([1, 2, 3])
        priorities = compute_priorities(states, [1, 2, 3], u=1, v=2, alpha=0, t=10, height=3)
        assert priorities[3] == -(states[3].uid * 10) + 0
        assert priorities[3] < 0

    def test_p3_respects_band(self):
        states = make_states([1, 2, 3])
        states[3].set_timestamp(1, 6)
        t = 10
        priorities = compute_priorities(states, [1, 2, 3], u=1, v=2, alpha=0, t=t, height=3)
        low, high = priority_band(states[3].group_id(0), t)
        assert low <= priorities[3] < high

    def test_p4_recompute(self):
        state = DSGNodeState(key=7)
        state.set_group_id(2, 13)
        state.set_timestamp(3, 5)
        assert recompute_priority_p4(state, level=2, t=10) == -(13 * 10) + 5

    def test_non_positive_group_id_rejected(self):
        state = DSGNodeState(key=7)
        state.set_group_id(2, 0)
        with pytest.raises(ValueError):
            recompute_priority_p4(state, level=2, t=10)
        with pytest.raises(ValueError):
            priority_band(-3, 10)

    def test_priority_bands_disjoint_for_distinct_groups(self):
        t = 17
        band_a = priority_band(5, t)
        band_b = priority_band(6, t)
        assert band_b[1] <= band_a[0]


class TestGroups:
    def test_merge_groups_at_alpha(self):
        states = make_states([1, 2, 3, 4])
        states[3].set_group_id(0, states[1].uid)   # 3 in u's group
        states[4].set_group_id(0, states[2].uid)   # 4 in v's group
        merged = merge_groups_at_alpha(states, [1, 2, 3, 4], u=1, v=2, alpha=0)
        assert set(merged) == {1, 2, 3, 4}
        assert all(states[k].group_id(0) == states[1].uid for k in (1, 2, 3, 4))

    def test_merge_leaves_other_groups_alone(self):
        states = make_states([1, 2, 3])
        before = states[3].group_id(0)
        merge_groups_at_alpha(states, [1, 2, 3], u=1, v=2, alpha=0)
        assert states[3].group_id(0) == before

    def test_find_straddled_group(self):
        states = make_states([1, 2, 3, 4, 5])
        t = 10
        # Nodes 3, 4 share a group; craft the median inside their band.
        shared = states[3].uid
        states[4].set_group_id(1, shared)
        states[3].set_group_id(1, shared)
        median = -(shared * t) + 1  # inside the band [-G*t, -(G-1)*t)
        found = find_straddled_group(states, [1, 2, 3, 4, 5], level=1, median=median, t=t, exclude=(1, 2))
        assert set(found) == {3, 4}

    def test_find_straddled_group_none_for_positive_median(self):
        states = make_states([1, 2, 3])
        assert find_straddled_group(states, [1, 2, 3], level=0, median=5.0, t=10, exclude=(1, 2)) is None

    def test_find_straddled_group_none_when_no_band_matches(self):
        states = make_states([1, 2, 3])
        t = 10
        median = -0.5  # above every band of positive group ids
        assert find_straddled_group(states, [1, 2, 3], level=0, median=median, t=t, exclude=(1, 2)) is None

    def test_assign_group_ids_after_split_uv_list(self):
        states = make_states([1, 2, 3, 4])
        split = assign_group_ids_after_split(
            states, zero_list=[1, 2, 3], one_list=[4], level=1, parent_level=0, u=1, v=2
        )
        assert all(states[k].group_id(1) == states[1].uid for k in (1, 2, 3))
        # Node 4 was a singleton group, so nothing was split.
        assert states[4].uid not in split or split == []

    def test_assign_group_ids_split_group_gets_leftmost_uid(self):
        states = make_states([1, 2, 3, 4, 5, 6])
        shared = 999
        for key in (3, 4, 5, 6):
            states[key].set_group_id(0, shared)
        split = assign_group_ids_after_split(
            states, zero_list=[1, 2, 3, 4], one_list=[5, 6], level=1, parent_level=0, u=1, v=2
        )
        assert shared in split
        assert states[5].group_id(1) == states[5].uid
        assert states[6].group_id(1) == states[5].uid

    def test_glower_update_noop_when_groups_agree(self):
        states = make_states([1, 2, 3])
        # u and v already share their level-0 group-id: nothing to align.
        states[2].set_group_id(0, states[1].group_id(0))
        assert glower_update(states, [1, 2, 3], [1, 2, 3], u=1, v=2, alpha=1) == set()

    def test_glower_update_aligns_lower_levels(self):
        states = make_states([1, 2, 3])
        # u and v disagree at level 0; u has the smaller group-base.
        states[1].group_base = 0
        states[2].group_base = 1
        states[1].set_group_id(0, 111)
        states[2].set_group_id(0, 222)
        states[3].set_group_id(1, states[1].group_id(1))
        participants = glower_update(states, [1, 2, 3], [1, 2, 3], u=1, v=2, alpha=1)
        assert 1 in participants or 2 in participants
        assert states[2].group_id(0) == 111 or states[2].group_base == 0

    def test_group_base_updates(self):
        states = make_states([1, 2])
        states[1].group_base = 2
        update_group_bases_after_transformation(states, [1, 2], {1: [2]}, alpha=1)
        assert states[1].group_base == 1

    def test_group_base_update_from_alpha(self):
        states = make_states([1])
        states[1].group_base = 1
        update_group_bases_after_transformation(states, [1], {1: [4]}, alpha=1)
        assert states[1].group_base == 3

    def test_initial_group_base(self):
        assert initial_group_base(3) == 3
        assert initial_group_base(-1) == 0
