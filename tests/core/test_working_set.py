"""Tests for the working set definitions (Section III), incl. the Fig. 2 example."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.working_set import (
    CommunicationHistory,
    working_set_bound,
    working_set_number,
    working_set_numbers,
)


def fig2_sequence():
    """The access pattern of Fig. 2(a).

    The pattern shows, between two consecutive (u, v) communications, the
    requests (u,v), (e,a), (k,u), (a,u), (e,k), (u,v).  The nodes reachable
    from u or v in the resulting communication graph are e, a, k, u and v —
    working set number 5.
    """
    u, v, e, a, k = "u", "v", "e", "a", "k"
    return [(u, v), (e, a), (k, u), (a, u), (e, k), (u, v)]


class TestWorkingSetNumber:
    def test_first_time_pair_is_n(self):
        history = [(1, 2)]
        assert working_set_number(history, 0, total_nodes=10) == 10

    def test_fig2_example_value_is_5(self):
        history = fig2_sequence()
        assert working_set_number(history, len(history) - 1, total_nodes=50) == 5

    def test_immediate_repeat_is_2(self):
        history = [(1, 2), (1, 2)]
        assert working_set_number(history, 1, total_nodes=10) == 2

    def test_unrelated_traffic_not_counted(self):
        # Nodes 5 and 6 communicate between the two (1,2) requests but are
        # not connected to 1 or 2 in the communication graph.
        history = [(1, 2), (5, 6), (1, 2)]
        assert working_set_number(history, 2, total_nodes=10) == 2

    def test_connected_traffic_counted(self):
        history = [(1, 2), (2, 5), (5, 6), (1, 2)]
        assert working_set_number(history, 3, total_nodes=10) == 4

    def test_pair_order_does_not_matter(self):
        history = [(1, 2), (3, 1), (2, 1)]
        assert working_set_number(history, 2, total_nodes=10) == 3

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            working_set_number([(1, 2)], 5, total_nodes=10)

    def test_working_set_numbers_convenience(self):
        history = [(1, 2), (1, 2), (3, 4)]
        assert working_set_numbers(history, total_nodes=8) == [8, 2, 8]


class TestWorkingSetBound:
    def test_bound_sums_logs(self):
        history = [(1, 2), (1, 2), (1, 2)]
        expected = math.log2(4) + math.log2(2) + math.log2(2)
        assert working_set_bound(history, total_nodes=4) == pytest.approx(expected)

    def test_bound_monotone_in_sequence_length(self):
        history = [(1, 2), (3, 4), (1, 2)]
        assert working_set_bound(history[:2], 8) < working_set_bound(history, 8)

    def test_custom_base(self):
        history = [(1, 2)]
        assert working_set_bound(history, 8, base=8) == pytest.approx(1.0)


class TestCommunicationHistory:
    def test_record_matches_offline_definition(self):
        sequence = fig2_sequence() + [(1, 2), ("e", "k"), (1, 2)]
        tracker = CommunicationHistory(total_nodes=30)
        online = [tracker.record(u, v) for u, v in sequence]
        offline = working_set_numbers(sequence, total_nodes=30)
        assert online == offline

    def test_len_and_bound(self):
        tracker = CommunicationHistory(total_nodes=10)
        tracker.record(1, 2)
        tracker.record(1, 2)
        assert len(tracker) == 2
        assert tracker.working_set_bound() == pytest.approx(math.log2(10) + 1.0)

    def test_peek_does_not_mutate(self):
        tracker = CommunicationHistory(total_nodes=10)
        tracker.record(1, 2)
        peeked = tracker.peek(1, 2)
        assert peeked == 2
        assert len(tracker) == 1

    def test_peek_first_time_pair(self):
        tracker = CommunicationHistory(total_nodes=10)
        assert tracker.peek(3, 4) == 10

    def test_last_time_of_pair(self):
        tracker = CommunicationHistory(total_nodes=10)
        tracker.record(1, 2)
        tracker.record(3, 4)
        assert tracker.last_time_of_pair(1, 2) == 0
        assert tracker.last_time_of_pair(2, 1) == 0
        assert tracker.last_time_of_pair(1, 3) is None


class TestIncrementalMatchesRescan:
    """Regression: the incremental recency-graph tracker is exact.

    :meth:`CommunicationHistory.record` answers from the recency graph
    (cost proportional to the working set); :func:`working_set_number`
    rescans the window as the definition reads.  They must agree on every
    request of any sequence, and the running working-set-bound sum must
    match the full recomputation.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 15), st.integers(1, 15)).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=15, max_value=40),
    )
    def test_record_matches_window_rescan(self, history, total_nodes):
        tracker = CommunicationHistory(total_nodes=total_nodes)
        for index, (u, v) in enumerate(history):
            incremental = tracker.record(u, v)
            rescan = working_set_number(history[: index + 1], index, total_nodes)
            assert incremental == rescan

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 10), st.integers(1, 10)).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=40,
        )
    )
    def test_running_bound_matches_recomputation(self, history):
        tracker = CommunicationHistory(total_nodes=12)
        for u, v in history:
            tracker.record(u, v)
        assert tracker.working_set_bound() == pytest.approx(
            working_set_bound(history, total_nodes=12)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 12), st.integers(1, 12)).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=40,
        ),
        st.tuples(st.integers(1, 12), st.integers(1, 12)).filter(lambda p: p[0] != p[1]),
    )
    def test_peek_matches_hypothetical_record(self, history, probe):
        tracker = CommunicationHistory(total_nodes=20)
        for u, v in history:
            tracker.record(u, v)
        u, v = probe
        peeked = tracker.peek(u, v)
        replay = CommunicationHistory(total_nodes=20)
        for x, y in history:
            replay.record(x, y)
        assert peeked == replay.record(u, v)
